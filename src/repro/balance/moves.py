"""The move universe: what a balancing plan is allowed to do to a state.

Three move kinds, mirroring the mechanisms the paper treats separately:

- ``qp_rebind`` — move one queue pair to another worker thread *on its
  own node* (§4.3's rebinding primitive, at single-QP granularity);
- ``vd_rehome`` — move a whole virtual disk's queue pairs to another
  compute node, preserving each QP's WT slot (a VM live-migration as the
  control plane sees it; segments do not move);
- ``segment_migrate`` — move one segment to another BlockServer (§6's
  migration primitive).

:func:`apply_move` mutates a state in place and returns the *inverse*
move, which is how the descent reverts a speculative move and how tests
replay plans backwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

from repro.balance.state import ClusterState, qp_ids_of_vd
from repro.util.errors import BalanceError


class MoveKind(enum.Enum):
    """The kind of one balancing move."""

    QP_REBIND = "qp_rebind"
    VD_REHOME = "vd_rehome"
    SEGMENT_MIGRATE = "segment_migrate"


@dataclass(frozen=True)
class Move:
    """One executable balancing action.

    ``entity`` is a qp, vd, or segment id depending on ``kind``;
    ``dest`` is a global WT id, a compute node id, or a BS id.
    """

    kind: MoveKind
    entity: int
    dest: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "entity": int(self.entity),
            "dest": int(self.dest),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Move":
        try:
            kind = MoveKind(payload["kind"])
            return cls(
                kind=kind,
                entity=int(payload["entity"]),
                dest=int(payload["dest"]),
            )
        except (KeyError, ValueError) as exc:
            raise BalanceError(f"malformed move {payload!r}: {exc}") from exc


def apply_move(state: ClusterState, move: Move) -> Move:
    """Apply one move in place; returns the inverse move.

    Raises :class:`BalanceError` for no-ops and invalid destinations —
    a plan should never contain either.
    """
    if move.kind is MoveKind.QP_REBIND:
        qp = move.entity
        if not 0 <= qp < state.num_qps:
            raise BalanceError(f"unknown queue pair {qp}")
        if not 0 <= move.dest < state.num_wts:
            raise BalanceError(f"unknown worker thread {move.dest}")
        node = int(state.qp_node[qp])
        if move.dest // state.workers_per_node != node:
            raise BalanceError(
                f"qp {qp} lives on node {node}; wt {move.dest} does not "
                "(cross-node moves are vd_rehome)"
            )
        old_wt = int(state.qp_wt[qp])
        if old_wt == move.dest:
            raise BalanceError(f"qp {qp} already bound to wt {move.dest}")
        state.qp_wt[qp] = move.dest
        return Move(kind=MoveKind.QP_REBIND, entity=qp, dest=old_wt)

    if move.kind is MoveKind.VD_REHOME:
        if not 0 <= move.dest < state.num_compute_nodes:
            raise BalanceError(f"unknown compute node {move.dest}")
        qps = qp_ids_of_vd(state, move.entity)
        if qps.size == 0:
            raise BalanceError(f"vd {move.entity} has no queue pairs")
        old_node = int(state.qp_node[qps[0]])
        if old_node == move.dest:
            raise BalanceError(
                f"vd {move.entity} already lives on node {move.dest}"
            )
        per = state.workers_per_node
        slots = state.qp_wt[qps] % per
        state.qp_node[qps] = move.dest
        state.qp_wt[qps] = move.dest * per + slots
        return Move(
            kind=MoveKind.VD_REHOME, entity=move.entity, dest=old_node
        )

    if move.kind is MoveKind.SEGMENT_MIGRATE:
        seg = move.entity
        if not 0 <= seg < state.num_segments:
            raise BalanceError(f"unknown segment {seg}")
        if not 0 <= move.dest < state.num_block_servers:
            raise BalanceError(f"unknown BlockServer {move.dest}")
        old_bs = int(state.seg_bs[seg])
        if old_bs == move.dest:
            raise BalanceError(
                f"segment {seg} already lives on BS {move.dest}"
            )
        if state.seg_replicas is not None:
            # Migrating the primary must not land on a BS already holding
            # another copy of the same segment (fault-domain rule).
            others = {int(bs) for bs in state.seg_replicas[seg, 1:]}
            if move.dest in others:
                raise BalanceError(
                    f"segment {seg} already has a replica on BS "
                    f"{move.dest}; copies must not co-locate"
                )
            state.seg_replicas[seg, 0] = move.dest
        state.seg_bs[seg] = move.dest
        return Move(kind=MoveKind.SEGMENT_MIGRATE, entity=seg, dest=old_bs)

    raise BalanceError(f"unknown move kind {move.kind!r}")
