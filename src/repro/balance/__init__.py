"""``repro.balance``: the hbal-style global cluster balancer.

One scalar badness score (weighted normalized CoV over node / worker
thread / BlockServer utilizations), one move universe (QP rebinds, VD
re-homes, segment migrations) with per-resource exclusions, and greedy
one-step-lookahead descent emitting a deterministic, JSON-serializable
:class:`MovePlan`.  The paper's fixed-trigger mechanisms are available as
a baseline planner over the same :class:`ClusterState` snapshot type.
"""

from repro.balance.descent import (
    DEFAULT_MIN_GAIN,
    BalanceConfig,
    plan_moves,
)
from repro.balance.generate import StateShape, random_cluster_state
from repro.balance.moves import Move, MoveKind, apply_move
from repro.balance.plan import PLAN_SCHEMA_VERSION, MovePlan, PlannedMove
from repro.balance.policies import choose_shed_segments, wt_swap_decision
from repro.balance.score import (
    DIMENSIONS,
    ScoreWeights,
    badness,
    dimension_covs,
    safe_normalized_cov,
)
from repro.balance.state import (
    STATE_SCHEMA_VERSION,
    ClusterState,
    qp_ids_of_vd,
    segment_ids_of_bs,
    state_summary,
)
from repro.balance.trigger import TriggerConfig, fixed_trigger_plan

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "STATE_SCHEMA_VERSION",
    "DEFAULT_MIN_GAIN",
    "DIMENSIONS",
    "BalanceConfig",
    "ClusterState",
    "Move",
    "MoveKind",
    "MovePlan",
    "PlannedMove",
    "ScoreWeights",
    "StateShape",
    "TriggerConfig",
    "apply_move",
    "badness",
    "choose_shed_segments",
    "dimension_covs",
    "fixed_trigger_plan",
    "plan_moves",
    "qp_ids_of_vd",
    "random_cluster_state",
    "safe_normalized_cov",
    "segment_ids_of_bs",
    "state_summary",
    "wt_swap_decision",
]
