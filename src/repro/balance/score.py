"""The scalar cluster-badness score the global balancer descends.

Following Ganeti's ``hbal``, badness is one number: a weighted average of
the normalized CoV (the paper's imbalance metric, §4/§6) over three
utilization dimensions — compute nodes, worker threads, and BlockServers.
0.0 is a perfectly even cluster; 1.0 is all traffic on one entity in
every weighted dimension.  Dimensions that do not exist in a state (an
empty compute side, a single BS) contribute 0.0, so storage-only states
score cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.balance.state import ClusterState
from repro.stats.skewness import normalized_cov
from repro.util.errors import ConfigError

#: Dimension order is part of the score definition (and of plan JSON).
DIMENSIONS = ("node", "wt", "bs")


@dataclass(frozen=True)
class ScoreWeights:
    """Relative weight of each utilization dimension in the badness score."""

    node: float = 1.0
    wt: float = 1.0
    bs: float = 1.0

    def __post_init__(self) -> None:
        for name in DIMENSIONS:
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0:
                raise ConfigError(
                    f"score weight {name!r} must be finite and >= 0"
                )
        if self.total <= 0:
            raise ConfigError("score weights must not all be zero")

    @property
    def total(self) -> float:
        return self.node + self.wt + self.bs

    def to_dict(self) -> Dict[str, float]:
        return {name: float(getattr(self, name)) for name in DIMENSIONS}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScoreWeights":
        unknown = set(payload) - set(DIMENSIONS)
        if unknown:
            raise ConfigError(f"unknown score weights: {sorted(unknown)}")
        return cls(**{k: float(v) for k, v in payload.items()})


def safe_normalized_cov(vector: np.ndarray) -> float:
    """Normalized CoV extended to the degenerate cases a state can hit.

    Empty and single-entry vectors have no dispersion, and an all-zero
    vector is perfectly even — all score 0.0 (``normalized_cov`` itself
    raises on empty input and divides by a zero mean).
    """
    if vector.size <= 1 or float(vector.sum()) <= 0.0:
        return 0.0
    return normalized_cov(vector)


def dimension_covs(state: ClusterState) -> Dict[str, float]:
    """Per-dimension normalized CoV: ``{"node": ..., "wt": ..., "bs": ...}``."""
    return {
        "node": safe_normalized_cov(state.node_utilization()),
        "wt": safe_normalized_cov(state.wt_utilization()),
        "bs": safe_normalized_cov(state.bs_utilization()),
    }


def badness(
    state: ClusterState, weights: ScoreWeights = ScoreWeights()
) -> float:
    """The scalar badness score of one state under the given weights."""
    covs = dimension_covs(state)
    return (
        weights.node * covs["node"]
        + weights.wt * covs["wt"]
        + weights.bs * covs["bs"]
    ) / weights.total
