"""The cluster snapshot the global balancer and fixed triggers both consume.

A :class:`ClusterState` is a flat, array-backed view of one data center at
one instant: which node and worker thread hosts each queue pair, which
BlockServer hosts each segment, and how much traffic each entity carried
over the scoring window.  It deliberately contains *only* what a balancing
decision needs — no IO traces, no fault state — so it is cheap to copy,
serialize, and diff.

Determinism contract: every constructor orders entities by ascending id,
and the utilization accumulators use ``np.add.at`` in that order, so a
state built twice from the same inputs produces bitwise-identical
utilization vectors and an identical :meth:`digest`.  The JSON form
round-trips floats exactly (``json`` emits ``repr`` which round-trips
IEEE-754 doubles), which is what makes move plans byte-stable across a
save/load cycle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.util.errors import BalanceError, ConfigError

#: Current serialized-layout version.  Version 2 adds the optional
#: ``seg_replicas`` table (redundancy-aware placement).  Width-1 states
#: omit it and serialize as version 1, byte-identical to historical
#: snapshots — existing pinned digests stay valid; version-2 payloads
#: only appear when replicas exist.  ``from_dict`` accepts both.
STATE_SCHEMA_VERSION = 2


@dataclass
class ClusterState:
    """Array-backed snapshot of one DC's bindings, placement, and traffic.

    Compute side (all arrays indexed by queue-pair id):

    - ``qp_node``: hosting compute node
    - ``qp_wt``: hosting worker thread (*global* WT id; always satisfies
      ``qp_wt // workers_per_node == qp_node``)
    - ``qp_vd``: owning virtual disk
    - ``qp_traffic``: bytes carried over the scoring window

    Storage side (indexed by segment id): ``seg_bs``, ``seg_vd``,
    ``seg_traffic``, and optionally ``seg_replicas`` — the full
    ``(num_segments, width)`` placement table when the cluster stores
    copies redundantly (column 0 always equals ``seg_bs``; rows never
    repeat a BS).  ``None`` means single-copy placement.

    A DC with no compute side (``num_compute_nodes == 0`` and empty qp
    arrays) is legal: the inter-BS balancer refactor builds storage-only
    states via :meth:`from_storage`.
    """

    workers_per_node: int
    num_compute_nodes: int
    num_block_servers: int
    qp_node: np.ndarray
    qp_wt: np.ndarray
    qp_vd: np.ndarray
    qp_traffic: np.ndarray
    seg_bs: np.ndarray
    seg_vd: np.ndarray
    seg_traffic: np.ndarray
    seg_replicas: Optional[np.ndarray] = None

    # -- shape ----------------------------------------------------------

    @property
    def num_qps(self) -> int:
        return int(self.qp_node.size)

    @property
    def num_segments(self) -> int:
        return int(self.seg_bs.size)

    @property
    def num_wts(self) -> int:
        return self.num_compute_nodes * self.workers_per_node

    def validate(self) -> None:
        """Raise :class:`BalanceError` unless the state is self-consistent."""
        if self.workers_per_node < 1:
            raise BalanceError("workers_per_node must be >= 1")
        if self.num_compute_nodes < 0 or self.num_block_servers < 0:
            raise BalanceError("node/BS counts must be non-negative")
        for name in ("qp_node", "qp_wt", "qp_vd", "qp_traffic"):
            if getattr(self, name).shape != (self.num_qps,):
                raise BalanceError(f"{name} must be 1-D of num_qps")
        for name in ("seg_bs", "seg_vd", "seg_traffic"):
            if getattr(self, name).shape != (self.num_segments,):
                raise BalanceError(f"{name} must be 1-D of num_segments")
        for name in ("qp_traffic", "seg_traffic"):
            arr = getattr(self, name)
            if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0)):
                raise BalanceError(f"{name} must be finite and non-negative")
        if self.num_qps:
            if self.num_compute_nodes == 0:
                raise BalanceError("queue pairs exist but no compute nodes")
            if np.any(self.qp_node < 0) or np.any(
                self.qp_node >= self.num_compute_nodes
            ):
                raise BalanceError("qp_node out of range")
            if np.any(self.qp_wt < 0) or np.any(self.qp_wt >= self.num_wts):
                raise BalanceError("qp_wt out of range")
            if np.any(self.qp_wt // self.workers_per_node != self.qp_node):
                raise BalanceError("qp_wt is not on the QP's node")
            if np.any(self.qp_vd < 0):
                raise BalanceError("qp_vd must be non-negative")
            # Single-WT hosting implies VD co-location: every QP of one VD
            # lives on one node (re-homing moves them together).
            num_vds = int(self.qp_vd.max()) + 1
            lo = np.full(num_vds, np.iinfo(np.int64).max, dtype=np.int64)
            hi = np.full(num_vds, -1, dtype=np.int64)
            np.minimum.at(lo, self.qp_vd, self.qp_node)
            np.maximum.at(hi, self.qp_vd, self.qp_node)
            present = hi >= 0
            if np.any(lo[present] != hi[present]):
                raise BalanceError("a VD's queue pairs span multiple nodes")
        if self.num_segments:
            if self.num_block_servers == 0:
                raise BalanceError("segments exist but no BlockServers")
            if np.any(self.seg_bs < 0) or np.any(
                self.seg_bs >= self.num_block_servers
            ):
                raise BalanceError("seg_bs out of range")
            if np.any(self.seg_vd < 0):
                raise BalanceError("seg_vd must be non-negative")
        if self.seg_replicas is not None:
            table = self.seg_replicas
            if table.ndim != 2 or table.shape[0] != self.num_segments:
                raise BalanceError(
                    "seg_replicas must be (num_segments, width)"
                )
            if table.shape[1] < 1:
                raise BalanceError("seg_replicas width must be >= 1")
            if table.size and (
                table.min() < 0 or table.max() >= self.num_block_servers
            ):
                raise BalanceError("seg_replicas out of range")
            if self.num_segments and np.any(table[:, 0] != self.seg_bs):
                raise BalanceError(
                    "seg_replicas column 0 must equal seg_bs (the primary)"
                )
            if table.shape[1] > 1:
                ordered = np.sort(table, axis=1)
                if bool((ordered[:, 1:] == ordered[:, :-1]).any()):
                    raise BalanceError(
                        "seg_replicas co-locates copies of a segment"
                    )

    # -- utilization vectors -------------------------------------------

    def wt_utilization(self) -> np.ndarray:
        """Bytes per worker thread over the window (idle WTs are zeros)."""
        out = np.zeros(self.num_wts)
        np.add.at(out, self.qp_wt, self.qp_traffic)
        return out

    def node_utilization(self) -> np.ndarray:
        """Bytes per compute node over the window."""
        out = np.zeros(self.num_compute_nodes)
        np.add.at(out, self.qp_node, self.qp_traffic)
        return out

    def bs_utilization(self) -> np.ndarray:
        """Bytes per BlockServer over the window (empty BSs are zeros)."""
        out = np.zeros(self.num_block_servers)
        np.add.at(out, self.seg_bs, self.seg_traffic)
        return out

    # -- copies and serialization --------------------------------------

    def copy(self) -> "ClusterState":
        return ClusterState(
            workers_per_node=self.workers_per_node,
            num_compute_nodes=self.num_compute_nodes,
            num_block_servers=self.num_block_servers,
            qp_node=self.qp_node.copy(),
            qp_wt=self.qp_wt.copy(),
            qp_vd=self.qp_vd.copy(),
            qp_traffic=self.qp_traffic.copy(),
            seg_bs=self.seg_bs.copy(),
            seg_vd=self.seg_vd.copy(),
            seg_traffic=self.seg_traffic.copy(),
            seg_replicas=(
                None if self.seg_replicas is None else self.seg_replicas.copy()
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        # Single-copy states serialize exactly as historical version-1
        # payloads (same keys, same digest); the replica table and the
        # version bump appear only when redundancy is in play.
        payload = {
            "schema_version": 1 if self.seg_replicas is None else 2,
            "workers_per_node": self.workers_per_node,
            "num_compute_nodes": self.num_compute_nodes,
            "num_block_servers": self.num_block_servers,
            "qp_node": [int(v) for v in self.qp_node],
            "qp_wt": [int(v) for v in self.qp_wt],
            "qp_vd": [int(v) for v in self.qp_vd],
            "qp_traffic": [float(v) for v in self.qp_traffic],
            "seg_bs": [int(v) for v in self.seg_bs],
            "seg_vd": [int(v) for v in self.seg_vd],
            "seg_traffic": [float(v) for v in self.seg_traffic],
        }
        if self.seg_replicas is not None:
            payload["seg_replicas"] = [
                [int(v) for v in row] for row in self.seg_replicas
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusterState":
        version = payload.get("schema_version")
        if version not in (1, STATE_SCHEMA_VERSION):
            raise BalanceError(
                f"unsupported cluster-state schema {version!r} "
                f"(expected 1 or {STATE_SCHEMA_VERSION})"
            )
        replicas = payload.get("seg_replicas")
        try:
            state = cls(
                workers_per_node=int(payload["workers_per_node"]),
                num_compute_nodes=int(payload["num_compute_nodes"]),
                num_block_servers=int(payload["num_block_servers"]),
                qp_node=np.asarray(payload["qp_node"], dtype=np.int64),
                qp_wt=np.asarray(payload["qp_wt"], dtype=np.int64),
                qp_vd=np.asarray(payload["qp_vd"], dtype=np.int64),
                qp_traffic=np.asarray(payload["qp_traffic"], dtype=float),
                seg_bs=np.asarray(payload["seg_bs"], dtype=np.int64),
                seg_vd=np.asarray(payload["seg_vd"], dtype=np.int64),
                seg_traffic=np.asarray(payload["seg_traffic"], dtype=float),
                seg_replicas=(
                    None
                    if replicas is None
                    else np.asarray(replicas, dtype=np.int64)
                ),
            )
        except KeyError as exc:
            raise BalanceError(f"cluster state missing field {exc}") from exc
        state.validate()
        return state

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, two-space indent, trailing newline."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ClusterState":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BalanceError(f"malformed cluster-state JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BalanceError("cluster-state JSON must be an object")
        return cls.from_dict(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "ClusterState":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def digest(self) -> str:
        """sha256 of the canonical JSON form (plans pin this)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_components(
        cls,
        fleet,
        hypervisors,
        storage,
        qp_traffic: np.ndarray,
        seg_traffic: np.ndarray,
    ) -> "ClusterState":
        """Snapshot live fleet/hypervisor/storage objects plus traffic.

        ``qp_traffic``/``seg_traffic`` are dense vectors indexed by qp and
        segment id.  Bindings come from the hypervisors' *current* state
        and placement from the storage cluster's, so a state taken after
        rebinds or migrations reflects them.
        """
        num_qps = len(fleet.queue_pairs)
        num_segments = len(fleet.segments)
        qp_traffic = np.asarray(qp_traffic, dtype=float)
        seg_traffic = np.asarray(seg_traffic, dtype=float)
        if qp_traffic.shape != (num_qps,):
            raise ConfigError(
                f"qp_traffic must have {num_qps} entries, "
                f"got shape {qp_traffic.shape}"
            )
        if seg_traffic.shape != (num_segments,):
            raise ConfigError(
                f"seg_traffic must have {num_segments} entries, "
                f"got shape {seg_traffic.shape}"
            )
        binding = hypervisors.binding_arrays()
        qp_wt = np.fromiter(
            (binding[qp.qp_id] for qp in fleet.queue_pairs),
            dtype=np.int64,
            count=num_qps,
        )
        seg_bs = storage.primary_array()
        state = cls(
            workers_per_node=fleet.config.workers_per_node,
            num_compute_nodes=fleet.config.num_compute_nodes,
            num_block_servers=fleet.config.num_block_servers,
            qp_node=np.fromiter(
                (qp.compute_node_id for qp in fleet.queue_pairs),
                dtype=np.int64,
                count=num_qps,
            ),
            qp_wt=qp_wt,
            qp_vd=np.fromiter(
                (qp.vd_id for qp in fleet.queue_pairs),
                dtype=np.int64,
                count=num_qps,
            ),
            qp_traffic=qp_traffic,
            seg_bs=seg_bs,
            seg_vd=np.fromiter(
                (seg.vd_id for seg in fleet.segments),
                dtype=np.int64,
                count=num_segments,
            ),
            seg_traffic=seg_traffic,
            seg_replicas=(
                storage.placement.table_array()
                if storage.placement.width > 1
                else None
            ),
        )
        state.validate()
        return state

    @classmethod
    def from_simulation(
        cls, result, direction: str = "total"
    ) -> "ClusterState":
        """Snapshot one DC's :class:`SimulationResult` metric dataset.

        Per-QP and per-segment traffic is the window total of the chosen
        ``direction`` ('read', 'write', or 'total'), matching how the
        paper's balancers consume the metric dataset.
        """
        if direction not in ("read", "write", "total"):
            raise ConfigError(
                f"direction must be 'read', 'write' or 'total', "
                f"got {direction!r}"
            )

        def _dense(table, key_field: str, size: int) -> np.ndarray:
            out = np.zeros(size)
            if direction in ("read", "total"):
                for key, value in table.sum_by(key_field, "read_bytes").items():
                    out[key] += value
            if direction in ("write", "total"):
                for key, value in table.sum_by(
                    key_field, "write_bytes"
                ).items():
                    out[key] += value
            return out

        fleet = result.fleet
        qp_traffic = _dense(
            result.metrics.compute, "qp_id", len(fleet.queue_pairs)
        )
        seg_traffic = _dense(
            result.metrics.storage, "segment_id", len(fleet.segments)
        )
        return cls.from_components(
            fleet, result.hypervisors, result.storage, qp_traffic, seg_traffic
        )

    @classmethod
    def from_storage(
        cls, storage, seg_traffic: np.ndarray
    ) -> "ClusterState":
        """A storage-only state (empty compute side) from live placement.

        The inter-BS balancer uses this per period: ``bs_utilization()``
        accumulates in ascending-segment-id order, which is exactly the
        row order of :meth:`StorageCluster.primary_array` — per-period
        loads stay bitwise identical to the historical ``np.add.at``
        path.
        """
        fleet = storage.fleet
        num_segments = len(fleet.segments)
        seg_traffic = np.asarray(seg_traffic, dtype=float)
        if seg_traffic.shape != (num_segments,):
            raise ConfigError(
                f"seg_traffic must have {num_segments} entries, "
                f"got shape {seg_traffic.shape}"
            )
        seg_bs = storage.primary_array()
        empty_int = np.zeros(0, dtype=np.int64)
        return cls(
            workers_per_node=1,
            num_compute_nodes=0,
            num_block_servers=fleet.config.num_block_servers,
            qp_node=empty_int,
            qp_wt=empty_int.copy(),
            qp_vd=empty_int.copy(),
            qp_traffic=np.zeros(0),
            seg_bs=seg_bs,
            seg_vd=np.fromiter(
                (seg.vd_id for seg in fleet.segments),
                dtype=np.int64,
                count=num_segments,
            ),
            seg_traffic=seg_traffic,
            seg_replicas=(
                storage.placement.table_array()
                if storage.placement.width > 1
                else None
            ),
        )


def qp_ids_of_vd(state: ClusterState, vd_id: int) -> np.ndarray:
    """Ascending qp ids of one VD (empty if the VD has no QPs)."""
    return np.nonzero(state.qp_vd == vd_id)[0]


def segment_ids_of_bs(state: ClusterState, bs_id: int) -> np.ndarray:
    """Ascending segment ids currently placed on one BlockServer."""
    return np.nonzero(state.seg_bs == bs_id)[0]


def state_summary(state: ClusterState) -> Dict[str, Any]:
    """Small human-facing summary used by the CLI's score mode."""
    def _stats(vector: np.ndarray) -> "Optional[Dict[str, float]]":
        if vector.size == 0:
            return None
        return {
            "min": float(vector.min()),
            "mean": float(vector.mean()),
            "max": float(vector.max()),
        }

    return {
        "num_qps": state.num_qps,
        "num_segments": state.num_segments,
        "num_compute_nodes": state.num_compute_nodes,
        "num_wts": state.num_wts if state.num_compute_nodes else 0,
        "num_block_servers": state.num_block_servers,
        "node_utilization": _stats(state.node_utilization()),
        "wt_utilization": _stats(state.wt_utilization()),
        "bs_utilization": _stats(state.bs_utilization()),
    }
