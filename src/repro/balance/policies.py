"""Shared fixed-trigger decision primitives (§4.3 and §6, Algorithm 1).

These are the two decisions the paper's production balancers make, pulled
out of :mod:`repro.balancer.wt` and :mod:`repro.balancer.interbs` so the
period-replay balancers and the snapshot planner in
:mod:`repro.balance.trigger` provably apply the *same* rules.  Both are
bit-for-bit extractions: identical numpy ops in identical order, so the
refactored callers reproduce their historical outputs exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def wt_swap_decision(
    loads: np.ndarray, trigger_ratio: float
) -> "Optional[Tuple[int, int]]":
    """The §4.3 trigger: ``(hot, cold)`` WT indices to swap, or None.

    A swap fires when the hottest WT carries more than ``trigger_ratio``
    times the coldest WT's traffic.  An idle coldest WT makes any hot
    traffic exceed the trigger (hottest > ratio x 0), matching the
    production condition; an all-idle or perfectly even load vector
    never fires.
    """
    loads = np.asarray(loads, dtype=float)
    if loads.size == 0 or loads.sum() == 0:
        return None
    hot = int(np.argmax(loads))
    cold = int(np.argmin(loads))
    if loads[hot] > trigger_ratio * loads[cold]:
        return hot, cold
    return None


def choose_shed_segments(
    segment_ids: Sequence[int],
    traffic: np.ndarray,
    shed_target: float,
    ceiling: float,
    max_segments: int,
) -> List[int]:
    """Algorithm 1's shed selection: hottest admissible segments first.

    Walks the exporter's segments hottest-first, skipping any hotter than
    ``ceiling`` (the §6.1.3 admission constraint — a segment hotter than
    a whole BS just moves the hotspot), until the shed traffic reaches
    ``shed_target`` or ``max_segments`` are chosen.  Zero-traffic
    segments are never shed.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    order = np.argsort(traffic)[::-1]
    chosen: List[int] = []
    shed = 0.0
    for index in order:
        if traffic[index] <= 0:
            break
        if traffic[index] > ceiling:
            continue
        chosen.append(int(segment_ids[index]))
        shed += float(traffic[index])
        if shed >= shed_target or len(chosen) >= max_segments:
            break
    return chosen
