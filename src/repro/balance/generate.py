"""Seed-stable random cluster states for tests and smoke runs.

The companion of :func:`repro.faults.generate.random_fault_plan`:
``(seed, shape)`` fully determines the state, so property suites
parametrize by seed alone and the CI smoke job can plan against a
"medium cluster" without building a study.  The generator is
intentionally skewed the way the paper's fleets are — heavy-tailed VD
traffic, uneven QP splits within a VD, and round-robin-with-random-start
segment placement — so trigger thresholds and the descent both have real
work to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.balance.state import ClusterState
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class StateShape:
    """Entity counts a random cluster state draws from."""

    num_compute_nodes: int = 8
    workers_per_node: int = 4
    num_block_servers: int = 12
    num_vds: int = 32
    max_qps_per_vd: int = 4
    max_segments_per_vd: int = 8

    def __post_init__(self) -> None:
        if min(
            self.num_compute_nodes,
            self.workers_per_node,
            self.num_block_servers,
            self.num_vds,
            self.max_qps_per_vd,
            self.max_segments_per_vd,
        ) <= 0:
            raise ConfigError("state shape dimensions must be positive")

    @classmethod
    def medium(cls) -> "StateShape":
        """The CI smoke job's cluster: big enough for nontrivial plans."""
        return cls(
            num_compute_nodes=16,
            workers_per_node=4,
            num_block_servers=24,
            num_vds=96,
            max_qps_per_vd=4,
            max_segments_per_vd=12,
        )


def random_cluster_state(
    seed: int, shape: StateShape = StateShape(), label: str = "cluster-state"
) -> ClusterState:
    """Draw one state; the same ``(seed, shape, label)`` always returns it."""
    rng = spawn_rng(seed, f"{label}/{shape}")
    qp_node: List[int] = []
    qp_wt: List[int] = []
    qp_vd: List[int] = []
    qp_traffic: List[float] = []
    seg_bs: List[int] = []
    seg_vd: List[int] = []
    seg_traffic: List[float] = []

    per = shape.workers_per_node
    for vd in range(shape.num_vds):
        node = int(rng.integers(0, shape.num_compute_nodes))
        # Heavy-tailed per-VD intensity (the paper's CCR-style skew):
        # a few VDs dominate the cluster.
        intensity = float(rng.lognormal(mean=0.0, sigma=1.6))
        if rng.random() < 0.1:
            intensity *= 20.0  # an occasional whale tenant
        num_qps = int(rng.integers(1, shape.max_qps_per_vd + 1))
        splits = rng.dirichlet(np.full(num_qps, 0.6))
        for index in range(num_qps):
            qp_node.append(node)
            qp_wt.append(node * per + int(rng.integers(0, per)))
            qp_vd.append(vd)
            qp_traffic.append(intensity * float(splits[index]))
        num_segments = int(rng.integers(1, shape.max_segments_per_vd + 1))
        start_bs = int(rng.integers(0, shape.num_block_servers))
        seg_splits = rng.dirichlet(np.full(num_segments, 0.5))
        for index in range(num_segments):
            seg_bs.append((start_bs + index) % shape.num_block_servers)
            seg_vd.append(vd)
            seg_traffic.append(intensity * float(seg_splits[index]))

    state = ClusterState(
        workers_per_node=per,
        num_compute_nodes=shape.num_compute_nodes,
        num_block_servers=shape.num_block_servers,
        qp_node=np.asarray(qp_node, dtype=np.int64),
        qp_wt=np.asarray(qp_wt, dtype=np.int64),
        qp_vd=np.asarray(qp_vd, dtype=np.int64),
        qp_traffic=np.asarray(qp_traffic, dtype=float),
        seg_bs=np.asarray(seg_bs, dtype=np.int64),
        seg_vd=np.asarray(seg_vd, dtype=np.int64),
        seg_traffic=np.asarray(seg_traffic, dtype=float),
    )
    state.validate()
    return state
