"""Greedy one-step-lookahead descent over the move universe (hbal-style).

Each step evaluates *every* legal move's effect on the badness score and
applies the single best one, stopping when the best canonical gain drops
below ``min_gain``.  Candidate ranking uses an exact algebraic shortcut:
moves conserve total traffic, so each dimension's mean is invariant and
only the sum of squares changes — the new score of all candidates in a
family is computed with one vectorized expression instead of one state
copy per candidate.  The *accepted* move's gain and score are then
re-measured with a from-scratch :func:`repro.balance.score.badness`
recompute, which is what the plan records (and what
:meth:`MovePlan.apply_to` re-verifies exactly).

Determinism: ties in the estimated score break first by move family
(``qp_rebind`` < ``vd_rehome`` < ``segment_migrate``), then by lowest
entity id, then lowest destination id — the plan is a pure function of
``(state, config)``, which is what makes it restart-stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np

from repro.balance.moves import Move, MoveKind, apply_move
from repro.balance.plan import MovePlan, PlannedMove
from repro.balance.score import ScoreWeights, badness
from repro.balance.state import ClusterState
from repro.obs.runtime import get_telemetry
from repro.util.errors import ConfigError

#: Default stop threshold: the canonical score is in [0, 1], so 1e-6 of
#: badness is far below anything a real move achieves but still cuts the
#: long tail of float-noise "improvements".
DEFAULT_MIN_GAIN = 1e-6


def _id_set(values: "Iterable[int] | None", name: str) -> FrozenSet[int]:
    if values is None:
        return frozenset()
    out = set()
    for value in values:
        if int(value) != value or int(value) < 0:
            raise ConfigError(
                f"{name} entries must be non-negative ints, got {value!r}"
            )
        out.add(int(value))
    return frozenset(out)


@dataclass(frozen=True)
class BalanceConfig:
    """Knobs of the greedy planner.

    Exclusions mirror hbal's pinning flags: ``exclude_qps`` /
    ``exclude_vds`` / ``exclude_segments`` pin entities in place (a VD
    containing an excluded QP cannot be re-homed, and an excluded VD
    pins all of its QPs), while ``exclude_nodes`` / ``exclude_bs`` veto
    *destinations*.  The ``no_*`` switches disable whole move families,
    like hbal's ``--no-disk-moves`` / ``--no-instance-moves``.
    """

    weights: ScoreWeights = field(default_factory=ScoreWeights)
    min_gain: float = DEFAULT_MIN_GAIN
    max_moves: int = 128
    no_qp_rebinds: bool = False
    no_vd_rehomes: bool = False
    no_segment_moves: bool = False
    exclude_qps: FrozenSet[int] = frozenset()
    exclude_vds: FrozenSet[int] = frozenset()
    exclude_segments: FrozenSet[int] = frozenset()
    exclude_nodes: FrozenSet[int] = frozenset()
    exclude_bs: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if not (self.min_gain > 0 and math.isfinite(self.min_gain)):
            raise ConfigError("min_gain must be positive and finite")
        if self.max_moves < 1:
            raise ConfigError("max_moves must be >= 1")
        for name in (
            "exclude_qps",
            "exclude_vds",
            "exclude_segments",
            "exclude_nodes",
            "exclude_bs",
        ):
            object.__setattr__(self, name, _id_set(getattr(self, name), name))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "weights": self.weights.to_dict(),
            "min_gain": float(self.min_gain),
            "max_moves": int(self.max_moves),
            "no_qp_rebinds": self.no_qp_rebinds,
            "no_vd_rehomes": self.no_vd_rehomes,
            "no_segment_moves": self.no_segment_moves,
            "exclude_qps": sorted(self.exclude_qps),
            "exclude_vds": sorted(self.exclude_vds),
            "exclude_segments": sorted(self.exclude_segments),
            "exclude_nodes": sorted(self.exclude_nodes),
            "exclude_bs": sorted(self.exclude_bs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BalanceConfig":
        data = dict(payload)
        weights = data.pop("weights", None)
        kwargs: Dict[str, Any] = {}
        if weights is not None:
            kwargs["weights"] = ScoreWeights.from_dict(weights)
        known = {
            "min_gain",
            "max_moves",
            "no_qp_rebinds",
            "no_vd_rehomes",
            "no_segment_moves",
            "exclude_qps",
            "exclude_vds",
            "exclude_segments",
            "exclude_nodes",
            "exclude_bs",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown balance config keys: {sorted(unknown)}")
        for key in known & set(data):
            value = data[key]
            kwargs[key] = (
                frozenset(value) if key.startswith("exclude_") else value
            )
        return cls(**kwargs)


def _est_ncov(sumsq, total: float, size: int):
    """Normalized CoV from a (vector of) sum-of-squares, mean held fixed.

    Exactly mirrors :func:`safe_normalized_cov`'s degenerate cases; the
    non-degenerate value may differ from numpy's ``std`` in the last few
    ulps, which is why it is only used to *rank* candidates, never
    recorded in a plan.
    """
    if size <= 1 or total <= 0:
        return np.zeros_like(sumsq) if isinstance(sumsq, np.ndarray) else 0.0
    mean = total / size
    variance = np.maximum(sumsq / size - mean * mean, 0.0)
    return np.sqrt(variance) / (mean * math.sqrt(size - 1))


class _Dimension:
    """Sum/sum-of-squares bookkeeping for one utilization vector."""

    def __init__(self, vector: np.ndarray):
        self.vector = vector
        self.size = int(vector.size)
        self.total = float(vector.sum())
        self.sumsq = float(np.dot(vector, vector))
        self.est = float(_est_ncov(self.sumsq, self.total, self.size))


def _pinned_qps(state: ClusterState, config: BalanceConfig) -> np.ndarray:
    """Boolean mask of QPs that must not move (directly or via their VD)."""
    pinned = np.zeros(state.num_qps, dtype=bool)
    for qp in config.exclude_qps:
        if qp < state.num_qps:
            pinned[qp] = True
    if config.exclude_vds and state.num_qps:
        pinned |= np.isin(
            state.qp_vd, np.asarray(sorted(config.exclude_vds), dtype=np.int64)
        )
    return pinned


def _best_candidate(
    state: ClusterState, config: BalanceConfig
) -> "Tuple[Optional[Move], int]":
    """The estimated-best legal move, and how many candidates were scored."""
    w = config.weights
    total_w = w.total
    node = _Dimension(state.node_utilization())
    wt = _Dimension(state.wt_utilization())
    bs = _Dimension(state.bs_utilization())
    base_est = (w.node * node.est + w.wt * wt.est + w.bs * bs.est) / total_w

    best_est = math.inf
    best_move: Optional[Move] = None
    evaluated = 0
    pinned = _pinned_qps(state, config)

    # -- family 1: qp_rebind (same-node WT moves) -----------------------
    if (
        not config.no_qp_rebinds
        and state.num_qps
        and state.workers_per_node > 1
    ):
        per = state.workers_per_node
        t = state.qp_traffic
        cur = wt.vector[state.qp_wt]
        dest_wt = (
            state.qp_node[:, None] * per + np.arange(per)[None, :]
        )  # (Q, per)
        dest_u = wt.vector[dest_wt]
        d_src = (cur - t) ** 2 - cur**2
        new_sumsq = (
            wt.sumsq
            + d_src[:, None]
            + (dest_u + t[:, None]) ** 2
            - dest_u**2
        )
        est = base_est - (w.wt / total_w) * (
            wt.est - _est_ncov(new_sumsq, wt.total, wt.size)
        )
        invalid = (
            (dest_wt == state.qp_wt[:, None])
            | (t[:, None] <= 0)
            | pinned[:, None]
        )
        est[invalid] = math.inf
        evaluated += int(np.count_nonzero(~invalid))
        flat = int(np.argmin(est))
        if math.isfinite(est.flat[flat]):
            qp, slot = divmod(flat, per)
            best_est = float(est.flat[flat])
            best_move = Move(
                kind=MoveKind.QP_REBIND,
                entity=qp,
                dest=int(dest_wt[qp, slot]),
            )

    # -- family 2: vd_rehome (whole-VD node moves, slots preserved) -----
    if (
        not config.no_vd_rehomes
        and state.num_qps
        and state.num_compute_nodes > 1
    ):
        per = state.workers_per_node
        num_nodes = state.num_compute_nodes
        wt_grid = wt.vector.reshape(num_nodes, per)
        dest_vetoed = np.zeros(num_nodes, dtype=bool)
        for node_id in config.exclude_nodes:
            if node_id < num_nodes:
                dest_vetoed[node_id] = True
        for vd in (int(v) for v in np.unique(state.qp_vd)):
            if vd in config.exclude_vds:
                continue
            qps = np.nonzero(state.qp_vd == vd)[0]
            if np.any(pinned[qps]):
                continue
            t = state.qp_traffic[qps]
            total_t = float(t.sum())
            if total_t <= 0:
                continue
            src = int(state.qp_node[qps[0]])
            delta = np.zeros(per)
            np.add.at(delta, state.qp_wt[qps] % per, t)
            src_term = float(
                ((wt_grid[src] - delta) ** 2 - wt_grid[src] ** 2).sum()
            )
            dest_term = ((wt_grid + delta[None, :]) ** 2 - wt_grid**2).sum(
                axis=1
            )
            new_wt_sumsq = wt.sumsq + src_term + dest_term
            new_node_sumsq = (
                node.sumsq
                + (node.vector[src] - total_t) ** 2
                - node.vector[src] ** 2
                + (node.vector + total_t) ** 2
                - node.vector**2
            )
            est = (
                base_est
                - (w.wt / total_w)
                * (wt.est - _est_ncov(new_wt_sumsq, wt.total, wt.size))
                - (w.node / total_w)
                * (node.est - _est_ncov(new_node_sumsq, node.total, node.size))
            )
            invalid = dest_vetoed.copy()
            invalid[src] = True
            est[invalid] = math.inf
            evaluated += int(np.count_nonzero(~invalid))
            dest = int(np.argmin(est))
            if est[dest] < best_est:
                best_est = float(est[dest])
                best_move = Move(kind=MoveKind.VD_REHOME, entity=vd, dest=dest)

    # -- family 3: segment_migrate --------------------------------------
    if (
        not config.no_segment_moves
        and state.num_segments
        and state.num_block_servers > 1
    ):
        num_bs = state.num_block_servers
        t = state.seg_traffic
        cur = bs.vector[state.seg_bs]
        d_src = (cur - t) ** 2 - cur**2
        new_sumsq = (
            bs.sumsq
            + d_src[:, None]
            + (bs.vector[None, :] + t[:, None]) ** 2
            - bs.vector[None, :] ** 2
        )
        est = base_est - (w.bs / total_w) * (
            bs.est - _est_ncov(new_sumsq, bs.total, bs.size)
        )
        seg_pinned = np.zeros(state.num_segments, dtype=bool)
        for seg in config.exclude_segments:
            if seg < state.num_segments:
                seg_pinned[seg] = True
        bs_vetoed = np.zeros(num_bs, dtype=bool)
        for bs_id in config.exclude_bs:
            if bs_id < num_bs:
                bs_vetoed[bs_id] = True
        invalid = (
            (np.arange(num_bs)[None, :] == state.seg_bs[:, None])
            | (t[:, None] <= 0)
            | seg_pinned[:, None]
            | bs_vetoed[None, :]
        )
        if state.seg_replicas is not None and state.seg_replicas.shape[1] > 1:
            # Replica-aware veto: the primary may not migrate onto a BS
            # holding another copy of the same segment.
            replica_cols = state.seg_replicas[:, 1:]
            rows = np.repeat(
                np.arange(state.num_segments), replica_cols.shape[1]
            )
            invalid[rows, replica_cols.ravel()] = True
        est[invalid] = math.inf
        evaluated += int(np.count_nonzero(~invalid))
        flat = int(np.argmin(est))
        if est.flat[flat] < best_est:
            seg, dest = divmod(flat, num_bs)
            best_est = float(est.flat[flat])
            best_move = Move(
                kind=MoveKind.SEGMENT_MIGRATE, entity=seg, dest=dest
            )

    return best_move, evaluated


def plan_moves(
    state: ClusterState, config: BalanceConfig = BalanceConfig()
) -> MovePlan:
    """Greedy descent from ``state``; returns the (possibly empty) plan.

    The input state is not modified.  The plan pins the input state's
    digest, so :meth:`MovePlan.apply_to` refuses to run it elsewhere.
    """
    state.validate()
    work = state.copy()
    telemetry = get_telemetry()
    initial = badness(work, config.weights)
    score = initial
    planned = []
    with telemetry.span("balance.plan", planner="greedy") as span:
        while len(planned) < config.max_moves:
            move, evaluated = _best_candidate(work, config)
            telemetry.counter("balance.candidates_evaluated").inc(evaluated)
            if move is None:
                break
            inverse = apply_move(work, move)
            new_score = badness(work, config.weights)
            gain = score - new_score
            if not gain >= config.min_gain:
                apply_move(work, inverse)
                break
            planned.append(
                PlannedMove(move=move, gain=gain, score_after=new_score)
            )
            telemetry.counter(
                "balance.moves_planned", kind=move.kind.value
            ).inc()
            telemetry.histogram("balance.move_gain_ppm").observe(
                int(round(gain * 1e6))
            )
            score = new_score
        span.set(
            moves=len(planned),
            initial_score=initial,
            final_score=score,
        )
    return MovePlan(
        planner="greedy",
        state_digest=state.digest(),
        config=config.to_dict(),
        weights=config.weights,
        initial_score=initial,
        final_score=score,
        moves=tuple(planned),
    )
