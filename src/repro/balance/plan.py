"""The serializable, restart-stable product of a balancing run.

A :class:`MovePlan` is an ordered list of moves with the score trajectory
they produce, pinned to the exact state they were planned against (by
sha256 digest).  The JSON form is canonical — sorted keys, two-space
indent, trailing newline — so a plan round-trips byte-identically and a
plan's own :meth:`digest` is a stable fingerprint of a planner's output
(the golden-digest test pins one to catch silent descent-order changes).

Restart stability: planners are pure functions of (state, config), and
:meth:`MovePlan.apply_to` re-verifies every recorded ``score_after``
*exactly* while applying — integer bindings and float traffic survive
JSON unchanged and move application never does float arithmetic on
traffic, so a fresh from-scratch score recompute is bitwise identical to
the one recorded at plan time.  Truncating a plan, applying the prefix,
and re-planning therefore reproduces the remaining suffix verbatim.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.balance.moves import Move, MoveKind, apply_move
from repro.balance.score import ScoreWeights, badness
from repro.balance.state import ClusterState
from repro.util.errors import BalanceError

#: Bumped when the plan JSON layout changes incompatibly.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PlannedMove:
    """One move plus the canonical score bookkeeping around it.

    ``gain`` is ``score_before - score_after`` measured by a from-scratch
    :func:`badness` recompute (the greedy planner guarantees it is
    ``>= min_gain``; the fixed-trigger planner records whatever its
    mechanism produced, which may be negative).
    """

    move: Move
    gain: float
    score_after: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "move": self.move.to_dict(),
            "gain": float(self.gain),
            "score_after": float(self.score_after),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PlannedMove":
        try:
            return cls(
                move=Move.from_dict(payload["move"]),
                gain=float(payload["gain"]),
                score_after=float(payload["score_after"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BalanceError(
                f"malformed planned move {payload!r}: {exc}"
            ) from exc


@dataclass(frozen=True)
class MovePlan:
    """An incremental balancing plan against one pinned cluster state."""

    planner: str
    state_digest: str
    config: Dict[str, Any]
    weights: ScoreWeights
    initial_score: float
    final_score: float
    moves: Tuple[PlannedMove, ...] = field(default_factory=tuple)
    schema_version: int = PLAN_SCHEMA_VERSION

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    @property
    def is_empty(self) -> bool:
        return not self.moves

    def moves_by_kind(self) -> Dict[str, int]:
        counts = {kind.value: 0 for kind in MoveKind}
        for planned in self.moves:
            counts[planned.move.kind.value] += 1
        return counts

    def truncate(self, length: int) -> "MovePlan":
        """The prefix plan of the first ``length`` moves (kill/resume)."""
        if not 0 <= length <= self.num_moves:
            raise BalanceError(
                f"cannot truncate a {self.num_moves}-move plan at {length}"
            )
        moves = self.moves[:length]
        final = moves[-1].score_after if moves else self.initial_score
        return MovePlan(
            planner=self.planner,
            state_digest=self.state_digest,
            config=dict(self.config),
            weights=self.weights,
            initial_score=self.initial_score,
            final_score=final,
            moves=moves,
            schema_version=self.schema_version,
        )

    # -- execution ------------------------------------------------------

    def apply_to(
        self, state: ClusterState, verify_digest: bool = True
    ) -> ClusterState:
        """Apply every move to ``state`` in place; returns the state.

        With ``verify_digest`` the state must hash to the plan's pinned
        digest, and every recorded score is re-verified *exactly*
        against a from-scratch recompute — a mismatch means the plan and
        state drifted apart, and the state is left partially modified
        only if the failure is a score mismatch mid-plan (callers apply
        to a copy when that matters).
        """
        if verify_digest:
            actual = state.digest()
            if actual != self.state_digest:
                raise BalanceError(
                    "plan was made against a different state: digest "
                    f"{self.state_digest[:12]}... != {actual[:12]}..."
                )
            observed = badness(state, self.weights)
            if observed != self.initial_score:
                raise BalanceError(
                    f"initial score mismatch: plan says "
                    f"{self.initial_score!r}, state scores {observed!r}"
                )
        for index, planned in enumerate(self.moves):
            apply_move(state, planned.move)
            if verify_digest:
                observed = badness(state, self.weights)
                if observed != planned.score_after:
                    raise BalanceError(
                        f"score mismatch after move {index}: plan says "
                        f"{planned.score_after!r}, state scores {observed!r}"
                    )
        return state

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "planner": self.planner,
            "state_digest": self.state_digest,
            "config": self.config,
            "weights": self.weights.to_dict(),
            "initial_score": float(self.initial_score),
            "final_score": float(self.final_score),
            "moves": [planned.to_dict() for planned in self.moves],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MovePlan":
        version = payload.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise BalanceError(
                f"unsupported move-plan schema {version!r} "
                f"(expected {PLAN_SCHEMA_VERSION})"
            )
        try:
            return cls(
                planner=str(payload["planner"]),
                state_digest=str(payload["state_digest"]),
                config=dict(payload["config"]),
                weights=ScoreWeights.from_dict(payload["weights"]),
                initial_score=float(payload["initial_score"]),
                final_score=float(payload["final_score"]),
                moves=tuple(
                    PlannedMove.from_dict(move) for move in payload["moves"]
                ),
                schema_version=int(version),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BalanceError(f"malformed move plan: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, two-space indent, trailing newline."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "MovePlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BalanceError(f"malformed move-plan JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BalanceError("move-plan JSON must be an object")
        return cls.from_dict(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "MovePlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def digest(self) -> str:
        """sha256 of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()
