"""Setup shim.

Metadata lives in setup.cfg.  A setup.py/setup.cfg layout (instead of
pyproject.toml) is deliberate: this repo targets offline environments whose
pip cannot fetch the ``wheel`` package that PEP 660 editable installs
require, while the legacy ``pip install -e .`` path works out of the box.
"""

from setuptools import setup

setup()
