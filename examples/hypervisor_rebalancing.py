#!/usr/bin/env python3
"""Hypervisor worker-thread balancing (§4) on a single data center.

Simulates one DC, shows how skewed the round-robin QP-to-WT binding leaves
the worker threads, classifies each node's root cause (Type I/II/III), and
replays the FinNVMe-style periodic rebinding balancer to show why it is not
a silver bullet (Fig 2(d)).

Run:  python examples/hypervisor_rebalancing.py
"""

import numpy as np

from repro.balancer import (
    RebindingConfig,
    classify_node,
    simulate_rebinding,
    wt_cov_samples,
)
from repro.cluster import EBSSimulator, SimulationConfig
from repro.util.rng import RngFactory
from repro.workload import FleetConfig, build_fleet


def main() -> None:
    fleet = build_fleet(
        FleetConfig(
            num_users=10,
            num_vms=36,
            num_compute_nodes=10,
            num_storage_nodes=6,
        ),
        RngFactory(42),
    )
    print("Simulating one data center ...")
    result = EBSSimulator(
        fleet,
        SimulationConfig(duration_seconds=300, trace_sampling_rate=1 / 10),
        RngFactory(42),
    ).run()

    covs = wt_cov_samples(result.metrics.compute, fleet, 60, "total")
    print(
        f"\nWT-CoV across {len(covs)} (node, minute) samples: "
        f"median {np.median(covs):.2f}, p90 {np.percentile(covs, 90):.2f}"
    )
    print("(0 = perfectly even workers, 1 = one worker takes everything)\n")

    print("Per-node root cause and rebinding outcome:")
    print(f"{'node':>4}  {'type':<10} {'rebind ratio':>12}  {'gain':>6}")
    config = RebindingConfig(period_seconds=0.01)
    for hypervisor in result.hypervisors:
        node_type = classify_node(
            result.metrics.compute, fleet, hypervisor.node_id
        )
        outcome = simulate_rebinding(result.traces, hypervisor, config)
        if node_type is None or outcome is None:
            continue
        print(
            f"{hypervisor.node_id:>4}  {node_type.value:<10} "
            f"{outcome.rebinding_ratio:>12.3f}  {outcome.rebinding_gain:>6.2f}"
        )
    print(
        "\nGain < 1 means rebinding balanced the node; nodes whose bursts"
        "\nare shorter than the 10 ms period stay skewed (the paper's"
        "\nblue-circle nodes), motivating per-IO dispatch in hardware."
    )


if __name__ == "__main__":
    main()
