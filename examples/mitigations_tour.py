#!/usr/bin/env python3
"""Tour of the paper's proposed mitigations, implemented and measured.

The paper closes each section with a "possible solutions" discussion; this
example runs all four of them on one simulated data center:

1. §4.4 per-IO multi-WT dispatch vs single-WT hosting;
2. §5.3 prediction-guarded lending vs plain limited lending;
3. §6.1.3 the prophetic (ARIMA-predicted) importer vs the production
   min-traffic heuristic;
4. §7.3.3 hybrid CN+BS frozen caching vs the pure deployments,
plus the token-bucket view of what a throttled VD's queue actually does.

Run:  python examples/mitigations_tour.py
"""

import numpy as np

from repro.balancer import (
    BalancerConfig,
    DispatchPolicy,
    InterBsBalancer,
    PredictorImporter,
    compare_policies,
    make_importer,
    normalized_migration_intervals,
    segment_period_matrix,
)
from repro.cache import CachePlacementConfig, HybridCacheConfig, latency_gain, latency_gain_hybrid
from repro.cluster import EBSSimulator, LatencyModel, SimulationConfig, StorageCluster
from repro.prediction import ArimaPredictor
from repro.throttle import (
    LendingConfig,
    PredictiveLendingConfig,
    build_vm_groups,
    calibrated_caps,
    shape_vd_traffic,
    simulate_lending,
    simulate_predictive_lending,
)
from repro.util.rng import RngFactory
from repro.util.units import MiB
from repro.workload import FleetConfig, build_fleet


def main() -> None:
    rngs = RngFactory(42)
    fleet = build_fleet(
        FleetConfig(
            num_users=10, num_vms=40, num_compute_nodes=10, num_storage_nodes=6
        ),
        rngs,
    )
    duration = 600
    print("Simulating one data center ...\n")
    result = EBSSimulator(
        fleet, SimulationConfig(duration_seconds=duration), rngs
    ).run()

    # --- 1. §4.4 dispatch --------------------------------------------------
    outcomes = compare_policies(result.traces, result.hypervisors)
    static = np.mean(
        [o.total_cov for o in outcomes[DispatchPolicy.HASH_QP]]
    )
    dispatch = np.mean(
        [o.total_cov for o in outcomes[DispatchPolicy.ROUND_ROBIN]]
    )
    cost = np.mean(
        [o.added_cost_us_per_io for o in outcomes[DispatchPolicy.ROUND_ROBIN]]
    )
    print(
        f"1. multi-WT dispatch: WT CoV {static:.2f} -> {dispatch:.2f} "
        f"at +{cost:.2f} us/IO sync cost"
    )

    # --- 2. §5.3 predictive lending ----------------------------------------
    caps = calibrated_caps(result.traffic, rngs.child("caps"))
    groups = build_vm_groups(fleet, result.traffic, caps)
    plain, guarded = [], []
    for group in groups:
        a = simulate_lending(group, "throughput", LendingConfig(0.8))
        b = simulate_predictive_lending(
            group, "throughput",
            PredictiveLendingConfig(base=LendingConfig(0.8)),
        )
        if a.throttled_seconds_without:
            plain.append(a.gain)
            guarded.append(b.gain)
    print(
        f"2. lending at p=0.8 over {len(plain)} groups: plain median gain "
        f"{np.median(plain):.2f} ({100 * np.mean(np.array(plain) < 0):.0f}% "
        f"negative) vs guarded {np.median(guarded):.2f} "
        f"({100 * np.mean(np.array(guarded) < 0):.0f}% negative)"
    )

    # --- 3. §6.1.3 prophetic importer --------------------------------------
    write = segment_period_matrix(
        result.metrics.storage, len(fleet.segments), duration, 30, "write"
    )
    rows = []
    for importer in (make_importer("min_traffic"), PredictorImporter(ArimaPredictor)):
        storage = StorageCluster(fleet)
        run = InterBsBalancer(
            storage, BalancerConfig(), importer, rng=rngs.get(importer.name)
        ).run(write)
        intervals = normalized_migration_intervals(run.migrations, duration)
        rows.append((importer.name, np.mean(intervals) if intervals else float("nan")))
    print(
        "3. importer mean placement lifetime: "
        + ", ".join(f"{name} {value:.3f}" for name, value in rows)
    )

    # --- 4. §7.3.3 hybrid cache --------------------------------------------
    model = LatencyModel()
    placement = CachePlacementConfig(block_bytes=2048 * MiB)
    cn = latency_gain(
        result.traces, fleet, "compute_node", model,
        rngs.get("t-cn"), placement, direction="write",
    )
    bs = latency_gain(
        result.traces, fleet, "block_server", model,
        rngs.get("t-bs"), placement, direction="write",
    )
    hybrid = latency_gain_hybrid(
        result.traces, fleet, model, rngs.get("t-hy"),
        HybridCacheConfig(placement=placement, cn_fraction=0.25),
        direction="write",
    )
    print(
        "4. p50 write latency gain: "
        f"CN {100 * cn[50.0]:.0f}%, BS {100 * bs[50.0]:.0f}%, "
        f"hybrid(25% CN) {100 * hybrid[50.0]:.0f}%"
    )

    # --- bonus: the queue a throttled VD actually builds --------------------
    hottest = max(
        result.traffic, key=lambda t: (t.read_bytes + t.write_bytes).max()
    )
    offered = hottest.read_bytes + hottest.write_bytes
    cap = float(caps.throughput_bps[hottest.vd_id])
    shaped = shape_vd_traffic(offered, cap)
    delay = shaped.queue_delay_seconds(cap)
    print(
        f"5. token bucket on the burstiest VD (cap {cap / MiB:.0f} MiB/s): "
        f"{shaped.throttled_seconds}s throttled, peak queue delay "
        f"{delay.max():.1f}s"
    )


if __name__ == "__main__":
    main()
