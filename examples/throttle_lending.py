#!/usr/bin/env python3
"""Limited lending between a VM's virtual disks (§5, Algorithm 2).

Generates offered load for one data center, provisions per-VD caps the way
tenants do (a headroom multiple of mean traffic), then shows: how much
capacity sits idle while individual VDs throttle (RAR, Fig 3(b)), and how
much throttle time limited lending removes at several lending rates —
including the groups where lending backfires (Fig 3(f)).

Run:  python examples/throttle_lending.py
"""

import numpy as np

from repro.throttle import (
    LendingConfig,
    build_vm_groups,
    calibrated_caps,
    rar_during_throttle,
    simulate_lending,
)
from repro.util.rng import RngFactory
from repro.workload import FleetConfig, WorkloadGenerator, build_fleet


def main() -> None:
    rngs = RngFactory(42)
    fleet = build_fleet(
        FleetConfig(
            num_users=10, num_vms=36, num_compute_nodes=10, num_storage_nodes=6
        ),
        rngs,
    )
    traffic = WorkloadGenerator(fleet, 600, rngs).generate_all()
    caps = calibrated_caps(traffic, rngs.child("caps"))
    groups = build_vm_groups(fleet, traffic, caps)
    print(f"{len(groups)} multi-VD VMs (lending groups)\n")

    rars = [
        rar for group in groups for rar in rar_during_throttle(group, "throughput")
    ]
    if rars:
        print(
            "While a VD is throttled, the VM still has a median "
            f"{100 * np.median(rars):.0f}% of its purchased throughput idle."
        )

    print("\nLimited lending (throughput), by lending rate p:")
    print(f"{'p':>4}  {'groups':>6}  {'median gain':>11}  {'% positive':>10}  {'% negative':>10}")
    for p in (0.2, 0.4, 0.6, 0.8):
        gains = []
        for group in groups:
            outcome = simulate_lending(
                group, "throughput", LendingConfig(lending_rate=p)
            )
            if outcome.throttled_seconds_without > 0:
                gains.append(outcome.gain)
        if not gains:
            continue
        arr = np.asarray(gains)
        print(
            f"{p:>4.1f}  {len(gains):>6}  {np.median(arr):>11.2f}  "
            f"{100 * np.mean(arr > 0):>10.1f}  {100 * np.mean(arr < 0):>10.1f}"
        )
    print(
        "\nGain in (-1, 1): positive means lending shortened total throttle"
        "\ntime. The negative rows are the paper's warning: a VD that lent"
        "\ncapacity away can burst into its reduced cap."
    )


if __name__ == "__main__":
    main()
