#!/usr/bin/env python3
"""LBA hotspots and caching across the EBS stack (§7).

Finds each busy VD's hottest block, compares FIFO / LRU / frozen-cache hit
ratios at several cache sizes (Fig 7(a)), and weighs the CN-cache against
the BS-cache on write latency gain and provisioning spread (Fig 7(b)-(d)).

Run:  python examples/cache_placement.py
"""

import numpy as np

from repro.cache import (
    CachePlacementConfig,
    cacheable_vd_counts,
    hottest_block,
    latency_gain,
    simulate_vd_cache,
)
from repro.cluster import EBSSimulator, LatencyModel, SimulationConfig
from repro.util.rng import RngFactory
from repro.util.units import MiB
from repro.workload import FleetConfig, build_fleet


def main() -> None:
    rngs = RngFactory(42)
    fleet = build_fleet(
        FleetConfig(
            num_users=10, num_vms=40, num_compute_nodes=10, num_storage_nodes=6
        ),
        rngs,
    )
    print("Simulating one data center (dense trace sampling) ...")
    result = EBSSimulator(
        fleet,
        SimulationConfig(duration_seconds=600, trace_sampling_rate=1 / 20),
        rngs,
    ).run()
    traces = result.traces

    # Busy VDs only: hotspot statistics need enough sampled IOs.
    ids, counts = np.unique(traces.vd_id, return_counts=True)
    busy = [int(v) for v, c in zip(ids, counts) if c >= 500]
    print(f"{len(busy)} VDs with >= 500 traced IOs\n")

    block_bytes = 64 * MiB
    rates = []
    for vd_id in busy:
        block = hottest_block(
            traces, vd_id, block_bytes, fleet.vds[vd_id].capacity_bytes
        )
        if block:
            rates.append(block.access_rate)
    print(
        f"Hottest 64 MiB block: median access rate "
        f"{100 * np.median(rates):.1f}% of the VD's IOs"
    )

    print("\nCache hit ratios (median over busy VDs):")
    print(f"{'cache size':>10}  {'fifo':>6}  {'lru':>6}  {'frozen':>6}")
    for size in (64 * MiB, 512 * MiB, 2048 * MiB):
        hits = {"fifo": [], "lru": [], "frozen": []}
        for vd_id in busy:
            out = simulate_vd_cache(
                traces, vd_id, size, fleet.vds[vd_id].capacity_bytes
            )
            if out:
                for policy, value in out.items():
                    hits[policy].append(value)
        print(
            f"{size // MiB:>7}MiB  "
            f"{np.median(hits['fifo']):>6.3f}  "
            f"{np.median(hits['lru']):>6.3f}  "
            f"{np.median(hits['frozen']):>6.3f}"
        )

    model = LatencyModel()
    config = CachePlacementConfig(block_bytes=2048 * MiB)
    print("\nWrite latency gain (with-cache / without, lower is better):")
    for location in ("compute_node", "block_server"):
        gains = latency_gain(
            traces, fleet, location, model,
            rngs.get(f"lg/{location}"), config, direction="write",
        )
        if gains:
            print(
                f"  {location:<13} p0={100 * gains[0.0]:.0f}%  "
                f"p50={100 * gains[50.0]:.0f}%  p99={100 * gains[99.0]:.0f}%"
            )

    placement = result.storage.placement.primary_mapping()
    cn = cacheable_vd_counts(traces, fleet, "compute_node", placement, config)
    bs = cacheable_vd_counts(traces, fleet, "block_server", placement, config)
    print(
        "\nCacheable-VD spread (per-node provisioning waste): "
        f"CN-cache std {np.std(cn):.2f} vs BS-cache std {np.std(bs):.2f}"
    )


if __name__ == "__main__":
    main()
