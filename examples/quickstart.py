#!/usr/bin/env python3
"""Quickstart: reproduce a few of the paper's artifacts via the facade.

Builds the three synthetic data centers, simulates their EBS stacks, and
prints Table 3 (baseline skewness), Fig 2(b) (the VM-VD-QP decomposition)
and Fig 7(a) (cache hit ratios) — all through :mod:`repro.api`, the
package's stable public surface.

Run:  python examples/quickstart.py
"""

from repro.api import run_study


def main() -> None:
    # scale="small" finishes in well under a minute; scale="medium"
    # (the benchmark default) or "large" give tighter statistics.
    print("Building fleets and simulating the EBS stack of 3 DCs ...")
    results = run_study(
        ["table3", "fig2b", "fig7a"], scale="small", seed=7
    )
    for result in results.values():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
