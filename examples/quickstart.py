#!/usr/bin/env python3
"""Quickstart: build a study and reproduce a few of the paper's artifacts.

Builds the three synthetic data centers, simulates their EBS stacks, and
prints Table 3 (baseline skewness), Fig 2(b) (the VM-VD-QP decomposition)
and Fig 7(a) (cache hit ratios).

Run:  python examples/quickstart.py
"""

from repro.core import Study, StudyConfig


def main() -> None:
    # `small` finishes in well under a minute; use StudyConfig.medium()
    # (the benchmark default) or .large() for tighter statistics.
    study = Study(StudyConfig.small(seed=7))
    print("Building fleets and simulating the EBS stack of 3 DCs ...")
    study.build()
    for result in study.results:
        dc = result.fleet.config.dc_id
        print(
            f"  DC-{dc + 1}: {len(result.fleet.vms)} VMs, "
            f"{len(result.fleet.vds)} VDs, {len(result.traces)} traces, "
            f"{len(result.metrics.compute)} compute metric rows"
        )
    print()

    for experiment_id in ("table3", "fig2b", "fig7a"):
        print(study.run(experiment_id).render())
        print()


if __name__ == "__main__":
    main()
