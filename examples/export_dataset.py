#!/usr/bin/env python3
"""Generate a DiTing-style dataset and write it to disk.

Produces the same three datasets the paper released (sampled per-IO traces,
second-granularity compute/storage metrics, and per-VD specifications),
writes them as JSONL/CSV, and reads them back to verify the roundtrip.

Run:  python examples/export_dataset.py [output_dir]
"""

import sys
from pathlib import Path

from repro.cluster import EBSSimulator, SimulationConfig
from repro.trace import (
    ComputeMetricTable,
    StorageMetricTable,
    read_metric_csv,
    read_trace_jsonl,
    write_metric_csv,
    write_trace_jsonl,
)
from repro.util.rng import RngFactory
from repro.util.units import format_bytes
from repro.workload import FleetConfig, build_fleet


def main() -> None:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "dataset_out")
    out.mkdir(parents=True, exist_ok=True)

    rngs = RngFactory(7)
    fleet = build_fleet(
        FleetConfig(num_users=6, num_vms=20, num_compute_nodes=6,
                    num_storage_nodes=4),
        rngs,
    )
    result = EBSSimulator(
        fleet, SimulationConfig(duration_seconds=240), rngs
    ).run()

    trace_path = out / "traces.jsonl"
    compute_path = out / "compute_metrics.csv"
    storage_path = out / "storage_metrics.csv"
    write_trace_jsonl(result.traces, trace_path)
    write_metric_csv(result.metrics.compute, compute_path)
    write_metric_csv(result.metrics.storage, storage_path)

    total = (
        result.metrics.total_read_bytes() + result.metrics.total_write_bytes()
    )
    print(f"Simulated {format_bytes(total)} of traffic over 240s")
    print(f"  {trace_path}: {len(result.traces)} sampled IOs")
    print(f"  {compute_path}: {len(result.metrics.compute)} rows")
    print(f"  {storage_path}: {len(result.metrics.storage)} rows")

    # Roundtrip verification.
    traces = read_trace_jsonl(trace_path)
    assert len(traces) == len(result.traces)
    assert traces.sampling_rate == result.traces.sampling_rate
    compute = read_metric_csv(compute_path, ComputeMetricTable)
    assert len(compute) == len(result.metrics.compute)
    storage = read_metric_csv(storage_path, StorageMetricTable)
    assert len(storage) == len(result.metrics.storage)
    print("Roundtrip verified: reloaded datasets match.")


if __name__ == "__main__":
    main()
