#!/usr/bin/env python3
"""Inter-BlockServer segment balancing (§6, Algorithm 1).

Simulates one data center's storage cluster and replays the segment
balancer with each of the paper's five importer-selection strategies,
reporting migrations, frequent-migration proportions, and how long each
strategy's placements stay valid (Fig 4(a)/(b)).  Finishes with the
Write-then-Read experiment (Fig 5(c)).

Run:  python examples/storage_balancer.py
"""

import numpy as np

from repro.balancer import (
    BalancerConfig,
    InterBsBalancer,
    frequent_migration_proportion,
    make_importer,
    normalized_migration_intervals,
    per_bs_cov,
    segment_period_matrix,
)
from repro.cluster import EBSSimulator, SimulationConfig, StorageCluster
from repro.util.rng import RngFactory
from repro.workload import FleetConfig, build_fleet


def main() -> None:
    rngs = RngFactory(42)
    fleet = build_fleet(
        FleetConfig(
            num_users=12, num_vms=48, num_compute_nodes=12, num_storage_nodes=8
        ),
        rngs,
    )
    duration = 1200
    print("Simulating one storage cluster ...")
    result = EBSSimulator(
        fleet, SimulationConfig(duration_seconds=duration), rngs
    ).run()

    config = BalancerConfig(period_seconds=30)
    write = segment_period_matrix(
        result.metrics.storage, len(fleet.segments), duration,
        config.period_seconds, "write",
    )
    read = segment_period_matrix(
        result.metrics.storage, len(fleet.segments), duration,
        config.period_seconds, "read",
    )

    print("\nImporter strategies (write-driven balancing):")
    print(f"{'strategy':<14} {'migrations':>10} {'frequent@60s':>12} {'mean interval':>14}")
    for name in ("random", "min_traffic", "min_variance", "lunule", "ideal"):
        storage = StorageCluster(fleet)  # fresh placement per strategy
        balancer = InterBsBalancer(
            storage, config, make_importer(name), rng=rngs.get(f"bal/{name}")
        )
        run = balancer.run(write)
        storage.check_invariants()
        intervals = normalized_migration_intervals(run.migrations, duration)
        print(
            f"{name:<14} {run.num_migrations:>10} "
            f"{100 * frequent_migration_proportion(run.migrations, 60):>11.1f}% "
            f"{np.mean(intervals) if intervals else float('nan'):>14.3f}"
        )

    print("\nWrite-Only vs Write-then-Read (ideal importer):")
    for label, secondary in (("write_only", None), ("write_then_read", read)):
        storage = StorageCluster(fleet)
        balancer = InterBsBalancer(
            storage, config, make_importer("ideal"), rng=rngs.get(f"wtr/{label}")
        )
        run = balancer.run(write, secondary_traffic=secondary)
        # Recompute the final-placement read CoV.
        seg_bs = storage.primary_array()
        loads = np.zeros((storage.num_block_servers, read.shape[1]))
        np.add.at(loads, seg_bs, read)
        print(
            f"  {label:<16} migrations={run.num_migrations:<5} "
            f"final read CoV={per_bs_cov(loads):.3f}"
        )


if __name__ == "__main__":
    main()
