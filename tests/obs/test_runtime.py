"""Tests for the process-global telemetry handle and its artifact."""

import json

from repro.obs.runtime import (
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    get_telemetry,
    peak_rss_bytes,
    set_telemetry,
    telemetry_session,
)
from repro.obs.schema import validate_telemetry


class TestDisabledDefault:
    def test_default_handle_is_disabled(self):
        assert get_telemetry().enabled is False

    def test_disabled_accessors_are_shared_noops(self):
        t = Telemetry(enabled=False)
        assert t.span("a") is t.span("b")
        assert t.counter("a") is t.counter("b", dc=1)
        assert t.gauge("a") is t.gauge("b")
        assert t.histogram("a") is t.histogram("b")

    def test_disabled_recording_leaves_no_trace(self):
        t = Telemetry(enabled=False)
        with t.span("sim.pass1", dc=0) as span:
            span.set(rows=1)
        t.counter("x").inc(5)
        t.gauge("g").set_max(3)
        t.histogram("h").observe(2)
        snap = t.snapshot()
        assert snap["spans"] == []
        assert snap["metrics"] == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_disabled_merge_is_noop(self):
        enabled = Telemetry(enabled=True)
        enabled.counter("x").inc(1)
        disabled = Telemetry(enabled=False)
        disabled.merge_snapshot(enabled.snapshot())
        assert disabled.snapshot()["metrics"]["counters"] == []


class TestSessionInstall:
    def test_session_installs_and_restores(self):
        before = get_telemetry()
        with telemetry_session(seed=3) as t:
            assert get_telemetry() is t
            assert t.enabled
        assert get_telemetry() is before

    def test_set_telemetry_returns_previous_and_none_resets(self):
        t = Telemetry(enabled=True)
        previous = set_telemetry(t)
        try:
            assert get_telemetry() is t
        finally:
            assert set_telemetry(None) is t
        assert get_telemetry().enabled is False

    def test_session_restores_after_exception(self):
        before = get_telemetry()
        try:
            with telemetry_session():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_telemetry() is before


class TestArtifact:
    def _sample(self):
        t = Telemetry(enabled=True)
        t.meta["command"] = "test"
        t.counter("sim.rows", dc=0).inc(10)
        t.gauge("sim.grid", dc=0).set_max(4)
        t.histogram("sim.ios", dc=0).observe(17)
        with t.span("study.build", workers=1):
            pass
        return t

    def test_snapshot_validates_against_schema(self):
        snap = self._sample().snapshot()
        assert snap["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert validate_telemetry(snap) == []

    def test_snapshot_survives_json_roundtrip(self):
        snap = self._sample().snapshot()
        assert validate_telemetry(json.loads(json.dumps(snap))) == []

    def test_write_and_merge_roundtrip(self, tmp_path):
        t = self._sample()
        path = t.write(tmp_path / "nested" / "telemetry.json")
        payload = json.loads(path.read_text())
        assert validate_telemetry(payload) == []

        merged = Telemetry(enabled=True)
        merged.merge_snapshot(payload)
        merged.merge_snapshot(None)  # None: no-op
        metrics = merged.snapshot()["metrics"]
        assert metrics["counters"] == t.snapshot()["metrics"]["counters"]
        assert len(merged.snapshot()["spans"]) == 1

    def test_meta_carries_created_unix(self):
        snap = self._sample().snapshot()
        assert snap["meta"]["command"] == "test"
        assert snap["meta"]["created_unix"] > 0


class TestSchemaRejections:
    def test_not_an_object(self):
        assert validate_telemetry([1, 2]) != []

    def test_missing_sections(self):
        errors = validate_telemetry({})
        joined = "\n".join(errors)
        assert "schema_version" in joined
        assert "metrics" in joined
        assert "spans" in joined

    def test_future_schema_version_flagged(self):
        payload = Telemetry(enabled=True).snapshot()
        payload["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
        assert any("newer" in e for e in validate_telemetry(payload))

    def test_malformed_entries_flagged(self):
        payload = Telemetry(enabled=True).snapshot()
        payload["metrics"]["counters"].append({"labels": {}})
        payload["metrics"]["histograms"].append(
            {"name": "h", "labels": {}, "count": 1, "sum": 1, "zeros": 0,
             "buckets": [[1]]}
        )
        payload["spans"].append({"name": "", "start_us": "x"})
        errors = validate_telemetry(payload)
        assert any("counters[0]" in e for e in errors)
        assert any("bucket" in e for e in errors)
        assert any("spans[0]" in e for e in errors)


def test_peak_rss_bytes_positive():
    rss = peak_rss_bytes()
    assert rss is None or rss > 0
