"""Tests for the flight recorder: interval deltas, rates, ring bounds."""

import pytest

from repro.obs.recorder import FlightRecorder, series_key
from repro.obs.runtime import Telemetry
from repro.obs.schema import validate_telemetry
from repro.util.errors import ConfigError


class FakeClock:
    """A controllable wall clock for deterministic interval math."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def telemetry():
    return Telemetry(enabled=True)


class TestSeriesKey:
    def test_bare_and_labeled(self):
        assert series_key("a.b", {}) == "a.b"
        assert (
            series_key("q", {"ring": "live.events", "a": 1})
            == "q{a=1,ring=live.events}"
        )


class TestSampling:
    def test_rates_are_deltas_over_dt(self, telemetry):
        clock = FakeClock()
        recorder = FlightRecorder(
            telemetry, interval_seconds=1.0, capacity=8, clock=clock
        )
        counter = telemetry.counter("live.events_total")
        counter.inc(100)
        recorder.sample()  # base: first record has dt 0 against itself
        counter.inc(500)
        clock.tick(2.0)
        record = recorder.sample()
        assert record["dt"] == 2.0
        assert record["rates"]["live.events_total"] == 250.0
        assert record["counters"]["live.events_total"] == 600.0

    def test_ring_bounded_and_eviction_counted(self, telemetry):
        clock = FakeClock()
        recorder = FlightRecorder(
            telemetry, interval_seconds=1.0, capacity=3, clock=clock
        )
        for _ in range(7):
            clock.tick(1.0)
            recorder.sample()
        snap = recorder.snapshot()
        assert snap["samples_taken"] == 7
        assert len(snap["intervals"]) == 3
        assert snap["evicted"] == 4
        assert [r["index"] for r in snap["intervals"]] == [4, 5, 6]

    def test_totals_match_final_counters_exactly(self, telemetry):
        clock = FakeClock()
        recorder = FlightRecorder(
            telemetry, interval_seconds=1.0, capacity=2, clock=clock
        )
        counter = telemetry.counter("live.events_total", dc=0)
        for i in range(10):
            counter.inc(17)
            clock.tick(1.0)
            recorder.sample()
        # Eviction dropped early intervals, yet totals stay exact.
        assert recorder.totals()["live.events_total{dc=0}"] == 170.0
        assert counter.value == 170

    def test_hist_delta_is_per_interval(self, telemetry):
        clock = FakeClock()
        recorder = FlightRecorder(
            telemetry, interval_seconds=1.0, capacity=8, clock=clock
        )
        hist = telemetry.histogram("live.decision_latency_us")
        hist.observe(3, 5)  # bucket 2
        clock.tick(1.0)
        first = recorder.sample()
        hist.observe(100, 2)  # bucket 7
        clock.tick(1.0)
        second = recorder.sample()
        key = "live.decision_latency_us"
        assert first["hist_delta"][key]["count"] == 5
        assert first["hist_delta"][key]["buckets"] == [[2, 5]]
        assert second["hist_delta"][key]["count"] == 2
        assert second["hist_delta"][key]["buckets"] == [[7, 2]]

    def test_probes_sampled_and_dead_probe_is_nan(self, telemetry):
        recorder = FlightRecorder(telemetry, clock=FakeClock())
        recorder.add_probe("depth", lambda: 7)
        recorder.add_probe("dead", lambda: 1 / 0)
        record = recorder.sample()
        assert record["probes"]["depth"] == 7.0
        assert record["probes"]["dead"] != record["probes"]["dead"]  # NaN

    def test_gauges_captured(self, telemetry):
        recorder = FlightRecorder(telemetry, clock=FakeClock())
        telemetry.gauge("live.events_per_sec").set_max(123)
        assert recorder.sample()["gauges"]["live.events_per_sec"] == 123


class TestThread:
    def test_start_stop_takes_final_sample(self, telemetry):
        recorder = FlightRecorder(
            telemetry, interval_seconds=0.02, capacity=64
        )
        counter = telemetry.counter("live.events_total")
        recorder.start()
        with pytest.raises(ConfigError):
            recorder.start()  # double start
        counter.inc(42)
        recorder.stop()
        assert recorder.totals()["live.events_total"] == 42.0
        assert recorder.snapshot()["samples_taken"] >= 1

    def test_stop_without_start_still_samples(self, telemetry):
        recorder = FlightRecorder(telemetry, clock=FakeClock())
        telemetry.counter("c").inc(3)
        recorder.stop()
        assert recorder.totals()["c"] == 3.0


class TestSection:
    def test_attached_section_validates(self, telemetry):
        clock = FakeClock()
        recorder = FlightRecorder(
            telemetry, interval_seconds=1.0, capacity=8, clock=clock
        )
        telemetry.attach_section("recorder", recorder.snapshot)
        telemetry.counter("live.events_total").inc(5)
        clock.tick(1.0)
        recorder.sample()
        payload = telemetry.snapshot()
        assert payload["recorder"]["samples_taken"] == 1
        assert validate_telemetry(payload) == []

    def test_schema_flags_broken_recorder_section(self, telemetry):
        payload = telemetry.snapshot()
        payload["recorder"] = {"intervals": "nope"}
        problems = validate_telemetry(payload)
        assert any("recorder" in p for p in problems)


class TestValidation:
    def test_bad_interval_and_capacity(self, telemetry):
        with pytest.raises(ConfigError):
            FlightRecorder(telemetry, interval_seconds=0)
        with pytest.raises(ConfigError):
            FlightRecorder(telemetry, capacity=0)
        with pytest.raises(ConfigError):
            FlightRecorder(telemetry).add_probe("", lambda: 0)
