"""Tests for SLO parsing, log2-bucket quantiles, budgets, burn rates."""

import pytest

from repro.obs.slo import (
    SloTracker,
    parse_slo,
    quantile_from_buckets,
)
from repro.util.errors import ConfigError


def interval(index=0, rates=None, hist=None, t_wall=100.0):
    """A minimal flight-recorder interval record."""
    return {
        "index": index,
        "t_wall": t_wall,
        "dt": 1.0,
        "rates": rates or {},
        "hist_delta": hist or {},
        "counters": {},
        "gauges": {},
        "probes": {},
    }


def hist_delta(buckets, zeros=0):
    count = zeros + sum(c for _, c in buckets)
    return {"count": count, "sum": 0.0, "zeros": zeros, "buckets": buckets}


class TestParse:
    def test_quantile_form(self):
        objective = parse_slo("live.decision_latency_us:p99<500")
        assert objective.kind == "quantile"
        assert objective.metric == "live.decision_latency_us"
        assert objective.q == 0.99
        assert objective.threshold == 500.0

    def test_fractional_quantile_and_spaces(self):
        objective = parse_slo("m:p99.9 < 2e3")
        assert objective.q == pytest.approx(0.999)
        assert objective.threshold == 2000.0

    def test_ratio_form(self):
        objective = parse_slo("live.events_dropped/live.events_total<0.01")
        assert objective.kind == "ratio"
        assert objective.numerator == "live.events_dropped"
        assert objective.denominator == "live.events_total"
        assert objective.threshold == 0.01

    @pytest.mark.parametrize(
        "bad",
        ["", "m<5", "m:p0<5", "m:p100<5", "a/b/c<1", "m:p99<wide", "m:p99"],
    )
    def test_rejects(self, bad):
        with pytest.raises(ConfigError):
            parse_slo(bad)


class TestQuantile:
    def test_empty_is_none(self):
        assert quantile_from_buckets([], 0, 0, 0.99) is None

    def test_all_zeros(self):
        assert quantile_from_buckets([], 10, 10, 0.5) == 0.0

    def test_single_bucket_interpolates(self):
        # bucket 3 spans (4, 8]; the median interpolates to the middle.
        value = quantile_from_buckets([[3, 10]], 0, 10, 0.5)
        assert 4.0 < value <= 8.0
        assert value == pytest.approx(6.0)

    def test_monotone_in_q(self):
        buckets = [[2, 5], [5, 3], [9, 2]]
        values = [
            quantile_from_buckets(buckets, 0, 10, q)
            for q in (0.1, 0.5, 0.9, 0.99)
        ]
        assert values == sorted(values)
        assert values[-1] <= 512.0  # inside bucket 9's upper edge


class TestTracker:
    def test_needs_objectives_and_sane_budget(self):
        with pytest.raises(ConfigError):
            SloTracker([])
        with pytest.raises(ConfigError):
            SloTracker(["a/b<1"], budget=0.0)

    def test_ratio_violation_and_burn_rate(self):
        tracker = SloTracker(["drops/total<0.1"], budget=0.5)
        tracker.observe_interval(
            interval(0, rates={"drops": 1.0, "total": 100.0})
        )
        tracker.observe_interval(
            interval(1, rates={"drops": 50.0, "total": 100.0})
        )
        assert tracker.healthy() is False
        (objective,) = tracker.snapshot()["objectives"]
        assert objective["intervals"] == 2
        assert objective["violations"] == 1
        assert objective["violation_fraction"] == 0.5
        assert objective["burn_rate"] == 1.0  # 0.5 fraction / 0.5 budget

    def test_idle_intervals_do_not_consume_budget(self):
        tracker = SloTracker(["drops/total<0.1"])
        tracker.observe_interval(interval(0))  # no denominator: idle
        tracker.observe_interval(interval(1, rates={"total": 0.0}))
        (objective,) = tracker.snapshot()["objectives"]
        assert objective["intervals"] == 0
        assert objective["idle_intervals"] == 2
        assert tracker.healthy() is True

    def test_quantile_objective_from_hist_delta(self):
        tracker = SloTracker(["lat:p99<100"])
        # everything in bucket 3 (upper edge 8): far below threshold
        tracker.observe_interval(
            interval(0, hist={"lat": hist_delta([[3, 100]])})
        )
        assert tracker.healthy() is True
        # everything in bucket 10 (upper edge 1024): violating
        tracker.observe_interval(
            interval(1, hist={"lat": hist_delta([[10, 100]])})
        )
        assert tracker.healthy() is False

    def test_crossing_events_both_edges(self):
        tracker = SloTracker(["drops/total<0.5"], budget=1.0)
        good = interval(0, rates={"drops": 0.0, "total": 10.0})
        bad = interval(1, rates={"drops": 9.0, "total": 10.0}, t_wall=101.0)
        good2 = interval(2, rates={"drops": 0.0, "total": 10.0})
        for record in (good, bad, good2):
            tracker.observe_interval(record)
        (objective,) = tracker.snapshot()["objectives"]
        crossings = [e["crossed"] for e in objective["events"]]
        assert crossings == ["violating", "ok"]
        assert objective["events"][0]["interval"] == 1
        assert objective["events"][0]["at"] == 101.0
        assert tracker.healthy() is True

    def test_accepts_pre_parsed_objectives(self):
        tracker = SloTracker([parse_slo("a/b<1")])
        assert tracker.snapshot()["objectives"][0]["slo"] == "a/b<1"
