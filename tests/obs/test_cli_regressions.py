"""Regressions for the ``repro obs`` CLI on edge-case artifacts.

The headline fix: an artifact with **zero spans** (or a stray non-list
value under ``metrics``) must never traceback out of ``obs validate`` /
``obs report`` — validate flags problems with exit code 1, report
renders whatever it can.
"""

import json

import pytest

from repro.cli import main
from repro.obs.runtime import Telemetry
from repro.obs.schema import METRIC_KINDS, validate_telemetry


@pytest.fixture()
def zero_span_artifact(tmp_path):
    """A real run artifact that happens to record no spans at all."""
    t = Telemetry(enabled=True)
    t.meta.update(command="run", seed=3)
    t.counter("sim.traces.ios", dc=0, op="read").inc(5)
    t.gauge("engine.peak_rss_bytes", dc=0).set_max(123456)
    return t.write(tmp_path / "no-spans.json")


class TestZeroSpans:
    def test_validate_ok(self, zero_span_artifact, capsys):
        assert main(["obs", "validate", str(zero_span_artifact)]) == 0
        out = capsys.readouterr().out
        assert "0 spans" in out

    def test_report_does_not_crash(self, zero_span_artifact, capsys):
        # The regression: report used to assume at least one span/list.
        assert main(["obs", "report", str(zero_span_artifact)]) == 0
        out = capsys.readouterr().out
        assert "sim.traces.ios" in out

    def test_report_survives_missing_spans_key(self, tmp_path, capsys):
        payload = json.loads(zero_span_path(tmp_path).read_text())
        del payload["spans"]
        path = tmp_path / "stripped.json"
        path.write_text(json.dumps(payload))
        # Invalid per schema, but report is best-effort by design.
        assert validate_telemetry(payload) != []
        assert main(["obs", "report", str(path)]) == 0


def zero_span_path(tmp_path):
    t = Telemetry(enabled=True)
    t.counter("sim.traces.ios", dc=0).inc(1)
    return t.write(tmp_path / "zero.json")


class TestNonListMetrics:
    def test_validate_flags_scalar_metric_kind(self, tmp_path, capsys):
        path = zero_span_path(tmp_path)
        payload = json.loads(path.read_text())
        payload["metrics"]["total"] = 7  # scalar under 'metrics'
        path.write_text(json.dumps(payload))
        # Used to pass validation, then crash the series count / report.
        assert main(["obs", "validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "metrics.total" in err

    def test_report_degrades_gracefully(self, tmp_path, capsys):
        path = zero_span_path(tmp_path)
        payload = json.loads(path.read_text())
        payload["metrics"]["counters"] = {"oops": "not a list"}
        path.write_text(json.dumps(payload))
        assert main(["obs", "report", str(path)]) == 0

    def test_schema_error_message_names_the_kind(self):
        errors = validate_telemetry({
            "schema_version": 1,
            "meta": {},
            "metrics": {"total": 7},
            "spans": [],
        })
        assert any("metrics.total" in e for e in errors)
        assert all(kind in ("counters", "gauges", "histograms")
                   for kind in METRIC_KINDS)
