"""Tests for the scrape server: endpoints, liveness, concurrent scrapes."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.promtext import parse_promtext, validate_promtext
from repro.obs.recorder import FlightRecorder
from repro.obs.runtime import Telemetry
from repro.obs.server import PROM_CONTENT_TYPE, ObsServer
from repro.obs.slo import SloTracker
from repro.util.errors import ConfigError


def get(url):
    """(status, headers, body) — non-2xx comes back, not raised."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture()
def telemetry():
    t = Telemetry(enabled=True)
    t.counter("live.events_total").inc(10)
    t.histogram("live.decision_latency_us").observe(30, 4)
    return t


@pytest.fixture()
def server(telemetry):
    instance = ObsServer(telemetry, port=0).start()
    yield instance
    instance.stop()


class TestEndpoints:
    def test_metrics_is_valid_promtext(self, server):
        status, headers, body = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROM_CONTENT_TYPE
        text = body.decode()
        assert validate_promtext(text) == []
        samples = {s.name: s.value for s in parse_promtext(text)}
        assert samples["repro_live_events_total_total"] == 10.0

    def test_snapshot_is_full_payload(self, server, telemetry):
        status, _, body = get(server.url + "/snapshot")
        assert status == 200
        payload = json.loads(body)
        assert payload["schema_version"] == 1
        assert payload["metrics"]["counters"]

    def test_healthz_default_healthy(self, server):
        status, _, body = get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["healthy"] is True

    def test_recorder_404_without_recorder(self, server):
        status, _, _ = get(server.url + "/recorder")
        assert status == 404

    def test_unknown_path_404(self, server):
        status, _, _ = get(server.url + "/nope")
        assert status == 404

    def test_address_and_double_start_rejected(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0
        with pytest.raises(ConfigError):
            server.start()

    def test_address_before_start_rejected(self, telemetry):
        with pytest.raises(ConfigError):
            ObsServer(telemetry).address


class TestHealth:
    def test_health_callback_verdict_sets_status(self, telemetry):
        healthy = {"value": True}
        server = ObsServer(
            telemetry,
            port=0,
            health=lambda: {"healthy": healthy["value"], "detail": "x"},
        ).start()
        try:
            status, _, body = get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["detail"] == "x"
            healthy["value"] = False
            status, _, _ = get(server.url + "/healthz")
            assert status == 503
        finally:
            server.stop()

    def test_crashing_health_callback_answers_503(self, telemetry):
        server = ObsServer(
            telemetry, port=0, health=lambda: 1 / 0
        ).start()
        try:
            status, _, body = get(server.url + "/healthz")
            assert status == 503
            assert "error" in json.loads(body)
        finally:
            server.stop()

    def test_violating_slo_makes_healthz_503(self, telemetry):
        slo = SloTracker(["a/b<0.5"], budget=0.5)
        slo.observe_interval(
            {"index": 0, "t_wall": 1.0, "rates": {"a": 9.0, "b": 10.0},
             "hist_delta": {}}
        )
        server = ObsServer(telemetry, port=0, slo=slo).start()
        try:
            status, _, body = get(server.url + "/healthz")
            assert status == 503
            payload = json.loads(body)
            assert payload["slo_healthy"] is False
            assert payload["slo"]["objectives"][0]["violating_now"] is True
        finally:
            server.stop()

    def test_recorder_endpoint_serves_ring(self, telemetry):
        recorder = FlightRecorder(telemetry, interval_seconds=1.0)
        recorder.sample()
        server = ObsServer(telemetry, port=0, recorder=recorder).start()
        try:
            status, _, body = get(server.url + "/recorder")
            assert status == 200
            assert json.loads(body)["samples_taken"] == 1
        finally:
            server.stop()


class TestConcurrentScrapes:
    def test_scrapes_mid_run_are_valid_and_monotone(self, telemetry):
        """Hammer counters from threads while scraping /metrics.

        Every scrape must be valid exposition text and every counter
        must be monotone non-decreasing across consecutive scrapes — the
        registry lock guarantees a consistent cut, never a torn one.
        """
        server = ObsServer(telemetry, port=0).start()
        stop = threading.Event()

        def writer():
            counter = telemetry.counter("live.events_total")
            hist = telemetry.histogram("live.decision_latency_us")
            i = 0
            while not stop.is_set():
                counter.inc(3)
                hist.observe(1 + (i % 1000))
                # churn new series too, so scrapes race registration
                telemetry.counter("live.batches_total", shard=i % 7).inc()
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            previous = {}
            for _ in range(20):
                _, _, body = get(server.url + "/metrics")
                text = body.decode()
                assert validate_promtext(text) == []
                current = {
                    (s.name, s.labels): s.value
                    for s in parse_promtext(text)
                    if s.name.endswith("_total")
                }
                for key, value in previous.items():
                    assert current.get(key, 0) >= value, key
                previous = current
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            server.stop()
