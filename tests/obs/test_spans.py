"""Tests for span tracing: nesting, sampling, aggregation, Chrome export."""

import json
import os
import threading

import pytest

from repro.obs.spans import Tracer, stage_summary, to_chrome_trace
from repro.util.errors import ConfigError


class TestTracer:
    def test_records_name_labels_duration(self):
        tracer = Tracer()
        with tracer.span("sim.pass1", dc=0) as span:
            span.set(rows=12)
        (record,) = tracer.snapshot()
        assert record["name"] == "sim.pass1"
        assert record["labels"] == {"dc": 0, "rows": 12}
        assert record["dur_us"] >= 0.0
        assert record["pid"] == os.getpid()
        assert record["depth"] == 0

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
            with tracer.span("sibling"):
                pass
        depths = {s["name"]: s["depth"] for s in tracer.snapshot()}
        assert depths == {
            "outer": 0, "inner": 1, "innermost": 2, "sibling": 1,
        }

    def test_snapshot_is_a_copy(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        snap = tracer.snapshot()
        snap[0]["name"] = "mutated"
        assert tracer.snapshot()[0]["name"] == "a"

    def test_merge_snapshot_appends(self):
        a, b = Tracer(), Tracer()
        with a.span("a"):
            pass
        with b.span("b"):
            pass
        a.merge_snapshot(b.snapshot())
        assert [s["name"] for s in a.snapshot()] == ["a", "b"]

    def test_spans_carry_recording_thread_identity(self):
        tracer = Tracer()
        with tracer.span("main.work"):
            pass

        def worker():
            with tracer.span("worker.work"):
                pass

        thread = threading.Thread(target=worker, name="my-worker")
        thread.start()
        thread.join()
        by_name = {s["name"]: s for s in tracer.snapshot()}
        assert by_name["main.work"]["tid"] == (
            threading.current_thread().ident
        )
        assert by_name["worker.work"]["thread"] == "my-worker"
        assert by_name["worker.work"]["tid"] != by_name["main.work"]["tid"]

    def test_nesting_depth_is_per_thread(self):
        """Concurrent threads each see their own stack, not a shared one."""
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(f"{name}.outer"):
                barrier.wait(timeout=10)  # both outers open concurrently
                with tracer.span(f"{name}.inner"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        depths = {s["name"]: s["depth"] for s in tracer.snapshot()}
        assert depths == {
            "a.outer": 0, "a.inner": 1, "b.outer": 0, "b.inner": 1,
        }


class TestSampling:
    def test_both_modes_rejected(self):
        with pytest.raises(ConfigError):
            Tracer(sample_every=2, sample_rate=0.5)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_sample_every(self, bad):
        with pytest.raises(ConfigError):
            Tracer(sample_every=bad)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_bad_sample_rate(self, bad):
        with pytest.raises(ConfigError):
            Tracer(sample_rate=bad)

    def test_exact_count_decimation(self):
        tracer = Tracer(sample_every=3)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        kept = [s["name"] for s in tracer.snapshot()]
        assert kept == ["s0", "s3", "s6", "s9"]

    def test_unsampled_spans_keep_depth_truthful(self):
        tracer = Tracer(sample_every=2)
        with tracer.span("kept0"):          # sampled
            with tracer.span("dropped"):    # not sampled
                with tracer.span("kept1"):  # sampled, depth 2
                    pass
        depths = {s["name"]: s["depth"] for s in tracer.snapshot()}
        assert depths == {"kept0": 0, "kept1": 2}

    def test_probabilistic_sampling_deterministic_under_seed(self):
        def run(seed):
            tracer = Tracer(sample_rate=0.25, seed=seed)
            for i in range(200):
                with tracer.span(f"s{i}"):
                    pass
            return [s["name"] for s in tracer.snapshot()]

        assert run(7) == run(7)
        assert run(7) != run(8)
        kept = run(7)
        assert 0 < len(kept) < 200


class TestAggregation:
    def test_stage_summary_groups_and_sorts(self):
        spans = [
            {"name": "a", "dur_us": 1000.0},
            {"name": "a", "dur_us": 3000.0},
            {"name": "b", "dur_us": 5000.0},
        ]
        rows = stage_summary(spans)
        assert [r["name"] for r in rows] == ["b", "a"]
        a = rows[1]
        assert a["count"] == 2
        assert a["total_ms"] == 4.0
        assert a["mean_ms"] == 2.0
        assert a["max_ms"] == 3.0

    def test_stage_summary_empty(self):
        assert stage_summary([]) == []

    def test_stage_summary_percentiles_nearest_rank(self):
        spans = [
            {"name": "a", "dur_us": float(us)}
            for us in range(1000, 101000, 1000)  # 1ms..100ms, 100 spans
        ]
        (row,) = stage_summary(spans)
        assert row["p50_ms"] == 50.0
        assert row["p95_ms"] == 95.0
        assert row["p99_ms"] == 99.0
        assert row["max_ms"] == 100.0

    def test_stage_summary_single_span_percentiles(self):
        (row,) = stage_summary([{"name": "a", "dur_us": 2000.0}])
        assert row["p50_ms"] == row["p95_ms"] == row["p99_ms"] == 2.0


class TestChromeTrace:
    def test_complete_events_and_process_metadata(self):
        tracer = Tracer()
        with tracer.span("sim.pass1", dc=1):
            pass
        doc = to_chrome_trace(tracer.snapshot())
        # Must be valid JSON end to end.
        doc = json.loads(json.dumps(doc))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(slices) == 1
        assert slices[0]["name"] == "sim.pass1"
        assert slices[0]["cat"] == "sim"
        assert slices[0]["args"] == {"dc": 1}
        assert slices[0]["dur"] >= 0
        assert metas and metas[0]["name"] == "process_name"
        assert metas[0]["pid"] == slices[0]["pid"]

    def test_one_named_track_per_thread(self):
        tracer = Tracer()
        with tracer.span("main.work"):
            pass
        thread = threading.Thread(
            target=lambda: tracer.span("stats.work").__enter__().__exit__(
                None, None, None
            ),
            name="live-stats",
        )
        thread.start()
        thread.join()
        doc = to_chrome_trace(tracer.snapshot())
        slices = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        thread_metas = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert slices["main.work"]["tid"] != slices["stats.work"]["tid"]
        assert thread_metas[slices["stats.work"]["tid"]] == "live-stats"
        assert len(thread_metas) == 2

    def test_pre_tid_artifacts_fall_back_to_track_zero(self):
        # Telemetry written before spans carried tids still renders.
        doc = to_chrome_trace(
            [{"name": "old.span", "start_us": 0, "dur_us": 5.0, "pid": 1,
              "labels": {}}]
        )
        (slice_,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slice_["tid"] == 0
        (meta,) = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert meta["args"]["name"] == "thread 0"
