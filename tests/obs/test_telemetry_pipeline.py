"""End-to-end telemetry: worker-count parity, CLI round-trip, golden run.

The headline guarantee under test: the merged **metrics** of an
``N``-worker study build are byte-identical to a 1-worker build (spans
measure the clock and are exempt).  Plus the ``repro obs`` CLI surface
over a real artifact and a slow golden-run smoke through ``repro run
--telemetry``.
"""

import json

import pytest

from repro.cli import main
from repro.core import Study, StudyConfig
from repro.obs.runtime import Telemetry, telemetry_session
from repro.obs.schema import validate_telemetry
from repro.workload import FleetConfig


def _tiny_config(seed=11, dcs=2) -> StudyConfig:
    return StudyConfig(
        seed=seed,
        duration_seconds=60,
        trace_sampling_rate=1.0 / 5.0,
        dc_configs=[
            FleetConfig(
                dc_id=dc,
                num_users=4,
                num_vms=10,
                num_compute_nodes=4,
                num_storage_nodes=4,
            )
            for dc in range(dcs)
        ],
        wt_cov_windows=(30, 60),
        migration_window_scales=(15, 60),
        balancer_period_seconds=15,
        prediction_warmup_periods=2,
        prediction_epoch_periods=2,
        cache_min_traces=50,
        hot_rate_window_seconds=30.0,
    )


def _metrics_for_workers(workers: int, dcs: int = 2) -> str:
    with telemetry_session(seed=0) as telemetry:
        Study(_tiny_config(dcs=dcs)).build(workers=workers)
        return json.dumps(telemetry.registry.snapshot(), sort_keys=True)


class TestWorkerParity:
    def test_multi_dc_fanout_metrics_byte_identical(self):
        # workers=4 over 2 DCs exercises the DC process fan-out.
        assert _metrics_for_workers(1) == _metrics_for_workers(4)

    def test_single_dc_trace_fanout_metrics_byte_identical(self):
        # A single DC fans out per-VD trace generation instead.
        assert _metrics_for_workers(1, dcs=1) == _metrics_for_workers(
            4, dcs=1
        )

    def test_metrics_are_nonempty_and_named_per_catalogue(self):
        with telemetry_session(seed=0) as telemetry:
            Study(_tiny_config()).build(workers=1)
            snap = telemetry.registry.snapshot()
        counters = {c["name"] for c in snap["counters"]}
        assert "sim.traces.ios" in counters
        assert "workload.vds_generated" in counters
        gauges = {g["name"] for g in snap["gauges"]}
        assert "sim.pass1.wt_grid_cells" in gauges
        histograms = {h["name"] for h in snap["histograms"]}
        assert "sim.traces.ios_per_vd" in histograms


@pytest.fixture()
def artifact(tmp_path):
    t = Telemetry(enabled=True)
    t.meta.update(command="run", experiment="table2", seed=7)
    t.counter("sim.traces.ios", dc=0, op="read").inc(64)
    t.histogram("sim.traces.ios_per_vd", dc=0).observe(64)
    with t.span("study.build", workers=1):
        pass
    return t.write(tmp_path / "telemetry.json")


class TestObsCli:
    def test_validate_ok(self, artifact, capsys):
        assert main(["obs", "validate", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_validate_rejects_broken_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": "nope"}))
        assert main(["obs", "validate", str(bad)]) == 1

    def test_validate_missing_file(self, capsys):
        assert main(["obs", "validate", "/does/not/exist.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_renders_tables(self, artifact, capsys):
        assert main(["obs", "report", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "study.build" in out
        assert "sim.traces.ios" in out

    def test_export_chrome_trace_to_file(self, artifact, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["obs", "export", str(artifact), "--format", "chrome-trace",
             "-o", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert any(
            e["ph"] == "X" and e["name"] == "study.build"
            for e in doc["traceEvents"]
        )

    def test_export_prometheus_to_stdout(self, artifact, capsys):
        assert main(["obs", "export", str(artifact), "--format",
                     "prometheus"]) == 0
        assert "repro_sim_traces_ios_total" in capsys.readouterr().out

    def test_export_jsonl(self, artifact, capsys):
        assert main(["obs", "export", str(artifact), "--format",
                     "jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line) for line in lines)


@pytest.mark.slow
class TestGoldenRun:
    def test_run_with_telemetry_writes_valid_artifact(
        self, tmp_path, capsys
    ):
        path = tmp_path / "telemetry.json"
        code = main(
            ["run", "table2", "--scale", "small", "--telemetry", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert validate_telemetry(payload) == []
        assert payload["meta"]["command"] == "run"
        assert payload["meta"]["experiment"] == "table2"
        span_names = {s["name"] for s in payload["spans"]}
        assert "study.build" in span_names
        assert "study.experiment" in span_names
        counters = {c["name"] for c in payload["metrics"]["counters"]}
        assert "study.experiments_run" in counters
        assert "sim.traces.ios" in counters
        # And the artifact round-trips through the obs CLI.
        assert main(["obs", "validate", str(path)]) == 0
        assert main(["obs", "report", str(path)]) == 0
