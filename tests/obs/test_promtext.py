"""Tests for the Prometheus exposition-format parser and validator."""

import pytest

from repro.cli import main
from repro.obs.promtext import Sample, parse_promtext, validate_promtext
from repro.util.errors import ConfigError

GOOD = """\
# HELP repro_ios_total IOs observed.
# TYPE repro_ios_total counter
repro_ios_total{dc="0",op="read"} 100
repro_ios_total{dc="0",op="write"} 50
# TYPE repro_lat histogram
repro_lat_bucket{le="4"} 3
repro_lat_bucket{le="128"} 4
repro_lat_bucket{le="+Inf"} 4
repro_lat_sum 97
repro_lat_count 4
# EOF
"""


class TestParse:
    def test_parses_samples_and_skips_comments(self):
        samples = parse_promtext(GOOD)
        assert len(samples) == 7
        first = samples[0]
        assert first == Sample(
            name="repro_ios_total",
            labels=(("dc", "0"), ("op", "read")),
            value=100.0,
            line=3,
        )
        assert first.labels_dict == {"dc": "0", "op": "read"}

    def test_unescapes_label_values(self):
        (sample,) = parse_promtext(
            'm{a="va\\"l\\\\ue\\n"} 1'
        )
        assert sample.labels_dict == {"a": 'va"l\\ue\n'}

    def test_inf_and_nan_values(self):
        samples = parse_promtext("a +Inf\nb -Inf\nc NaN")
        assert samples[0].value == float("inf")
        assert samples[1].value == float("-inf")
        assert samples[2].value != samples[2].value  # NaN

    def test_timestamp_suffix_accepted(self):
        (sample,) = parse_promtext("m{x=\"1\"} 2.5 1712345678")
        assert sample.value == 2.5

    @pytest.mark.parametrize(
        "bad",
        [
            "not a metric line at all !",
            "1leading_digit 2",
            'm{unterminated="v} 1',
            'm{k="v"extra} 1',
            "m not_a_number",
            "# TYPE m flavour",
            "# BOGUS comment",
            'm{dup="1",dup="2"} 3',
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ConfigError):
            parse_promtext(bad)


class TestValidate:
    def test_good_document_is_clean(self):
        assert validate_promtext(GOOD) == []

    def test_parse_error_is_reported_not_raised(self):
        problems = validate_promtext("!!!")
        assert len(problems) == 1
        assert "malformed" in problems[0]

    def test_duplicate_series_flagged(self):
        problems = validate_promtext('a{x="1"} 1\na{x="1"} 2')
        assert any("duplicate series" in p for p in problems)

    def test_same_name_different_labels_ok(self):
        assert validate_promtext('a{x="1"} 1\na{x="2"} 2') == []

    def test_negative_counter_flagged(self):
        problems = validate_promtext("a_total -1")
        assert any("negative" in p for p in problems)

    def test_non_monotone_buckets_flagged(self):
        text = (
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\nh_sum 9\nh_count 5'
        )
        problems = validate_promtext(text)
        assert any("not monotone" in p for p in problems)

    def test_missing_inf_bucket_flagged(self):
        problems = validate_promtext('h_bucket{le="1"} 1\nh_sum 1\nh_count 1')
        assert any("+Inf" in p for p in problems)

    def test_count_mismatch_flagged(self):
        text = 'h_bucket{le="+Inf"} 4\nh_sum 9\nh_count 5'
        problems = validate_promtext(text)
        assert any("_count" in p for p in problems)

    def test_missing_sum_flagged(self):
        text = 'h_bucket{le="+Inf"} 4\nh_count 4'
        problems = validate_promtext(text)
        assert any("_sum" in p for p in problems)

    def test_label_order_does_not_split_histogram_series(self):
        # _count/_sum carry labels in a different order than _bucket.
        text = (
            'h_bucket{a="1",b="2",le="+Inf"} 3\n'
            'h_sum{b="2",a="1"} 7\n'
            'h_count{b="2",a="1"} 3'
        )
        assert validate_promtext(text) == []

    def test_unparseable_le_flagged(self):
        problems = validate_promtext('h_bucket{le="wide"} 1')
        assert any("unparseable" in p for p in problems)


class TestPromcheckCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "scrape.prom"
        target.write_text(GOOD)
        assert main(["obs", "promcheck", str(target)]) == 0
        assert "ok: 7 sample(s)" in capsys.readouterr().out

    def test_invalid_file_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "scrape.prom"
        target.write_text("h_total -3\n")
        assert main(["obs", "promcheck", str(target)]) == 1
        assert "negative" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, capsys):
        assert main(["obs", "promcheck", "/no/such/file.prom"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_stdin_dash(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("a_total 3\n"))
        assert main(["obs", "promcheck", "-"]) == 0
        assert "1 sample(s)" in capsys.readouterr().out
