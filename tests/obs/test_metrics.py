"""Tests for the metrics primitives and registry merge semantics."""

import json
import random

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.util.errors import ConfigError


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        with pytest.raises(ConfigError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge_dict(b.to_dict())
        assert a.value == 7


class TestGauge:
    def test_unset_is_none(self):
        assert Gauge().value is None

    def test_set_overwrites_set_max_keeps_peak(self):
        g = Gauge()
        g.set(10)
        g.set(5)
        assert g.value == 5
        g.set_max(3)
        assert g.value == 5
        g.set_max(8)
        assert g.value == 8

    def test_merge_takes_max_and_ignores_none(self):
        a, b = Gauge(), Gauge()
        a.set(5)
        a.merge_dict(b.to_dict())  # unset other: no-op
        assert a.value == 5
        b.set(9)
        a.merge_dict(b.to_dict())
        assert a.value == 9


class TestHistogramBuckets:
    @pytest.mark.parametrize(
        "value,exponent",
        [
            (1, 0),      # 2**0 is its own upper edge
            (2, 1),
            (3, 2),      # (2, 4]
            (4, 2),
            (5, 3),
            (1024, 10),
            (1025, 11),
            (0.5, -1),   # exact power of two below 1
            (0.75, 0),   # (0.5, 1]
        ],
    )
    def test_bucket_of_edges(self, value, exponent):
        assert Histogram.bucket_of(value) == exponent
        lo, hi = Histogram.bucket_edges(exponent)
        assert lo < value <= hi

    def test_zero_counts_separately(self):
        h = Histogram()
        h.observe(0)
        h.observe(0, count=2)
        assert h.zeros == 3
        assert h.count == 3
        assert h.buckets == {}

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            Histogram().observe(-1)
        with pytest.raises(ConfigError):
            Histogram().observe_many([1, -1])

    def test_observe_many_matches_sequential(self):
        rng = random.Random(11)
        values = [rng.randrange(0, 5000) for _ in range(400)]
        seq, vec = Histogram(), Histogram()
        for value in values:
            seq.observe(value)
        vec.observe_many(np.asarray(values))
        assert seq.to_dict() == vec.to_dict()

    def test_observe_many_empty_is_noop(self):
        h = Histogram()
        h.observe_many(np.asarray([], dtype=np.int64))
        assert h.to_dict() == Histogram().to_dict()

    def test_merge_adds_buckets_and_tracks_extrema(self):
        a, b = Histogram(), Histogram()
        a.observe(3)
        a.observe(100)
        b.observe(3)
        b.observe(1)
        b.observe(0)
        a.merge_dict(b.to_dict())
        assert a.count == 5
        assert a.sum == 107
        assert a.zeros == 1
        assert a.min == 0
        assert a.max == 100
        assert a.buckets[2] == 2  # both 3s


class TestRegistry:
    def test_same_series_is_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x", dc=0)
        b = reg.counter("x", dc=0)
        assert a is b
        assert reg.counter("x", dc=1) is not a
        assert len(reg) == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x", dc=0)

    def test_empty_name_raises(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")

    def test_snapshot_order_independent_of_creation_order(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for reg, order in ((forward, (0, 1, 2)), (backward, (2, 1, 0))):
            for dc in order:
                reg.counter("sim.rows", dc=dc).inc(dc + 1)
            reg.gauge("grid", dc=0).set(9)
        assert json.dumps(forward.snapshot(), sort_keys=True) == json.dumps(
            backward.snapshot(), sort_keys=True
        )

    def test_empty_registry_snapshot(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}


def _record_events(registry, events):
    """Replay (kind, name, labels, value) events into a registry."""
    for kind, name, labels, value in events:
        if kind == "counter":
            registry.counter(name, **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name, **labels).set_max(value)
        else:
            registry.histogram(name, **labels).observe(value)


class TestMergeSemantics:
    def _events(self, n=300, seed=5):
        rng = random.Random(seed)
        kinds = ("counter", "gauge", "histogram")
        names = ("sim.ios", "sim.grid", "cache.pages")
        out = []
        for _ in range(n):
            kind = rng.choice(kinds)
            # one name per kind so kinds never collide
            name = names[kinds.index(kind)]
            out.append(
                (kind, name, {"dc": rng.randrange(3)}, rng.randrange(0, 999))
            )
        return out

    def test_sharded_merge_equals_single_process(self):
        events = self._events()
        single = MetricsRegistry()
        _record_events(single, events)

        for num_shards in (2, 3, 5):
            shards = [MetricsRegistry() for _ in range(num_shards)]
            for i, event in enumerate(events):
                _record_events(shards[i % num_shards], [event])
            merged = MetricsRegistry()
            for shard in shards:
                merged.merge_snapshot(shard.snapshot())
            assert json.dumps(merged.snapshot(), sort_keys=True) == json.dumps(
                single.snapshot(), sort_keys=True
            )

    def test_merge_order_free(self):
        events = self._events(n=120, seed=9)
        shards = [MetricsRegistry() for _ in range(3)]
        for i, event in enumerate(events):
            _record_events(shards[i % 3], [event])
        snaps = [shard.snapshot() for shard in shards]
        ab = merge_snapshots(snaps)
        ba = merge_snapshots(reversed(snaps))
        assert json.dumps(ab, sort_keys=True) == json.dumps(
            ba, sort_keys=True
        )

    def test_merging_empty_registries_is_identity(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(7)
        before = json.dumps(reg.snapshot(), sort_keys=True)
        reg.merge_snapshot(MetricsRegistry().snapshot())
        reg.merge(MetricsRegistry())
        assert json.dumps(reg.snapshot(), sort_keys=True) == before

    def test_merge_kind_collision_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(1)
        b.gauge("x").set(1)
        with pytest.raises(ConfigError):
            a.merge_snapshot(b.snapshot())
