"""Tests for the telemetry exporters (Chrome trace, Prometheus, JSONL)."""

import json

import pytest

from repro.obs.export import (
    EXPORT_FORMATS,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    export_telemetry,
)
from repro.obs.promtext import parse_promtext, validate_promtext
from repro.obs.runtime import Telemetry
from repro.util.errors import ConfigError


@pytest.fixture()
def payload():
    t = Telemetry(enabled=True)
    t.meta["command"] = "run"
    t.counter("sim.traces.ios", dc=0, op="read").inc(100)
    t.counter("sim.traces.ios", dc=0, op="write").inc(50)
    t.gauge("sim.pass1.wt_grid_cells", dc=0).set_max(640)
    h = t.histogram("sim.traces.ios_per_vd", dc=0)
    h.observe(0)
    h.observe(3)   # bucket 2, upper edge 4
    h.observe(4)   # bucket 2
    h.observe(90)  # bucket 7, upper edge 128
    with t.span("study.build", workers=2):
        pass
    return t.snapshot()


class TestChromeTrace:
    def test_loadable_document(self, payload):
        doc = json.loads(export_chrome_trace(payload))
        names = {e["name"] for e in doc["traceEvents"]}
        assert "study.build" in names
        assert "process_name" in names


class TestPrometheus:
    def test_counter_gauge_lines(self, payload):
        text = export_prometheus(payload)
        assert "# TYPE repro_sim_traces_ios_total counter" in text
        assert 'repro_sim_traces_ios_total{dc="0",op="read"} 100' in text
        assert 'repro_sim_pass1_wt_grid_cells{dc="0"} 640' in text

    def test_histogram_buckets_cumulative(self, payload):
        lines = export_prometheus(payload).splitlines()
        name = "repro_sim_traces_ios_per_vd"
        buckets = [l for l in lines if l.startswith(f"{name}_bucket")]
        # zeros bucket, le=4, le=128, le=+Inf — cumulative counts
        assert buckets == [
            f'{name}_bucket{{dc="0",le="0"}} 1',
            f'{name}_bucket{{dc="0",le="4"}} 3',
            f'{name}_bucket{{dc="0",le="128"}} 4',
            f'{name}_bucket{{dc="0",le="+Inf"}} 4',
        ]
        assert f'{name}_sum{{dc="0"}} 97' in "\n".join(lines)
        assert f'{name}_count{{dc="0"}} 4' in "\n".join(lines)

    def test_output_passes_the_promtext_validator(self, payload):
        assert validate_promtext(export_prometheus(payload)) == []

    def test_label_values_escaped_per_spec(self):
        t = Telemetry(enabled=True)
        t.counter("weird", path='C:\\x "y"\nz').inc(3)
        text = export_prometheus(t.snapshot())
        assert validate_promtext(text) == []
        (sample,) = [
            s for s in parse_promtext(text) if s.name.endswith("_total")
        ]
        # the parser's unescape must give back the original value
        assert sample.labels_dict == {"path": 'C:\\x "y"\nz'}

    def test_colliding_sanitized_label_names_deduped(self):
        t = Telemetry(enabled=True)
        # "a.b" and "a:b" both sanitize to "a_b"
        t.counter("collide", **{"a.b": 1, "a:b": 2}).inc(1)
        text = export_prometheus(t.snapshot())
        assert validate_promtext(text) == []
        (sample,) = [
            s for s in parse_promtext(text) if s.name.endswith("_total")
        ]
        assert dict(sample.labels) == {"a_b": "1", "a_b_2": "2"}

    def test_leading_digit_label_key_prefixed(self):
        t = Telemetry(enabled=True)
        t.counter("digit", **{"0key": "v"}).inc(1)
        text = export_prometheus(t.snapshot())
        assert validate_promtext(text) == []
        assert '_0key="v"' in text


class TestJsonl:
    def test_one_typed_record_per_line(self, payload):
        records = [
            json.loads(line)
            for line in export_jsonl(payload).strip().splitlines()
        ]
        types = [r["type"] for r in records]
        assert types[0] == "meta"
        assert records[0]["command"] == "run"
        assert types.count("counter") == 2
        assert types.count("gauge") == 1
        assert types.count("histogram") == 1
        assert types.count("span") == 1


class TestDispatch:
    def test_all_formats_produce_text(self, payload):
        for fmt in EXPORT_FORMATS:
            assert export_telemetry(payload, fmt)

    def test_unknown_format_raises(self, payload):
        with pytest.raises(ConfigError):
            export_telemetry(payload, "csv")
