"""Tests for byte-unit parsing and formatting."""

import pytest

from repro.util import ConfigError, GiB, KiB, MiB, PiB, TiB, format_bytes, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("4096") == 4096

    def test_kib(self):
        assert parse_size("4KiB") == 4 * KiB

    def test_mib_with_space(self):
        assert parse_size("64 MiB") == 64 * MiB

    def test_gib(self):
        assert parse_size("32GiB") == 32 * GiB

    def test_tib_and_pib(self):
        assert parse_size("2TiB") == 2 * TiB
        assert parse_size("1PiB") == PiB

    def test_short_units(self):
        assert parse_size("8k") == 8 * KiB
        assert parse_size("3M") == 3 * MiB

    def test_fractional(self):
        assert parse_size("1.5KiB") == 1536

    def test_case_insensitive(self):
        assert parse_size("1gib") == GiB

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_rejects_unknown_unit(self):
        with pytest.raises(ConfigError):
            parse_size("5 parsecs")

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            parse_size("-5KiB")


class TestFormatBytes:
    def test_exact_unit(self):
        assert format_bytes(32 * GiB) == "32.0 GiB"

    def test_sub_kib(self):
        assert format_bytes(512) == "512 B"

    def test_rounding_precision(self):
        assert format_bytes(1536, precision=2) == "1.50 KiB"

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            format_bytes(-1)

    def test_roundtrip(self):
        for value in (KiB, 7 * MiB, 13 * GiB):
            assert parse_size(format_bytes(value)) == value
