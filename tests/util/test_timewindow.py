"""Tests for time-window bucketing."""

import pytest

from repro.util import ConfigError, TimeWindow, iter_windows, window_index


class TestTimeWindow:
    def test_duration(self):
        assert TimeWindow(10, 25).duration == 15

    def test_contains_half_open(self):
        w = TimeWindow(10, 20)
        assert w.contains(10)
        assert w.contains(19)
        assert not w.contains(20)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            TimeWindow(5, 5)

    def test_overlaps(self):
        assert TimeWindow(0, 10).overlaps(TimeWindow(9, 12))
        assert not TimeWindow(0, 10).overlaps(TimeWindow(10, 12))


class TestIterWindows:
    def test_exact_cover(self):
        windows = list(iter_windows(60, 15))
        assert len(windows) == 4
        assert windows[0] == TimeWindow(0, 15)
        assert windows[-1] == TimeWindow(45, 60)

    def test_partial_tail_kept(self):
        windows = list(iter_windows(50, 15))
        assert windows[-1] == TimeWindow(45, 50)

    def test_partial_tail_dropped(self):
        windows = list(iter_windows(50, 15, drop_partial=True))
        assert windows[-1] == TimeWindow(30, 45)

    def test_covers_everything(self):
        windows = list(iter_windows(100, 7))
        covered = sum(w.duration for w in windows)
        assert covered == 100

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            list(iter_windows(0, 10))
        with pytest.raises(ConfigError):
            list(iter_windows(10, 0))


class TestWindowIndex:
    def test_basic(self):
        assert window_index(0, 15) == 0
        assert window_index(14, 15) == 0
        assert window_index(15, 15) == 1

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            window_index(-1, 15)
