"""Tests for time-window bucketing."""

import pytest

from repro.util import ConfigError, TimeWindow, iter_windows, window_index


class TestTimeWindow:
    def test_duration(self):
        assert TimeWindow(10, 25).duration == 15

    def test_contains_half_open(self):
        w = TimeWindow(10, 20)
        assert w.contains(10)
        assert w.contains(19)
        assert not w.contains(20)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            TimeWindow(5, 5)

    def test_overlaps(self):
        assert TimeWindow(0, 10).overlaps(TimeWindow(9, 12))
        assert not TimeWindow(0, 10).overlaps(TimeWindow(10, 12))

    def test_overlaps_boundary_touching_is_disjoint(self):
        """Half-open semantics: [a, b) and [b, c) share no second."""
        left = TimeWindow(0, 10)
        right = TimeWindow(10, 20)
        assert not left.overlaps(right)
        assert not right.overlaps(left)
        # One second of genuine intersection flips it, both directions.
        nudged = TimeWindow(9, 20)
        assert left.overlaps(nudged)
        assert nudged.overlaps(left)

    def test_overlaps_containment_and_self(self):
        outer = TimeWindow(0, 100)
        inner = TimeWindow(40, 60)
        assert outer.overlaps(inner)
        assert inner.overlaps(outer)
        assert inner.overlaps(inner)


class TestIterWindows:
    def test_exact_cover(self):
        windows = list(iter_windows(60, 15))
        assert len(windows) == 4
        assert windows[0] == TimeWindow(0, 15)
        assert windows[-1] == TimeWindow(45, 60)

    def test_partial_tail_kept(self):
        windows = list(iter_windows(50, 15))
        assert windows[-1] == TimeWindow(45, 50)

    def test_partial_tail_dropped(self):
        windows = list(iter_windows(50, 15, drop_partial=True))
        assert windows[-1] == TimeWindow(30, 45)

    def test_covers_everything(self):
        windows = list(iter_windows(100, 7))
        covered = sum(w.duration for w in windows)
        assert covered == 100

    def test_drop_partial_total_shorter_than_window_yields_nothing(self):
        """total < window with drop_partial: empty, not an exception.

        The live tracker instantiates windows this way for very short
        replays; an empty schedule is a valid (zero-window) run.
        """
        assert list(iter_windows(5, 10, drop_partial=True)) == []
        assert list(iter_windows(1, 2, drop_partial=True)) == []

    def test_drop_partial_keeps_exact_multiples_intact(self):
        """drop_partial must never eat a final window that is full."""
        windows = list(iter_windows(60, 15, drop_partial=True))
        assert windows == list(iter_windows(60, 15))
        assert windows[-1] == TimeWindow(45, 60)
        # window == total: exactly one full window either way.
        assert list(iter_windows(10, 10, drop_partial=True)) == [
            TimeWindow(0, 10)
        ]

    def test_drop_partial_only_drops_the_tail(self):
        kept = list(iter_windows(65, 15, drop_partial=True))
        full = list(iter_windows(65, 15))
        assert kept == full[:-1]
        assert sum(w.duration for w in kept) == 60

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            list(iter_windows(0, 10))
        with pytest.raises(ConfigError):
            list(iter_windows(10, 0))
        with pytest.raises(ConfigError):
            list(iter_windows(0, 10, drop_partial=True))


class TestWindowIndex:
    def test_basic(self):
        assert window_index(0, 15) == 0
        assert window_index(14, 15) == 0
        assert window_index(15, 15) == 1

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            window_index(-1, 15)
