"""Tests for deterministic RNG spawning."""

from repro.util import RngFactory, spawn_rng


class TestSpawnRng:
    def test_same_seed_same_label_same_stream(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "x").random(5)
        assert (a == b).all()

    def test_different_labels_differ(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "y").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(8, "x").random(5)
        assert not (a == b).all()


class TestRngFactory:
    def test_get_is_replayable(self):
        factory = RngFactory(11)
        a = factory.get("component").random(4)
        b = factory.get("component").random(4)
        assert (a == b).all()

    def test_child_streams_independent(self):
        factory = RngFactory(11)
        child = factory.child("sub")
        a = factory.get("x").random(4)
        b = child.get("x").random(4)
        assert not (a == b).all()

    def test_child_deterministic(self):
        a = RngFactory(11).child("sub").get("x").random(4)
        b = RngFactory(11).child("sub").get("x").random(4)
        assert (a == b).all()
