"""Sweep grids: the axis mini-language and cartesian point expansion."""

import pytest

from repro.sweep.grid import (
    SweepSpec,
    override_label,
    parse_axes,
    parse_axis,
)
from repro.util.errors import ConfigError
from repro.util.units import GiB, KiB, MiB

from .conftest import tiny_config


class TestParseAxis:
    def test_integers(self):
        assert parse_axis("cache_min_traces=300,500") == (
            "cache_min_traces", [300, 500],
        )

    def test_floats_and_strings_and_bools(self):
        name, values = parse_axis("x=0.5,hello,true,False")
        assert name == "x"
        assert values == [0.5, "hello", True, False]

    def test_unit_suffixes(self):
        assert parse_axis("b=64MiB,1GiB,4KiB")[1] == [
            64 * MiB, 1 * GiB, 4 * KiB,
        ]
        assert parse_axis("b=2KB")[1] == [2000]

    def test_colon_builds_tuples(self):
        name, values = parse_axis("lending_rates=0.2:0.4,0.6:0.8")
        assert values == [(0.2, 0.4), (0.6, 0.8)]

    def test_tuples_of_sizes(self):
        assert parse_axis("cache_block_bytes=64MiB:512MiB")[1] == [
            (64 * MiB, 512 * MiB)
        ]

    def test_redundancy_specs_survive_the_embedded_equals(self):
        # "r=1" itself contains '='; only the first one splits the axis.
        assert parse_axis("redundancy=r=1,r=3") == (
            "redundancy", ["r=1", "r=3"],
        )
        assert parse_axis("redundancy=ec=4+2")[1] == ["ec=4+2"]
        assert parse_axis("read_policy=primary,least_loaded")[1] == [
            "primary", "least_loaded",
        ]

    @pytest.mark.parametrize(
        "bad", ["noequals", "=1,2", "x=", "x=1,,2", "x=fooMiB"]
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_axis(bad)

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ConfigError):
            parse_axes(["a=1", "a=2"])

    def test_parse_axes_merges(self):
        axes = parse_axes(["a=1,2", "b=x"])
        assert axes == {"a": [1, 2], "b": ["x"]}


class TestSweepSpec:
    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            SweepSpec(
                base=tiny_config(),
                axes={"cache_min_tracez": [1]},
                experiments=("table2",),
            )

    def test_needs_experiments(self):
        with pytest.raises(ConfigError):
            SweepSpec(base=tiny_config(), axes={}, experiments=())

    def test_axes_need_values(self):
        with pytest.raises(ConfigError):
            SweepSpec(
                base=tiny_config(),
                axes={"cache_min_traces": []},
                experiments=("table2",),
            )

    def test_no_axes_is_one_point(self):
        spec = SweepSpec(
            base=tiny_config(), axes={}, experiments=("table2",)
        )
        points = spec.points()
        assert len(points) == 1
        assert points[0].overrides == ()
        assert points[0].config == tiny_config()

    def test_cartesian_expansion_is_deterministic(self):
        spec = SweepSpec(
            base=tiny_config(),
            axes={
                "seed": [3, 4],
                "cache_min_traces": [100, 200],
            },
            experiments=("table2",),
        )
        points = spec.points()
        assert [p.override_dict() for p in points] == [
            {"cache_min_traces": 100, "seed": 3},
            {"cache_min_traces": 100, "seed": 4},
            {"cache_min_traces": 200, "seed": 3},
            {"cache_min_traces": 200, "seed": 4},
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert points[3].config.seed == 4
        assert points[3].config.cache_min_traces == 200
        # axis_names sort alphabetically, so expansion order is stable
        # no matter how the axes dict was built.
        assert spec.axis_names == ["cache_min_traces", "seed"]

    def test_invalid_point_reports_its_overrides(self):
        spec = SweepSpec(
            base=tiny_config(),
            axes={"cache_min_traces": [0]},
            experiments=("table2",),
        )
        with pytest.raises(ConfigError, match="cache_min_traces"):
            spec.points()

    def test_describe(self):
        spec = SweepSpec(
            base=tiny_config(),
            axes={"seed": [1, 2], "cache_min_traces": [100, 200, 300]},
            experiments=("table2", "fig7a"),
        )
        assert "2 x " in spec.describe() or "3 x " in spec.describe()
        assert "2 experiment(s)" in spec.describe()


class TestOverrideLabel:
    def test_mib_multiples_render_with_units(self):
        assert override_label(64 * MiB) == "64MiB"
        assert override_label(100) == 100

    def test_tuples_join_with_colons(self):
        assert override_label((64 * MiB, 512 * MiB)) == "64MiB:512MiB"
        assert override_label((0.2, 0.4)) == "0.2:0.4"
