"""Properties of the canonical encoding and the content-addressed keys.

The cache key must be a function of a config's *semantics*: any two
spellings of the same value digest identically, and the smallest
semantic change produces a different key.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.plan import FaultEvent, FaultPlan
from repro.sweep.canonical import (
    build_key,
    canonical_value,
    config_digest,
    digest_payload,
    experiment_key,
    point_key,
    result_table_digest,
)
from repro.util.errors import ConfigError

from .conftest import tiny_config


class TestCanonicalValue:
    def test_integral_float_collapses_to_int(self):
        assert digest_payload(4) == digest_payload(4.0)
        assert digest_payload({"x": [1, 2.0]}) == digest_payload(
            {"x": [1.0, 2]}
        )

    def test_bool_is_not_int(self):
        assert digest_payload(True) != digest_payload(1)
        assert digest_payload(False) != digest_payload(0)
        assert canonical_value(True) is True

    def test_tuple_and_list_agree(self):
        assert digest_payload((0.2, 0.4)) == digest_payload([0.2, 0.4])

    def test_dict_insertion_order_irrelevant(self):
        a = {"BigData": 0.5, "WebApp": 0.1, "Database": 0.4}
        b = {"Database": 0.4, "WebApp": 0.1, "BigData": 0.5}
        assert digest_payload(a) == digest_payload(b)

    def test_nan_and_inf_get_stable_sentinels(self):
        assert canonical_value(float("nan")) == "float:nan"
        assert canonical_value(float("inf")) == "float:+inf"
        assert canonical_value(float("-inf")) == "float:-inf"

    def test_numpy_scalars_canonicalize_by_value(self):
        assert digest_payload(np.int32(5)) == digest_payload(5)
        assert digest_payload(np.float64(4.0)) == digest_payload(4)
        assert digest_payload(np.float64(0.25)) == digest_payload(0.25)

    def test_enum_encodes_as_value(self):
        from repro.faults.plan import FaultKind

        assert canonical_value(FaultKind.BS_CRASH) == "bs_crash"

    def test_uncanonicalizable_type_fails_loudly(self):
        with pytest.raises(ConfigError):
            canonical_value(object())

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_spelling_never_changes_digest(self, value):
        # Any decimal spelling that round-trips to the same double must
        # produce the same digest (repr is the shortest such spelling).
        assert digest_payload(value) == digest_payload(float(repr(value)))

    @given(
        st.floats(
            min_value=1e-6, max_value=1e6, allow_nan=False,
            allow_infinity=False,
        )
    )
    def test_one_ulp_changes_digest(self, value):
        bumped = np.nextafter(value, np.inf)
        assert digest_payload(float(bumped)) != digest_payload(value)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=8),
                st.booleans(),
            ),
            max_size=6,
        ),
        st.randoms(use_true_random=False),
    )
    def test_mapping_reorder_never_changes_digest(self, mapping, rnd):
        items = list(mapping.items())
        rnd.shuffle(items)
        assert digest_payload(dict(items)) == digest_payload(mapping)


class TestConfigKeys:
    def test_equal_configs_digest_identically(self):
        assert config_digest(tiny_config()) == config_digest(tiny_config())

    def test_semantic_change_changes_digest(self):
        base = tiny_config()
        assert config_digest(base) != config_digest(
            replace(base, seed=base.seed + 1)
        )
        assert config_digest(base) != config_digest(
            replace(base, cache_min_traces=base.cache_min_traces + 1)
        )

    def test_experiment_keys_separate_by_id_and_config(self):
        base = tiny_config()
        assert experiment_key(base, "table2") != experiment_key(
            base, "table3"
        )
        assert experiment_key(base, "table2") != experiment_key(
            replace(base, cache_min_traces=999), "table2"
        )
        assert point_key(base, ["table2"]) != point_key(
            base, ["table2", "table3"]
        )


class TestBuildKeys:
    def test_experiment_knobs_do_not_change_build_keys(self):
        """The property that lets sweep points share simulated fleets."""
        base = tiny_config()
        tweaked = replace(
            base,
            cache_min_traces=base.cache_min_traces * 2,
            lending_rates=(0.3, 0.7),
            balancer_period_seconds=60,
        )
        for dc in base.dc_configs:
            assert build_key(base, dc, None) == build_key(tweaked, dc, None)

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 11},
            {"duration_seconds": 180},
            {"trace_sampling_rate": 0.5},
        ],
    )
    def test_build_relevant_fields_change_build_keys(self, override):
        base = tiny_config()
        changed = replace(base, **override)
        dc = base.dc_configs[0]
        assert build_key(base, dc, None) != build_key(changed, dc, None)

    def test_fault_plan_participates_in_build_keys(self):
        base = tiny_config()
        dc = base.dc_configs[0]
        plan = FaultPlan(
            events=(
                FaultEvent(kind="bs_crash", start_s=10, end_s=30, target=0),
            )
        )
        assert build_key(base, dc, plan) != build_key(base, dc, None)

    def test_fault_event_order_is_irrelevant(self):
        events = (
            FaultEvent(kind="bs_crash", start_s=10, end_s=30, target=0),
            FaultEvent(kind="cs_crash", start_s=40, end_s=60, target=1),
        )
        forward = FaultPlan(events=events)
        backward = FaultPlan(events=tuple(reversed(events)))
        base = tiny_config()
        dc = base.dc_configs[0]
        assert build_key(base, dc, forward) == build_key(base, dc, backward)


def test_result_table_digest_tracks_content():
    table = {
        "experiment_id": "table2",
        "title": "t",
        "headers": ["a"],
        "rows": [[1.5]],
    }
    same = dict(table)
    assert result_table_digest(table) == result_table_digest(same)
    changed = dict(table, rows=[[1.5000001]])
    assert result_table_digest(table) != result_table_digest(changed)
