"""End-to-end acceptance tests for the incremental sweep orchestrator.

The contract under test: a warm replay, a pool run, a streamed run, and
a resumed-after-interrupt run of the same spec are all digest-identical
to the cold inline run — and warm replays do essentially no work.
"""

import time
from dataclasses import replace

import pytest

from repro.core import Study
from repro.faults.plan import FaultEvent, FaultPlan
from repro.sweep import (
    NodeKind,
    SweepError,
    SweepRunner,
    SweepSpec,
)
from repro.util.errors import ConfigError

from .conftest import tiny_config

AXES = {"cache_min_traces": [100, 200]}
EXPERIMENTS = ("table2",)


def make_spec(base) -> SweepSpec:
    return SweepSpec(base=base, axes=AXES, experiments=EXPERIMENTS)


@pytest.fixture(scope="module")
def cold_and_warm(base_config, tmp_path_factory):
    """One cold run and one warm replay over a shared store."""
    store = tmp_path_factory.mktemp("sweep-store")
    spec = make_spec(base_config)

    started = time.perf_counter()
    cold = SweepRunner(spec, store).run()
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = SweepRunner(spec, store).run()
    warm_seconds = time.perf_counter() - started
    return cold, warm, cold_seconds, warm_seconds


class TestColdWarm:
    def test_cold_run_executes_every_node(self, cold_and_warm):
        cold, _, _, _ = cold_and_warm
        assert cold.stats.hits == 0
        assert cold.stats.misses == cold.stats.total
        assert cold.stats.executed == cold.stats.total
        assert cold.stats.skipped == 0

    def test_build_nodes_are_shared_across_points(self, cold_and_warm):
        # 2 points x 2 DCs but the axis is an experiment knob, so the
        # DAG carries one build per DC, not per (point, DC).
        cold, _, _, _ = cold_and_warm
        assert cold.stats.by_kind["build"]["misses"] == 2
        assert cold.stats.total == 2 + 2 * len(EXPERIMENTS) + 2

    def test_warm_run_is_all_hits(self, cold_and_warm):
        _, warm, _, _ = cold_and_warm
        assert warm.stats.misses == 0
        assert warm.stats.executed == 0
        assert warm.stats.hit_rate == 1.0

    def test_warm_run_is_digest_identical(self, cold_and_warm):
        cold, warm, _, _ = cold_and_warm
        assert warm.combined_digest == cold.combined_digest
        assert warm.table_digests == cold.table_digests
        for point in cold.points:
            for experiment_id in EXPERIMENTS:
                assert (
                    warm.results[point.index][experiment_id].to_dict()
                    == cold.results[point.index][experiment_id].to_dict()
                )

    def test_warm_run_is_fast(self, cold_and_warm):
        _, _, cold_seconds, warm_seconds = cold_and_warm
        assert warm_seconds < 0.25 * cold_seconds, (
            f"warm replay took {warm_seconds:.2f}s vs cold "
            f"{cold_seconds:.2f}s — the cache is not saving work"
        )

    def test_matches_the_monolithic_pipeline(
        self, cold_and_warm, base_config
    ):
        """Cache-replayed tables == the classic Study path, byte for byte."""
        cold, _, _, _ = cold_and_warm
        point = cold.points[0]
        study = Study(point.config).build()
        for experiment_id in EXPERIMENTS:
            assert (
                cold.results[point.index][experiment_id].to_dict()
                == study.run(experiment_id).to_dict()
            )

    def test_grids_prefix_axis_values(self, cold_and_warm):
        cold, _, _, _ = cold_and_warm
        grids = cold.tables()
        assert len(grids) == len(EXPERIMENTS)
        grid = grids[0]
        assert grid.headers[0] == "cache_min_traces"
        assert {row[0] for row in grid.rows} == {100, 200}

    def test_outcome_payload_is_versioned(self, cold_and_warm):
        import json

        from repro.sweep import SWEEP_SCHEMA_VERSION

        cold, _, _, _ = cold_and_warm
        payload = cold.to_dict()
        assert payload["sweep_schema_version"] == SWEEP_SCHEMA_VERSION
        assert payload["combined_digest"] == cold.combined_digest
        assert payload["cache"]["total"] == cold.stats.total
        json.dumps(payload)  # must be JSON-serializable as-is


class TestSchedulers:
    def test_pool_run_matches_inline(
        self, cold_and_warm, base_config, tmp_path
    ):
        cold, _, _, _ = cold_and_warm
        outcome = SweepRunner(
            make_spec(base_config), tmp_path / "pool", workers=2
        ).run()
        assert outcome.combined_digest == cold.combined_digest
        assert outcome.stats.executed == outcome.stats.total

    def test_streamed_builds_match_monolithic(
        self, cold_and_warm, base_config, tmp_path
    ):
        cold, _, _, _ = cold_and_warm
        outcome = SweepRunner(
            make_spec(base_config), tmp_path / "streamed", chunk_epochs=1
        ).run()
        assert outcome.combined_digest == cold.combined_digest


class KillAfter:
    """node_hook that simulates ctrl-C after N successful dispatches."""

    def __init__(self, after: int):
        self.after = after
        self.calls = 0

    def __call__(self, node, attempt):
        if self.calls >= self.after:
            raise KeyboardInterrupt
        self.calls += 1


class TestResume:
    @pytest.mark.parametrize("with_faults", [False, True])
    def test_kill_and_resume_is_digest_identical(
        self, base_config, tmp_path, with_faults
    ):
        base = base_config
        if with_faults:
            base = replace(
                base,
                fault_plan=FaultPlan(
                    events=(
                        FaultEvent(
                            kind="bs_crash", start_s=10, end_s=40, target=0
                        ),
                    )
                ),
            )
        spec = make_spec(base)
        store = tmp_path / f"resume-{with_faults}"

        # Reference: one uninterrupted run in a separate store.
        reference = SweepRunner(spec, tmp_path / f"ref-{with_faults}").run()

        # Interrupted run: dies after 3 nodes committed.
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(spec, store, node_hook=KillAfter(3)).run()

        # Resume over the same store: partial work is reused ...
        resumed = SweepRunner(spec, store).run()
        assert resumed.stats.hits == 3
        assert resumed.stats.executed == resumed.stats.total - 3
        # ... and the outcome is indistinguishable from the single shot.
        assert resumed.combined_digest == reference.combined_digest
        assert resumed.table_digests == reference.table_digests


class FlakyOnFirstTry:
    """node_hook that fails every node's first attempt."""

    def __init__(self):
        self.seen = set()

    def __call__(self, node, attempt):
        if node.key not in self.seen:
            self.seen.add(node.key)
            raise RuntimeError("transient hiccup")


class TestRetries:
    def test_transient_failures_are_retried(self, base_config, tmp_path):
        outcome = SweepRunner(
            make_spec(base_config),
            tmp_path / "flaky",
            retries=1,
            node_hook=FlakyOnFirstTry(),
        ).run()
        assert outcome.stats.retries == outcome.stats.total
        assert outcome.stats.executed == outcome.stats.total

    def test_exhausted_retries_raise_sweep_error(
        self, base_config, tmp_path
    ):
        def always_fail(node, attempt):
            raise RuntimeError("permanent")

        with pytest.raises(SweepError, match="failed after 2 attempt"):
            SweepRunner(
                make_spec(base_config),
                tmp_path / "dead",
                retries=1,
                node_hook=always_fail,
            ).run()

    def test_invalid_knobs_rejected(self, base_config, tmp_path):
        with pytest.raises(ConfigError):
            SweepRunner(make_spec(base_config), tmp_path, workers=0)
        with pytest.raises(ConfigError):
            SweepRunner(make_spec(base_config), tmp_path, retries=-1)

    def test_exhausted_retries_chain_cause_and_name_key(
        self, base_config, tmp_path
    ):
        """The SweepError names the node key and chains the original.

        Regression: the old message had the label only (not unique
        across chunking variants) and post-mortems lost the failing
        node's store key; the chained ``__cause__`` keeps the final
        attempt's real traceback.
        """
        def always_fail(node, attempt):
            raise RuntimeError("permanent meltdown")

        with pytest.raises(SweepError, match=r"\(key [0-9a-f]{12}\)") as info:
            SweepRunner(
                make_spec(base_config),
                tmp_path / "chained",
                retries=1,
                node_hook=always_fail,
            ).run()
        cause = info.value.__cause__
        assert isinstance(cause, RuntimeError)
        assert "permanent meltdown" in str(cause)
        assert cause.__traceback__ is not None

    def test_pool_hook_failures_count_as_attempts(
        self, base_config, tmp_path
    ):
        """Pool path honours the hook contract: failures retry, not abort.

        Regression: the pool scheduler called the hook outside its
        retry handling, so a transient hook exception escaped as a raw
        RuntimeError instead of consuming one attempt.
        """
        outcome = SweepRunner(
            make_spec(base_config),
            tmp_path / "pool-flaky",
            workers=2,
            retries=1,
            node_hook=FlakyOnFirstTry(),
        ).run()
        assert outcome.stats.retries == outcome.stats.total
        assert outcome.stats.executed == outcome.stats.total

    def test_pool_exhausted_retries_name_key(self, base_config, tmp_path):
        def always_fail(node, attempt):
            raise RuntimeError("permanent")

        with pytest.raises(SweepError, match=r"\(key [0-9a-f]{12}\)") as info:
            SweepRunner(
                make_spec(base_config),
                tmp_path / "pool-dead",
                workers=2,
                retries=1,
                node_hook=always_fail,
            ).run()
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_failed_attempts_do_not_pollute_telemetry(
        self, base_config, tmp_path, monkeypatch
    ):
        """A retried node's failed attempt must not leak partial metrics.

        Regression: the inline scheduler ran attempts directly against
        the parent telemetry handle, so a node that recorded some work
        and then crashed double-counted once its retry succeeded.  The
        fix runs every attempt against a fresh worker handle and merges
        only the successful one.
        """
        from repro.obs.runtime import Telemetry, get_telemetry, set_telemetry
        from repro.sweep import orchestrator as orch

        real_build = orch._NODE_RUNNERS[NodeKind.BUILD]
        failed_once = set()

        def crash_mid_run_once(payload):
            if payload["key"] in failed_once:
                return real_build(payload)
            failed_once.add(payload["key"])
            telemetry, previous = orch._enter_worker_telemetry(payload)
            try:
                # Partial work a real build would have recorded before
                # dying; it must never reach the parent's artifact.
                get_telemetry().counter("test.partial_work").inc(1000)
                raise RuntimeError("mid-run crash")
            finally:
                orch._exit_worker_telemetry(telemetry, previous)

        monkeypatch.setitem(
            orch._NODE_RUNNERS, NodeKind.BUILD, crash_mid_run_once
        )
        telemetry = Telemetry(enabled=True)
        previous = set_telemetry(telemetry)
        try:
            outcome = SweepRunner(
                make_spec(base_config), tmp_path / "pollute", retries=1
            ).run()
        finally:
            set_telemetry(previous)
        counters = {
            c["name"]: c["value"]
            for c in telemetry.snapshot()["metrics"]["counters"]
        }
        assert "test.partial_work" not in counters
        assert outcome.stats.retries == len(failed_once) == 2
        assert outcome.stats.executed == outcome.stats.total


class TestDemandDrivenScheduling:
    def test_unneeded_misses_are_skipped(self, base_config, tmp_path):
        """Discarding one point's aggregate only reruns that point."""
        store = tmp_path / "skip"
        spec = make_spec(base_config)
        runner = SweepRunner(spec, store)
        cold = runner.run()

        # Drop one point node: its (cheap) aggregate must be recomputed,
        # but every build/experiment stays a pure cache hit.
        points = [
            node
            for node in runner._dag(spec.points())
            if node.kind is NodeKind.POINT
        ]
        runner.store.discard(points[0].key)

        again = SweepRunner(spec, store).run()
        assert again.stats.misses == 1
        assert again.stats.executed == 1
        assert again.stats.skipped == 0
        assert again.combined_digest == cold.combined_digest
