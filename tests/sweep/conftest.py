"""Shared fixtures for the sweep orchestrator tests.

The orchestrator tests intentionally run real (tiny) studies: the whole
point of the cache is byte parity with the monolithic pipeline, and that
can only be asserted against the genuine article.
"""

from __future__ import annotations

import pytest

from repro.core import StudyConfig
from repro.workload import FleetConfig


def tiny_config(seed: int = 3, **overrides) -> StudyConfig:
    """A 2-DC study small enough to build in a couple of seconds."""
    dcs = [
        FleetConfig(
            dc_id=dc,
            num_users=5,
            num_vms=14,
            num_compute_nodes=5,
            num_storage_nodes=4,
        )
        for dc in range(2)
    ]
    params = dict(
        seed=seed,
        duration_seconds=120,
        trace_sampling_rate=1.0 / 5.0,
        dc_configs=dcs,
        wt_cov_windows=(30, 60),
        migration_window_scales=(15, 60),
        balancer_period_seconds=15,
        prediction_warmup_periods=3,
        prediction_epoch_periods=2,
        cache_min_traces=100,
        hot_rate_window_seconds=30.0,
    )
    params.update(overrides)
    return StudyConfig(**params)


@pytest.fixture(scope="module")
def base_config() -> StudyConfig:
    return tiny_config()
