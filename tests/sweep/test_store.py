"""The on-disk artifact store: atomic commits and defensive reads."""

import json

import numpy as np
import pytest

from repro.sweep.canonical import CODE_SCHEMA_VERSION
from repro.sweep.store import ArtifactStore
from repro.util.errors import ConfigError

KEY = "ab" * 32
OTHER = "cd" * 32


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache")


class TestRoundtrip:
    def test_payload_roundtrip(self, store):
        store.put(KEY, "experiment", payload={"x": [1, 2.5, "s"]})
        envelope = store.get(KEY)
        assert envelope is not None
        assert envelope["kind"] == "experiment"
        assert envelope["payload"] == {"x": [1, 2.5, "s"]}
        assert envelope["schema"] == CODE_SCHEMA_VERSION
        assert not envelope["has_blob"]

    def test_blob_roundtrip_is_bit_exact(self, store):
        rng = np.random.default_rng(0)
        blob = {"arr": rng.standard_normal(257), "n": 3}
        store.put(KEY, "build", payload={"d": "x"}, blob=blob)
        loaded = store.get_blob(KEY)
        assert loaded["n"] == 3
        assert loaded["arr"].dtype == blob["arr"].dtype
        assert np.array_equal(loaded["arr"], blob["arr"])
        # tobytes equality = bit-exact, not just value-equal
        assert loaded["arr"].tobytes() == blob["arr"].tobytes()

    def test_keys_and_len(self, store):
        assert len(store) == 0
        store.put(KEY, "build", payload=1)
        store.put(OTHER, "experiment", payload=2)
        assert sorted(store.keys()) == sorted([KEY, OTHER])
        assert len(store) == 2
        store.discard(KEY)
        assert list(store.keys()) == [OTHER]

    def test_overwrite_is_allowed(self, store):
        store.put(KEY, "build", payload=1)
        store.put(KEY, "build", payload=2)
        assert store.get(KEY)["payload"] == 2


class TestDefensiveReads:
    def test_missing_key_is_a_miss(self, store):
        assert store.get(KEY) is None
        assert not store.has(KEY)

    def test_torn_envelope_degrades_to_miss_and_is_swept(self, store):
        path = store._envelope_path(KEY)
        path.write_text('{"key": "ab', encoding="utf-8")  # torn JSON
        assert store.get(KEY) is None
        assert not path.exists()

    def test_wrong_schema_is_discarded(self, store):
        store.put(KEY, "build", payload=1)
        path = store._envelope_path(KEY)
        envelope = json.loads(path.read_text())
        envelope["schema"] = CODE_SCHEMA_VERSION + 999
        path.write_text(json.dumps(envelope))
        assert store.get(KEY) is None
        assert not path.exists()

    def test_key_mismatch_is_discarded(self, store):
        store.put(KEY, "build", payload=1)
        path = store._envelope_path(KEY)
        envelope = json.loads(path.read_text())
        envelope["key"] = OTHER
        path.write_text(json.dumps(envelope))
        assert store.get(KEY) is None

    def test_envelope_without_promised_blob_is_a_miss(self, store):
        store.put(KEY, "build", payload=1, blob={"x": 1})
        store._blob_path(KEY).unlink()
        assert store.get(KEY) is None
        assert not store._envelope_path(KEY).exists()

    def test_malformed_keys_rejected(self, store):
        for bad in ("", "XYZ", "../escape", "ab/cd"):
            with pytest.raises(ConfigError):
                store.get(bad)


class TestAtomicity:
    def test_no_temp_files_survive_puts(self, store, tmp_path):
        for index in range(4):
            store.put(
                f"{index:02d}" * 32, "build", payload=index, blob=[index]
            )
        leftovers = list((tmp_path / "cache" / "objects").glob(".tmp-*"))
        assert leftovers == []

    def test_temp_files_are_not_listed_as_keys(self, store):
        store.put(KEY, "build", payload=1)
        (store._objects / ".tmp-leftover.json").write_text("{}")
        assert list(store.keys()) == [KEY]
