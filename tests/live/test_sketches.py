"""Sketch guarantees: Count-Min never under, Space-Saving brackets truth."""

import numpy as np
import pytest

from repro.live import CountMinSketch, SpaceSaving
from repro.util.errors import ConfigError


def zipf_stream(num_keys=500, num_updates=20_000, seed=5):
    """A deterministic skewed (key, weight) stream plus its ground truth."""
    rng = np.random.default_rng(seed)
    keys = rng.zipf(1.5, size=num_updates).astype(np.int64) % num_keys
    weights = rng.uniform(1.0, 100.0, size=num_updates)
    truth = np.zeros(num_keys)
    np.add.at(truth, keys, weights)
    return keys, weights, truth


class TestCountMin:
    def test_never_underestimates(self):
        keys, weights, truth = zipf_stream()
        sketch = CountMinSketch(width=512, depth=4)
        sketch.update_many(keys, weights)
        all_keys = np.arange(truth.size, dtype=np.int64)
        estimates = sketch.estimate_many(all_keys)
        assert np.all(estimates >= truth - 1e-9)

    def test_error_bound_holds_on_average(self):
        """Classic CM bound: overestimate <= 2 * total / width for most
        keys (e/width expected; 2x leaves slack for one fixed seed)."""
        keys, weights, truth = zipf_stream()
        sketch = CountMinSketch(width=1024, depth=4)
        sketch.update_many(keys, weights)
        all_keys = np.arange(truth.size, dtype=np.int64)
        over = sketch.estimate_many(all_keys) - truth
        bound = 2.0 * sketch.total_weight / sketch.width
        assert np.mean(over <= bound) > 0.9

    def test_batched_equals_incremental(self):
        keys, weights, _ = zipf_stream(num_updates=2_000)
        one = CountMinSketch(width=256, depth=3)
        one.update_many(keys, weights)
        parts = CountMinSketch(width=256, depth=3)
        half = len(keys) // 2
        parts.update_many(keys[:half], weights[:half])
        parts.update_many(keys[half:], weights[half:])
        assert np.array_equal(one._table, parts._table)
        assert one.estimate(7) == parts.estimate(7)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            CountMinSketch(width=1)
        with pytest.raises(ConfigError):
            CountMinSketch(depth=0)
        sketch = CountMinSketch()
        with pytest.raises(ConfigError):
            sketch.update_many(np.zeros(3, dtype=np.int64), np.zeros(2))


class TestSpaceSaving:
    def test_counts_conserve_total_weight(self):
        keys, weights, _ = zipf_stream()
        summary = SpaceSaving(capacity=32)
        summary.update_many(keys, weights)
        assert np.isclose(
            sum(count for _, count, _ in summary.topk()),
            summary.total_weight,
        )
        assert summary.min_count <= summary.total_weight / summary.capacity

    def test_entries_bracket_the_truth(self):
        keys, weights, truth = zipf_stream()
        summary = SpaceSaving(capacity=32)
        summary.update_many(keys, weights)
        for key, count, error in summary.topk():
            assert count + 1e-6 >= truth[key]
            assert count - error <= truth[key] + 1e-6

    def test_monitored_superset_of_heavy_keys(self):
        """Every key with true weight above min_count is monitored, so
        whenever the error bound permits a clean cut the summary's
        candidates are a superset of the true top-K."""
        keys, weights, truth = zipf_stream()
        summary = SpaceSaving(capacity=32)
        summary.update_many(keys, weights)
        threshold = summary.min_count
        heavy = set(np.nonzero(truth > threshold)[0].tolist())
        monitored = {key for key, _, _ in summary.topk()}
        assert heavy <= monitored

        # Corollary on the reported ranking: any true-top-k whose k-th
        # weight clears the bound must be fully contained.
        order = np.argsort(-truth)
        for k in (1, 3, 5):
            if truth[order[k - 1]] > threshold:
                assert set(order[:k].tolist()) <= monitored

    def test_topk_deterministic_ordering(self):
        summary = SpaceSaving(capacity=4)
        for key, weight in ((3, 5.0), (1, 5.0), (2, 9.0)):
            summary.update(key, weight)
        assert [key for key, _, _ in summary.topk()] == [2, 1, 3]

    def test_eviction_inherits_floor_as_error(self):
        summary = SpaceSaving(capacity=2)
        summary.update(1, 10.0)
        summary.update(2, 4.0)
        summary.update(3, 1.0)  # evicts key 2 (smallest count)
        entries = {key: (count, error) for key, count, error in summary.topk()}
        assert 2 not in entries
        assert entries[3] == (5.0, 4.0)  # floor + weight, floor as error

    def test_sketch_backing_absorbs_updates(self):
        keys, weights, truth = zipf_stream(num_updates=2_000)
        summary = SpaceSaving(capacity=8, sketch=CountMinSketch(width=512))
        summary.update_many(keys, weights)
        assert summary.sketch.total_weight == pytest.approx(
            summary.total_weight
        )
        # Evicted keys stay queryable through the sketch (over-estimate).
        monitored = {key for key, _, _ in summary.topk()}
        evicted = [k for k in np.nonzero(truth)[0] if k not in monitored]
        assert evicted, "test needs at least one evicted key"
        probe = int(evicted[0])
        assert summary.sketch.estimate(probe) >= truth[probe] - 1e-9

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            SpaceSaving(capacity=0)
        summary = SpaceSaving(capacity=2)
        with pytest.raises(ConfigError):
            summary.update(1, -1.0)
