"""The threaded pipeline: lossless differential parity, drops, failures."""

import time

import numpy as np
import pytest

from repro.live import (
    CountMinSketch,
    LivePipeline,
    RollingSkewTracker,
    SpaceSaving,
    TraceInjector,
    offline_window_stats,
)
from repro.util.errors import LiveError

from .conftest import DURATION


def make_pipeline(events, num_vds, window=6, **kwargs):
    injector = TraceInjector(events, rate=None, batch_events=1_024)
    tracker = RollingSkewTracker(num_vds, window, DURATION)
    topk = SpaceSaving(capacity=32, sketch=CountMinSketch(width=512))
    return LivePipeline(injector, tracker, topk=topk, **kwargs)


class TestLosslessReplay:
    def test_online_report_equals_offline_exactly(self, events, fleet):
        """The pinned differential: the full threaded pipeline, with
        backpressure in lossless (block) mode, reproduces the offline
        windowed stats exactly — thread scheduling must not leak in."""
        num_vds = len(fleet.vds)
        pipeline = make_pipeline(events, num_vds)
        report = pipeline.run()
        offline = offline_window_stats(events, num_vds, DURATION, 6)
        assert report.events == len(events)
        assert report.events_dropped == 0
        assert [w.to_dict() for w in report.windows] == [
            c.stats.to_dict() for c in offline
        ]

    def test_topk_superset_when_bound_permits(self, events, fleet):
        pipeline = make_pipeline(events, len(fleet.vds))
        report = pipeline.run()
        truth = np.zeros(int(events.segment_id.max()) + 1)
        np.add.at(truth, events.segment_id, events.size_bytes)
        # The ground truth here sums in stream order while the summary
        # folds per-batch pre-aggregated increments, so a key exactly at
        # the eviction boundary can differ by float rounding: compare
        # against the threshold with a relative epsilon.
        threshold = pipeline.topk.min_count * (1.0 + 1e-9)
        heavy = set(np.nonzero(truth > threshold)[0].tolist())
        monitored = {key for key, _, _ in pipeline.topk.topk()}
        assert heavy <= monitored
        # The reported ranking orders by (over)estimated count, which can
        # swap near-ties, but every true-top-k key clearing the bound must
        # at least be monitored.
        order = np.argsort(-truth)
        k = len(report.top_segments)
        if truth[order[k - 1]] > threshold:
            assert set(order[:k].tolist()) <= monitored
        assert all(
            entry["key"] in monitored for entry in report.top_segments
        )

    def test_report_accounting_is_consistent(self, events, fleet):
        report = make_pipeline(events, len(fleet.vds)).run()
        stats = report.ring_stats["live.events"]
        assert stats["dropped"] == 0
        assert report.batches == stats["accepted"]
        assert stats["max_depth"] <= stats["capacity"]
        assert report.events_per_sec > 0
        assert report.decision_latency_max_us >= 0
        assert sum(w.events for w in report.windows) == len(events)


class SlowTracker(RollingSkewTracker):
    """Consumes slower than the injector produces (forces backlog)."""

    def observe(self, batch):
        time.sleep(0.002)
        return super().observe(batch)


class TestBackpressure:
    def test_drop_mode_sheds_with_accounting(self, events, fleet):
        injector = TraceInjector(events, rate=None, batch_events=256)
        tracker = SlowTracker(len(fleet.vds), 6, DURATION)
        pipeline = LivePipeline(
            injector, tracker, ring_capacity=2, overflow="drop"
        )
        report = pipeline.run()
        # Every event is accounted for: delivered + dropped == injected,
        # and the queue never grew past its bound.
        assert report.events + report.events_dropped == len(events)
        assert report.events_dropped > 0, (
            "a capacity-2 ring against a slowed consumer must shed load"
        )
        stats = report.ring_stats["live.events"]
        assert stats["max_depth"] <= 2
        assert sum(w.events for w in report.windows) == report.events

    def test_block_mode_never_drops(self, events, fleet):
        injector = TraceInjector(events, rate=None, batch_events=256)
        tracker = SlowTracker(len(fleet.vds), 12, DURATION)
        pipeline = LivePipeline(
            injector, tracker, ring_capacity=2, overflow="block"
        )
        report = pipeline.run()
        assert report.events == len(events)
        assert report.events_dropped == 0


class ExplodingTracker(RollingSkewTracker):
    def observe(self, batch):
        raise RuntimeError("stats stage blew up")


class TestFailurePropagation:
    def test_stage_failure_raises_with_cause(self, events, fleet):
        injector = TraceInjector(events, rate=None, batch_events=1_024)
        tracker = ExplodingTracker(len(fleet.vds), 6, DURATION)
        pipeline = LivePipeline(injector, tracker, ring_capacity=2)
        with pytest.raises(LiveError, match="blew up") as info:
            pipeline.run()
        assert isinstance(
            info.value.__cause__, (RuntimeError, LiveError)
        )

    def test_failure_does_not_hang_the_injector(self, events, fleet):
        """The failing stage closes its rings; everyone unwinds fast."""
        injector = TraceInjector(events, rate=None, batch_events=256)
        tracker = ExplodingTracker(len(fleet.vds), 6, DURATION)
        pipeline = LivePipeline(
            injector, tracker, ring_capacity=1, overflow="block"
        )
        started = time.perf_counter()
        with pytest.raises(LiveError):
            pipeline.run()
        assert time.perf_counter() - started < 10.0


class TestPacing:
    def test_rate_multiplier_paces_the_replay(self, events, fleet):
        """At rate R the replay takes ~ trace_span / R wall seconds."""
        span = float(events.timestamp[-1] - events.timestamp[0])
        rate = span / 0.25  # target ~0.25s of wall clock
        injector = TraceInjector(events, rate=rate, batch_events=4_096)
        tracker = RollingSkewTracker(len(fleet.vds), 6, DURATION)
        pipeline = LivePipeline(injector, tracker)
        started = time.perf_counter()
        report = pipeline.run()
        elapsed = time.perf_counter() - started
        assert report.events == len(events)
        assert elapsed >= 0.15, f"paced replay finished in {elapsed:.3f}s"
