"""Event synthesis: deterministic, ordered, and mass-conserving."""

import numpy as np
import pytest

from repro.live import (
    OP_READ,
    OP_WRITE,
    EventBatch,
    concat_batches,
    synthesize_events,
)
from repro.util.errors import ConfigError

from .conftest import DURATION


class TestSynthesis:
    def test_sorted_and_in_range(self, events):
        ts = events.timestamp
        assert np.all(np.diff(ts) >= 0)
        assert ts[0] >= 0.0
        assert ts[-1] < DURATION

    def test_deterministic(self, fleet, traffic):
        again = synthesize_events(fleet, traffic, DURATION)
        assert np.array_equal(events_cols(again), events_cols(again))
        first = synthesize_events(fleet, traffic, DURATION)
        for a, b in zip(events_cols(first), events_cols(again)):
            assert np.array_equal(a, b)

    def test_mass_conservation_per_vd_and_direction(
        self, fleet, traffic, events
    ):
        """Event bytes == generated series bytes, split by direction."""
        for tr in traffic:
            mine = events.vd_id == tr.vd_id
            reads = mine & (events.op == OP_READ)
            writes = mine & (events.op == OP_WRITE)
            assert np.isclose(
                events.size_bytes[reads].sum(),
                tr.read_bytes[:DURATION].sum(),
            )
            assert np.isclose(
                events.size_bytes[writes].sum(),
                tr.write_bytes[:DURATION].sum(),
            )

    def test_segments_stay_inside_their_vd(self, fleet, events):
        for vd in fleet.vds:
            mine = events.segment_id[events.vd_id == vd.vd_id]
            if mine.size == 0:
                continue
            assert mine.min() >= vd.first_segment_id
            assert mine.max() < vd.first_segment_id + vd.num_segments

    def test_ops_are_valid(self, events):
        assert set(np.unique(events.op)) <= {OP_READ, OP_WRITE}

    def test_rejects_bad_args(self, fleet, traffic):
        with pytest.raises(ConfigError):
            synthesize_events(fleet, [], DURATION)
        with pytest.raises(ConfigError):
            synthesize_events(fleet, traffic, 0)
        with pytest.raises(ConfigError):
            synthesize_events(fleet, traffic, DURATION, max_ios_per_second=0)
        with pytest.raises(ConfigError):
            # Requesting more seconds than the series carry.
            synthesize_events(fleet, traffic, DURATION + 1)


class TestBatchOps:
    def test_iter_slices_covers_exactly_once(self, events):
        for batch_events in (1_000, 4_096, len(events), len(events) + 99):
            total = 0
            rebuilt = concat_batches(
                list(events.iter_slices(batch_events))
            )
            for col_a, col_b in zip(
                events_cols(events), events_cols(rebuilt)
            ):
                assert np.array_equal(col_a, col_b)
            for piece in events.iter_slices(batch_events):
                assert len(piece) <= batch_events
                total += len(piece)
            assert total == len(events)

    def test_slice_is_zero_copy(self, events):
        view = events.slice(10, 20)
        assert len(view) == 10
        assert view.timestamp.base is not None

    def test_shifted_displaces_timestamps_only(self, events):
        moved = events.shifted(100.0)
        assert np.array_equal(moved.timestamp, events.timestamp + 100.0)
        assert moved.vd_id is events.vd_id

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ConfigError):
            EventBatch(
                timestamp=np.zeros(3),
                vd_id=np.zeros(2, dtype=np.int64),
                op=np.zeros(3, dtype=np.int8),
                size_bytes=np.zeros(3),
                segment_id=np.zeros(3, dtype=np.int64),
            )

    def test_rejects_bad_batch_events(self, events):
        with pytest.raises(ConfigError):
            list(events.iter_slices(0))


def events_cols(batch):
    return (
        batch.timestamp,
        batch.vd_id,
        batch.op,
        batch.size_bytes,
        batch.segment_id,
    )
