"""The ring buffer's backpressure contract: bounded, lossless or counted."""

import threading

import pytest

from repro.live import RingBuffer
from repro.util.errors import ConfigError, LiveError


class TestBasics:
    def test_fifo_order(self):
        ring = RingBuffer(4)
        for item in "abcd":
            assert ring.put(item)
        ring.close()
        assert [ring.get() for _ in range(4)] == list("abcd")
        assert ring.get() is None  # closed and drained

    def test_depth_and_max_depth(self):
        ring = RingBuffer(8)
        for i in range(5):
            ring.put(i)
        assert ring.depth == 5
        ring.get()
        assert ring.depth == 4
        assert ring.stats()["max_depth"] == 5

    def test_put_after_close_raises(self):
        ring = RingBuffer(2)
        ring.close()
        with pytest.raises(LiveError):
            ring.put("late")

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RingBuffer(0)
        with pytest.raises(ConfigError):
            RingBuffer(4, policy="spill")


class TestDropPolicy:
    def test_drop_newest_with_accounting(self):
        ring = RingBuffer(2, policy="drop")
        assert ring.put(1)
        assert ring.put(2)
        assert not ring.put(3)  # full: rejected, not enqueued
        assert not ring.put(4)
        stats = ring.stats()
        assert stats["accepted"] == 2
        assert stats["dropped"] == 2
        ring.close()
        assert [ring.get(), ring.get(), ring.get()] == [1, 2, None]


class TestBlockPolicy:
    def test_blocked_producer_timeout_is_an_error(self):
        ring = RingBuffer(1, policy="block")
        ring.put("occupying")
        with pytest.raises(LiveError, match="blocked"):
            ring.put("stuck", timeout=0.05)

    def test_consumer_timeout_is_an_error(self):
        ring = RingBuffer(1)
        with pytest.raises(LiveError, match="waited"):
            ring.get(timeout=0.05)

    def test_threaded_transfer_is_lossless_and_ordered(self):
        """A slow consumer never loses items in block mode."""
        ring = RingBuffer(4, policy="block")
        n = 500
        received = []

        def consume():
            while True:
                item = ring.get(timeout=5.0)
                if item is None:
                    return
                received.append(item)

        consumer = threading.Thread(target=consume)
        consumer.start()
        for i in range(n):
            assert ring.put(i, timeout=5.0)
        ring.close()
        consumer.join(timeout=5.0)
        assert received == list(range(n))
        stats = ring.stats()
        assert stats["accepted"] == n
        assert stats["dropped"] == 0
        assert stats["max_depth"] <= ring.capacity

    def test_close_releases_blocked_producer(self):
        ring = RingBuffer(1)
        ring.put("full")
        errors = []

        def blocked_put():
            try:
                ring.put("never", timeout=5.0)
            except LiveError as error:
                errors.append(error)

        producer = threading.Thread(target=blocked_put)
        producer.start()
        ring.close()
        producer.join(timeout=5.0)
        assert len(errors) == 1
        assert "closed" in str(errors[0])
