"""The online policy engine: lend and rebind decision arithmetic."""

import numpy as np
import pytest

from repro.live import OnlinePolicyEngine
from repro.live.windowing import ClosedWindow, WindowStats
from repro.util.errors import ConfigError
from repro.util.timewindow import TimeWindow


def closed(per_vd, start=0, end=10):
    per_vd = np.asarray(per_vd, dtype=float)
    window = TimeWindow(start, end)
    stats = WindowStats(
        window=window,
        events=int(per_vd.size),
        total_bytes=float(per_vd.sum()),
        read_bytes=0.0,
        write_bytes=float(per_vd.sum()),
        ccr_hot=0.0,
        p2a=1.0,
        cov=0.0,
        wr_ratio=1.0,
    )
    return ClosedWindow(stats=stats, per_vd=per_vd)


def engine(caps, binding, num_nodes=2, **kwargs):
    return OnlinePolicyEngine(
        caps_bps=np.asarray(caps, dtype=float),
        vd_to_node=np.asarray(binding, dtype=np.int64),
        num_nodes=num_nodes,
        **kwargs,
    )


class TestLending:
    def test_no_decision_under_caps(self):
        eng = engine([100.0, 100.0], [0, 1])
        # 10s window, 500 bytes => 50 B/s mean usage, well under cap.
        assert eng.on_window(closed([500.0, 500.0])) == []
        assert eng.throttled_vd_windows == 0

    def test_lend_step_mirrors_algorithm2(self):
        """One throttled VD borrows p x the others' headroom."""
        caps = [100.0, 100.0, 100.0]
        eng = engine(caps, [0, 0, 1], num_nodes=2, lending_rate=0.8)
        # Mean usages over the 10s window: 150 (over), 50, 50.
        decisions = eng.on_window(closed([1500.0, 500.0, 500.0]))
        lends = [d for d in decisions if d.kind == "lend"]
        assert len(lends) == 1
        details = lends[0].details
        assert details["borrowers"] == 1
        assert details["lenders"] == 2
        # AR = sum(caps) - sum(min(usage, caps)) = 300 - 200 = 100;
        # lendable = 0.8 * 100, all of it to the single borrower.
        assert details["lent_bps"] == pytest.approx(80.0)
        # Each lender gives back p x its own headroom: 2 x 0.8 x 50.
        assert details["reclaimed_bps"] == pytest.approx(80.0)
        assert eng.throttled_vd_windows == 1

    def test_boost_split_proportional_to_overshoot(self):
        caps = [100.0, 100.0, 100.0, 100.0]
        eng = engine(caps, [0, 0, 1, 1], lending_rate=0.5)
        # Overshoots 30 and 10 split the pool 3:1.
        decisions = eng.on_window(
            closed([1300.0, 1100.0, 200.0, 200.0])
        )
        details = [d for d in decisions if d.kind == "lend"][0].details
        assert details["borrowers"] == 2
        # AR = 400 - (100+100+20+20) = 160; lendable = 80.
        assert details["lent_bps"] == pytest.approx(80.0)

    def test_saturated_pool_lends_nothing(self):
        eng = engine([100.0, 100.0], [0, 1])
        # Both over cap: no headroom anywhere, no lend decision.
        assert eng.on_window(closed([2000.0, 2000.0])) == []
        assert eng.throttled_vd_windows == 2


class TestRebinding:
    def test_hot_node_sheds_its_hottest_vd(self):
        eng = engine(
            [1e9] * 4, [0, 0, 1, 1], num_nodes=2, trigger_ratio=1.2
        )
        decisions = eng.on_window(closed([900.0, 300.0, 100.0, 100.0]))
        rebinds = [d for d in decisions if d.kind == "rebind"]
        assert len(rebinds) == 1
        details = rebinds[0].details
        assert details["vd_id"] == 0  # the hottest VD of the hot node
        assert details["from_node"] == 0
        assert details["to_node"] == 1
        assert eng.binding.tolist() == [1, 0, 1, 1]

    def test_binding_carries_forward(self):
        eng = engine(
            [1e9] * 4, [0, 0, 1, 1], num_nodes=2, trigger_ratio=1.2
        )
        eng.on_window(closed([900.0, 300.0, 100.0, 100.0]))
        # After the move loads are 300 vs 1100: the imbalance flipped,
        # so the next window rebinds in the other direction.
        decisions = eng.on_window(closed([900.0, 300.0, 100.0, 100.0]))
        rebinds = [d for d in decisions if d.kind == "rebind"]
        assert len(rebinds) == 1
        assert rebinds[0].details["from_node"] == 1

    def test_balanced_nodes_do_not_rebind(self):
        eng = engine([1e9] * 4, [0, 0, 1, 1], num_nodes=2)
        assert eng.on_window(closed([500.0, 100.0, 500.0, 100.0])) == []

    def test_single_vd_hot_node_stays(self):
        eng = engine([1e9] * 2, [0, 1], num_nodes=2)
        assert eng.on_window(closed([1000.0, 10.0])) == []

    def test_idle_window_is_a_no_op(self):
        eng = engine([1e9] * 2, [0, 1], num_nodes=2)
        assert eng.on_window(closed([0.0, 0.0])) == []


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            engine([], [])
        with pytest.raises(ConfigError):
            engine([100.0, -1.0], [0, 1])
        with pytest.raises(ConfigError):
            engine([100.0], [5], num_nodes=2)
        with pytest.raises(ConfigError):
            engine([100.0, 100.0], [0, 1], lending_rate=1.5)
        with pytest.raises(ConfigError):
            engine([100.0, 100.0], [0, 1], trigger_ratio=0.9)

    def test_rejects_mismatched_load_vector(self):
        eng = engine([100.0, 100.0], [0, 1])
        with pytest.raises(ConfigError, match="shape"):
            eng.on_window(closed([1.0, 2.0, 3.0]))
