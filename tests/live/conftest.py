"""Shared fixtures for the live-ingestion tests.

One small fleet and one deterministic synthesized event stream are
built per session; the differential tests slice and replay that same
stream many ways, so sharing the input is what makes "exact equality"
assertions meaningful.
"""

from __future__ import annotations

import pytest

from repro.live import synthesize_events
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet
from repro.workload.generator import WorkloadGenerator

#: Trace length of the shared stream, in seconds.
DURATION = 24
SEED = 13

FLEET_CONFIG = FleetConfig(
    dc_id=0,
    num_users=4,
    num_vms=10,
    num_compute_nodes=4,
    num_storage_nodes=3,
)


@pytest.fixture(scope="session")
def fleet():
    return build_fleet(FLEET_CONFIG, RngFactory(SEED))


@pytest.fixture(scope="session")
def traffic(fleet):
    return WorkloadGenerator(fleet, DURATION, RngFactory(SEED)).generate_all()


@pytest.fixture(scope="session")
def events(fleet, traffic):
    return synthesize_events(fleet, traffic, DURATION)
