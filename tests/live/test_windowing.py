"""The correctness anchor: online windowed stats == offline, EXACTLY.

Floating-point addition is order-sensitive, so "exactly" is a real
claim: the tracker preserves global event order across any batch
slicing and uses the same ``np.add.at`` accumulation and the same
:mod:`repro.stats` calls as the offline reference — equality is
bitwise, not approximate.  No tolerances in this file.
"""

import numpy as np
import pytest

from repro.live import RollingSkewTracker, offline_window_stats
from repro.util.errors import ConfigError

from .conftest import DURATION

#: Batch slicings exercised against the same stream: pathological small,
#: typical, prime-sized (never aligns with window edges), single-shot.
SLICINGS = (37, 1_000, 4_096, 10**9)


def online_windows(events, num_vds, total, window, batch_events, **kwargs):
    tracker = RollingSkewTracker(num_vds, window, total, **kwargs)
    closed = []
    for batch in events.iter_slices(batch_events):
        closed.extend(tracker.observe(batch))
    closed.extend(tracker.finish())
    return closed


class TestDifferential:
    @pytest.mark.parametrize("batch_events", SLICINGS)
    @pytest.mark.parametrize("window_seconds", [1, 5, 7, DURATION])
    def test_online_equals_offline_exactly(
        self, events, fleet, batch_events, window_seconds
    ):
        num_vds = len(fleet.vds)
        offline = offline_window_stats(
            events, num_vds, DURATION, window_seconds
        )
        online = online_windows(
            events, num_vds, DURATION, window_seconds, batch_events
        )
        assert len(online) == len(offline)
        for got, want in zip(online, offline):
            # Bitwise-identical accumulators ...
            assert np.array_equal(got.per_vd, want.per_vd)
            # ... and *equal* (not approximately equal) statistics.
            assert got.stats == want.stats
            assert got.stats.to_dict() == want.stats.to_dict()

    @pytest.mark.parametrize("drop_partial", [False, True])
    def test_partial_tail_window_parity(self, events, fleet, drop_partial):
        """DURATION=24 over 7s windows leaves a 3s tail either to keep
        (truncated) or to drop — both modes must agree with offline."""
        num_vds = len(fleet.vds)
        offline = offline_window_stats(
            events, num_vds, DURATION, 7, drop_partial=drop_partial
        )
        online = online_windows(
            events, num_vds, DURATION, 7, 999, drop_partial=drop_partial
        )
        assert [c.stats for c in online] == [c.stats for c in offline]
        assert len(online) == (3 if drop_partial else 4)

    def test_zero_traffic_windows_close_on_finish(self, events, fleet):
        """A horizon longer than the stream yields trailing all-zero
        windows (the service keeps serving when traffic stops)."""
        num_vds = len(fleet.vds)
        online = online_windows(events, num_vds, DURATION + 10, 5, 2_048)
        offline = offline_window_stats(events, num_vds, DURATION + 10, 5)
        assert [c.stats for c in online] == [c.stats for c in offline]
        tail = online[-1].stats
        assert tail.events == 0
        assert tail.total_bytes == 0.0
        assert tail.p2a == 0.0


class TestTrackerContract:
    def test_progress_counters(self, events, fleet):
        tracker = RollingSkewTracker(len(fleet.vds), 6, DURATION)
        assert tracker.windows_total == 4
        for batch in events.iter_slices(5_000):
            tracker.observe(batch)
        tracker.finish()
        assert tracker.windows_closed == tracker.windows_total

    def test_rejects_backwards_streams(self, events, fleet):
        tracker = RollingSkewTracker(len(fleet.vds), 6, DURATION)
        tracker.observe(events.slice(1_000, 2_000))
        with pytest.raises(ConfigError, match="backwards"):
            tracker.observe(events.slice(0, 500))

    def test_events_past_the_horizon_are_out_of_scope(self, events, fleet):
        tracker = RollingSkewTracker(len(fleet.vds), 5, 10)
        closed = []
        for batch in events.iter_slices(3_000):
            closed.extend(tracker.observe(batch))
        closed.extend(tracker.finish())
        assert tracker.windows_closed == 2
        horizon_events = sum(c.stats.events for c in closed)
        in_range = int(np.sum(events.timestamp < 10))
        assert horizon_events == in_range

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RollingSkewTracker(0, 5, 10)
        with pytest.raises(ConfigError):
            RollingSkewTracker(4, 0, 10)
        with pytest.raises(ConfigError):
            RollingSkewTracker(4, 5, 0)
        with pytest.raises(ConfigError):
            offline_window_stats(None, 0, 10, 5)
