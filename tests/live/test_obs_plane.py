"""The live observability plane: serve + recorder + SLO wired end to end."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import _parse_serve, main
from repro.live import LiveConfig, run_live
from repro.obs import (
    FlightRecorder,
    SloTracker,
    Telemetry,
    telemetry_session,
    validate_telemetry,
)
from repro.obs.promtext import parse_promtext, validate_promtext
from repro.util.errors import ReproError

PACED = LiveConfig(
    scale="small",
    seed=11,
    duration_seconds=8,
    rate=4.0,
    window_seconds=2,
    serve=("127.0.0.1", 0),
    recorder_interval=0.1,
    slos=(
        "live.decision_latency_us:p99<60000000",
        "live.events_dropped/live.events_total<0.9",
    ),
    slo_budget=0.2,
)


def get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def run_paced_and_scrape(scrape):
    """Run PACED in a thread; call ``scrape(url)`` while it ingests."""
    bound = {}
    ready = threading.Event()

    def on_server(server):
        bound["url"] = server.url
        ready.set()

    out = {}

    def runner():
        with telemetry_session() as telemetry:
            out["report"] = run_live(PACED, on_server=on_server)
            out["payload"] = telemetry.snapshot()

    thread = threading.Thread(target=runner)
    thread.start()
    try:
        assert ready.wait(timeout=30), "server never came up"
        scrape(bound["url"])
    finally:
        thread.join(timeout=120)
    assert not thread.is_alive(), "live run did not finish"
    return out["report"], out["payload"]


class TestServeMidRun:
    def test_scrapes_answer_and_counters_are_monotone(self):
        scrapes = []

        def scrape(url):
            deadline = time.monotonic() + 20
            while len(scrapes) < 4 and time.monotonic() < deadline:
                try:
                    status, body = get(url + "/metrics")
                    assert status == 200
                    text = body.decode()
                    assert validate_promtext(text) == []
                    scrapes.append(
                        {
                            (s.name, s.labels): s.value
                            for s in parse_promtext(text)
                            if s.name.endswith("_total")
                        }
                    )
                    status, body = get(url + "/healthz")
                    health = json.loads(body)
                    if health["running"]:
                        assert status == 200
                        assert health["healthy"] is True
                    status, body = get(url + "/recorder")
                    assert status == 200
                except (urllib.error.URLError, ConnectionError, OSError):
                    break  # replay finished and the server shut down
                time.sleep(0.3)

        report, payload = run_paced_and_scrape(scrape)
        assert report.events > 0
        assert len(scrapes) >= 2
        for before, after in zip(scrapes, scrapes[1:]):
            for key, value in before.items():
                assert after.get(key, 0) >= value, key

    def test_recorder_totals_equal_final_counters_exactly(self):
        def scrape(url):
            time.sleep(0.5)

        report, payload = run_paced_and_scrape(scrape)
        assert validate_telemetry(payload) == []
        recorder = payload["recorder"]
        assert recorder["samples_taken"] >= 1
        final = {}
        for entry in payload["metrics"]["counters"]:
            labels = entry["labels"]
            key = entry["name"]
            if labels:
                inner = ",".join(
                    f"{k}={labels[k]}" for k in sorted(labels)
                )
                key = f"{key}{{{inner}}}"
            final[key] = float(entry["value"])
        # Bit-for-bit: the recorder's last cut happened after every
        # stage joined, reading the same registry.
        assert recorder["totals"] == final
        assert final["live.events_total"] == float(report.events)
        # SLO section rode along and scored real intervals.
        objectives = {o["slo"]: o for o in payload["slo"]["objectives"]}
        assert set(objectives) == set(PACED.slos)
        assert all(o["violations"] == 0 for o in objectives.values())

    def test_probe_timeline_tracks_ring_depths(self):
        report, payload = run_paced_and_scrape(lambda url: time.sleep(0.2))
        intervals = payload["recorder"]["intervals"]
        probe_keys = set()
        for record in intervals:
            probe_keys.update(record["probes"])
        assert "queue_depth{ring=live.events}" in probe_keys
        assert "queue_depth{ring=live.windows}" in probe_keys


class TestPlaneOffByDefault:
    def test_disabled_telemetry_attaches_nothing(self):
        config = LiveConfig(
            scale="small", seed=11, duration_seconds=4, window_seconds=2
        )
        report = run_live(config)
        assert report.events > 0
        # the disabled singleton gained no sections
        from repro.obs import get_telemetry

        assert "recorder" not in get_telemetry().snapshot()


class TestCli:
    def test_parse_serve_forms(self):
        assert _parse_serve("127.0.0.1:9377") == ("127.0.0.1", 9377)
        assert _parse_serve(":8080") == ("127.0.0.1", 8080)
        assert _parse_serve("8080") == ("127.0.0.1", 8080)
        with pytest.raises(ReproError):
            _parse_serve("host:port")
        with pytest.raises(ReproError):
            _parse_serve("127.0.0.1:99999")

    def test_live_serve_with_slos_end_to_end(self, tmp_path, capsys):
        telemetry_path = tmp_path / "telemetry.json"
        code = main(
            [
                "live",
                "--duration", "6",
                "--window", "3",
                "--rate", "max",
                "--seed", "11",
                "--serve", "127.0.0.1:0",
                "--recorder-interval", "0.1",
                "--slo", "live.decision_latency_us:p99<60000000",
                "--slo", "live.events_dropped/live.events_total<0.9",
                "--telemetry", str(telemetry_path),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "SLO objectives" in stdout
        payload = json.loads(telemetry_path.read_text())
        assert validate_telemetry(payload) == []
        assert payload["recorder"]["samples_taken"] >= 1
        assert len(payload["slo"]["objectives"]) == 2
        assert main(["obs", "validate", str(telemetry_path)]) == 0

    def test_serve_without_telemetry_writes_no_artifact(self, tmp_path):
        # --serve auto-enables an in-memory handle; nothing lands on disk
        # and the global handle is restored to the disabled default.
        from repro.obs import get_telemetry

        code = main(
            ["live", "--duration", "4", "--window", "2", "--seed", "11",
             "--serve", "127.0.0.1:0"]
        )
        assert code == 0
        assert get_telemetry().enabled is False
        assert list(tmp_path.iterdir()) == []

    def test_report_renders_percentiles_and_recorder(
        self, tmp_path, capsys
    ):
        telemetry_path = tmp_path / "telemetry.json"
        assert main(
            ["live", "--duration", "4", "--window", "2", "--seed", "11",
             "--recorder-interval", "0.1",
             "--slo", "live.events_dropped/live.events_total<0.9",
             "--serve", "127.0.0.1:0", "--telemetry", str(telemetry_path)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(telemetry_path)]) == 0
        out = capsys.readouterr().out
        assert "p50_ms" in out and "p95_ms" in out and "p99_ms" in out
        assert "flight recorder:" in out
        assert "SLO objectives" in out

    def test_bad_serve_exits_nonzero(self, capsys):
        assert main(["live", "--serve", "nope:nope"]) == 1
        assert "--serve" in capsys.readouterr().err


class TestTopCli:
    @pytest.fixture()
    def plane(self):
        telemetry = Telemetry(enabled=True)
        telemetry.counter("live.events_total").inc(100)
        telemetry.histogram("live.decision_latency_us").observe(30, 4)
        slo = SloTracker(["live.events_dropped/live.events_total<0.5"])
        recorder = FlightRecorder(
            telemetry, interval_seconds=0.05, capacity=16, slo=slo
        )
        recorder.sample()
        server = telemetry.serve(
            port=0, recorder=recorder, slo=slo,
            health=lambda: {"healthy": True, "running": True, "stages": {}},
        )
        yield server
        server.stop()

    def test_top_renders_frames(self, plane, capsys):
        host, port = plane.address
        code = main(
            ["top", "--connect", f"{host}:{port}",
             "--interval", "0.05", "--iterations", "2", "--no-clear"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frame 2" in out
        assert "health: HEALTHY" in out
        assert "recorder: 1 sample(s)" in out
        assert "repro_live_events_total_total" in out
        assert "slo:" in out

    def test_top_cannot_connect_exits_nonzero(self, capsys):
        code = main(
            ["top", "--connect", "127.0.0.1:1", "--iterations", "1"]
        )
        assert code == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_top_bad_interval(self, capsys):
        assert main(
            ["top", "--connect", "127.0.0.1:1", "--interval", "0"]
        ) == 1
        assert "--interval" in capsys.readouterr().err
