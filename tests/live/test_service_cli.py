"""The service facade (run_live) and the ``ebs-repro live`` subcommand."""

import json

import pytest

from repro.cli import _parse_rate, build_parser, main
from repro.live import (
    LIVE_SCHEMA_VERSION,
    LiveConfig,
    build_pipeline,
    offline_window_stats,
    report_to_dict,
    run_live,
)
from repro.util.errors import ConfigError, ReproError

CONFIG = LiveConfig(scale="small", seed=11, duration_seconds=6, window_seconds=3)


class TestRunLive:
    def test_report_matches_offline_reference_exactly(self):
        report = run_live(CONFIG)
        pipeline = build_pipeline(CONFIG)
        events = pipeline.injector.events
        offline = offline_window_stats(
            events,
            pipeline.tracker.num_vds,
            pipeline.tracker.total_seconds,
            CONFIG.window_seconds,
        )
        assert report.events == len(events)
        assert [w.to_dict() for w in report.windows] == [
            c.stats.to_dict() for c in offline
        ]

    def test_same_config_replays_identically(self):
        first = run_live(CONFIG)
        second = run_live(CONFIG)
        assert first.events == second.events
        assert [w.to_dict() for w in first.windows] == [
            w.to_dict() for w in second.windows
        ]
        assert [d.to_dict() for d in first.decisions] == [
            d.to_dict() for d in second.decisions
        ]
        assert first.top_segments == second.top_segments

    def test_report_to_dict_schema(self):
        report = run_live(CONFIG)
        payload = report_to_dict(CONFIG, report)
        assert payload["schema_version"] == LIVE_SCHEMA_VERSION
        assert payload["config"]["duration_seconds"] == 6
        assert payload["config"]["rate"] is None
        body = payload["report"]
        assert body["events"] == report.events
        # duration 6 + the 1s loop guard => windows [0,3) [3,6) [6,7).
        assert len(body["windows"]) == 3
        assert json.loads(json.dumps(payload)) == payload

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            LiveConfig(duration_seconds=0)
        with pytest.raises(ConfigError):
            LiveConfig(window_seconds=0)


class TestParseRate:
    @pytest.mark.parametrize(
        ("text", "want"),
        [
            ("max", None),
            ("MAX", None),
            ("none", None),
            ("100x", 100.0),
            ("2.5x", 2.5),
            ("42", 42.0),
        ],
    )
    def test_accepted_forms(self, text, want):
        assert _parse_rate(text) == want

    @pytest.mark.parametrize("text", ["fastx", "", "0", "-3x", "x"])
    def test_rejected_forms(self, text):
        with pytest.raises(ReproError):
            _parse_rate(text)


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["live"])
        assert args.command == "live"
        assert args.duration == 60
        assert args.rate == "max"
        assert args.window_seconds == 10
        assert args.overflow == "block"

    def test_live_end_to_end_with_artifacts(self, tmp_path, capsys):
        out = tmp_path / "live.json"
        telemetry = tmp_path / "telemetry.json"
        code = main(
            [
                "live",
                "--duration", "6",
                "--window", "3",
                "--rate", "max",
                "--seed", "11",
                "-o", str(out),
                "--telemetry", str(telemetry),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "rolling windowed skew (online)" in stdout
        assert "hot segments (Space-Saving top-K)" in stdout

        payload = json.loads(out.read_text())
        assert payload["schema_version"] == LIVE_SCHEMA_VERSION
        assert payload["report"]["events"] > 0
        assert payload["report"]["events_dropped"] == 0

        # The telemetry artifact carries live.* metrics and validates.
        recorded = json.loads(telemetry.read_text())
        counters = {
            c["name"]: c["value"]
            for c in recorded["metrics"]["counters"]
        }
        assert counters["live.events_total"] == payload["report"]["events"]
        assert "live.windows_closed" in counters
        assert any(
            span["name"] == "live.run" for span in recorded["spans"]
        )
        assert main(["obs", "validate", str(telemetry)]) == 0

    def test_paced_replay_from_the_cli(self, tmp_path):
        out = tmp_path / "live.json"
        code = main(
            ["live", "--duration", "4", "--window", "2",
             "--rate", "1000x", "-o", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["config"]["rate"] == 1000.0

    def test_bad_rate_exits_nonzero(self, capsys):
        assert main(["live", "--rate", "warp"]) == 1
        assert "--rate" in capsys.readouterr().err

    def test_unwritable_report_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "missing" / "live.json"
        code = main(
            ["live", "--duration", "2", "--window", "2", "-o", str(target)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "NOT written" in err
        assert str(target) in err
