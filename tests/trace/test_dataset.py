"""Tests for the columnar trace/metric dataset containers."""

import numpy as np
import pytest

from repro.trace import (
    ComputeMetricTable,
    MetricDataset,
    SpecDataset,
    StorageMetricTable,
    TraceDataset,
)
from repro.trace.records import (
    ComputeMetricRecord,
    OpKind,
    VdSpec,
    VmSpec,
)
from repro.util.errors import DatasetError


def compute_table(rows=4) -> ComputeMetricTable:
    return ComputeMetricTable(
        timestamp=list(range(rows)),
        cluster_id=[0] * rows,
        compute_node_id=[0, 0, 1, 1][:rows],
        user_id=[0] * rows,
        vm_id=[0, 0, 1, 1][:rows],
        vd_id=[0, 0, 1, 1][:rows],
        wt_id=[0, 1, 4, 5][:rows],
        qp_id=[0, 1, 2, 3][:rows],
        read_bytes=[10.0, 20.0, 30.0, 40.0][:rows],
        write_bytes=[1.0, 2.0, 3.0, 4.0][:rows],
        read_iops=[1.0, 2.0, 3.0, 4.0][:rows],
        write_iops=[0.1, 0.2, 0.3, 0.4][:rows],
    )


def trace_dataset() -> TraceDataset:
    n = 6
    return TraceDataset(
        sampling_rate=0.5,
        trace_id=list(range(n)),
        op=[0, 1, 0, 1, 1, 1],
        size_bytes=[4096] * n,
        offset_bytes=[0, 4096, 8192, 0, 4096, 0],
        user_id=[0] * n,
        vm_id=[0] * n,
        vd_id=[0, 0, 0, 1, 1, 1],
        qp_id=[0] * n,
        wt_id=[0] * n,
        compute_node_id=[0] * n,
        segment_id=[0] * n,
        block_server_id=[0] * n,
        storage_node_id=[0] * n,
        timestamp=[0.1, 0.2, 1.5, 2.0, 2.5, 3.0],
        lat_compute_us=[1.0] * n,
        lat_frontend_us=[2.0] * n,
        lat_block_server_us=[3.0] * n,
        lat_backend_us=[4.0] * n,
        lat_chunk_server_us=[5.0] * n,
    )


class TestColumnarBasics:
    def test_length(self):
        assert len(compute_table()) == 4

    def test_rejects_missing_column(self):
        with pytest.raises(DatasetError):
            ComputeMetricTable(timestamp=[0])

    def test_rejects_ragged_columns(self):
        table = compute_table()
        columns = table.columns()
        columns["read_bytes"] = columns["read_bytes"][:-1]
        with pytest.raises(DatasetError):
            ComputeMetricTable(**columns)

    def test_where(self):
        table = compute_table()
        hot = table.where(table.read_bytes > 25.0)
        assert len(hot) == 2
        assert hot.read_bytes.tolist() == [30.0, 40.0]

    def test_where_rejects_bad_mask(self):
        with pytest.raises(DatasetError):
            compute_table().where(np.array([True]))

    def test_concat(self):
        table = compute_table()
        both = table.concat(table)
        assert len(both) == 8

    def test_record_roundtrip(self):
        table = compute_table()
        record = table.record(2)
        assert isinstance(record, ComputeMetricRecord)
        rebuilt = ComputeMetricTable.from_records(table.records())
        assert rebuilt.read_bytes.tolist() == table.read_bytes.tolist()


class TestAggregation:
    def test_sum_by(self):
        table = compute_table()
        by_vm = table.sum_by("vm_id", "read_bytes")
        assert by_vm == {0: 30.0, 1: 70.0}

    def test_timeseries_by(self):
        table = compute_table()
        series = table.timeseries_by("vm_id", "read_bytes", total_seconds=5)
        assert series[0].tolist() == [10.0, 20.0, 0.0, 0.0, 0.0]
        assert series[1].tolist() == [0.0, 0.0, 30.0, 40.0, 0.0]

    def test_timeseries_rejects_out_of_range(self):
        table = compute_table()
        with pytest.raises(DatasetError):
            table.timeseries_by("vm_id", "read_bytes", total_seconds=2)


class TestTraceDataset:
    def test_latency_sum(self):
        traces = trace_dataset()
        assert traces.latency_us.tolist() == [15.0] * 6

    def test_read_write_split(self):
        traces = trace_dataset()
        assert len(traces.reads()) == 2
        assert len(traces.writes()) == 4

    def test_for_vd(self):
        traces = trace_dataset()
        assert len(traces.for_vd(1)) == 3

    def test_estimated_total(self):
        traces = trace_dataset()
        assert traces.estimated_total_ios() == pytest.approx(12.0)

    def test_sampling_rate_validated(self):
        with pytest.raises(DatasetError):
            TraceDataset(sampling_rate=0.0, **trace_dataset().columns())

    def test_concat_keeps_rate(self):
        traces = trace_dataset()
        both = traces.concat(traces)
        assert both.sampling_rate == 0.5
        assert len(both) == 12

    def test_record_has_op_enum(self):
        record = trace_dataset().record(1)
        assert record.op is OpKind.WRITE


class TestSpecDataset:
    def make(self) -> SpecDataset:
        vd = VdSpec(
            vd_id=0,
            vm_id=0,
            user_id=0,
            capacity_bytes=1 << 30,
            num_queue_pairs=2,
            throughput_cap_bps=1e8,
            iops_cap=1e4,
        )
        vm = VmSpec(vm_id=0, user_id=0, compute_node_id=3, application="Database")
        return SpecDataset(vd_specs=[vd], vm_specs=[vm])

    def test_lookup(self):
        spec = self.make()
        assert spec.vd(0).num_queue_pairs == 2
        assert spec.application_of_vm(0) == "Database"

    def test_unknown_raises(self):
        with pytest.raises(DatasetError):
            self.make().vd(99)

    def test_duplicate_rejected(self):
        vd = self.make().vd_specs[0]
        with pytest.raises(DatasetError):
            SpecDataset(vd_specs=[vd, vd], vm_specs=[])


class TestMetricDataset:
    def test_totals(self):
        storage = StorageMetricTable(
            timestamp=[0],
            cluster_id=[0],
            storage_node_id=[0],
            block_server_id=[0],
            user_id=[0],
            vm_id=[0],
            vd_id=[0],
            segment_id=[0],
            read_bytes=[5.0],
            write_bytes=[7.0],
            read_iops=[1.0],
            write_iops=[1.0],
        )
        dataset = MetricDataset(
            compute=compute_table(), storage=storage, duration_seconds=4
        )
        assert dataset.total_read_bytes() == pytest.approx(100.0)
        assert dataset.total_write_bytes() == pytest.approx(10.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(DatasetError):
            MetricDataset(
                compute=compute_table(),
                storage=StorageMetricTable(
                    **{
                        name: []
                        for name in (
                            *StorageMetricTable.INT_FIELDS,
                            *StorageMetricTable.FLOAT_FIELDS,
                        )
                    }
                ),
                duration_seconds=0,
            )
