"""Tests for the row-level record types."""

import pytest

from repro.trace import OpKind, TraceRecord, VdSpec
from repro.util.errors import DatasetError


def make_trace(**overrides) -> TraceRecord:
    defaults = dict(
        trace_id=1,
        timestamp=12.5,
        op=OpKind.WRITE,
        size_bytes=4096,
        offset_bytes=8192,
        user_id=0,
        vm_id=1,
        vd_id=2,
        qp_id=3,
        wt_id=4,
        compute_node_id=5,
        segment_id=6,
        block_server_id=7,
        storage_node_id=8,
        lat_compute_us=10.0,
        lat_frontend_us=20.0,
        lat_block_server_us=30.0,
        lat_backend_us=40.0,
        lat_chunk_server_us=50.0,
    )
    defaults.update(overrides)
    return TraceRecord(**defaults)


class TestTraceRecord:
    def test_latency_is_sum_of_components(self):
        assert make_trace().latency_us == pytest.approx(150.0)

    def test_rejects_zero_size(self):
        with pytest.raises(DatasetError):
            make_trace(size_bytes=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(DatasetError):
            make_trace(offset_bytes=-1)

    def test_op_enum(self):
        assert make_trace(op=OpKind.READ).op == OpKind.READ
        assert int(OpKind.READ) == 0
        assert int(OpKind.WRITE) == 1


class TestVdSpec:
    def test_valid(self):
        spec = VdSpec(
            vd_id=0,
            vm_id=0,
            user_id=0,
            capacity_bytes=1 << 30,
            num_queue_pairs=4,
            throughput_cap_bps=1e8,
            iops_cap=1000,
        )
        assert spec.num_queue_pairs == 4

    def test_rejects_too_many_qps(self):
        with pytest.raises(DatasetError):
            VdSpec(
                vd_id=0,
                vm_id=0,
                user_id=0,
                capacity_bytes=1 << 30,
                num_queue_pairs=9,
                throughput_cap_bps=1e8,
                iops_cap=1000,
            )

    def test_rejects_nonpositive_caps(self):
        with pytest.raises(DatasetError):
            VdSpec(
                vd_id=0,
                vm_id=0,
                user_id=0,
                capacity_bytes=1 << 30,
                num_queue_pairs=1,
                throughput_cap_bps=0,
                iops_cap=1000,
            )
