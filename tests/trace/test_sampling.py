"""Tests for the DiTing-style trace sampler."""

import numpy as np
import pytest

from repro.trace import TraceSampler
from repro.util import ConfigError
from repro.util.rng import spawn_rng


class TestTraceSampler:
    def test_rate_one_keeps_everything(self):
        sampler = TraceSampler(1.0, spawn_rng(0, "s"))
        assert sampler.sample_count(100) == 100

    def test_zero_ios(self):
        sampler = TraceSampler(0.5, spawn_rng(0, "s"))
        assert sampler.sample_count(0) == 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            TraceSampler(0.0, spawn_rng(0, "s"))
        with pytest.raises(ConfigError):
            TraceSampler(1.5, spawn_rng(0, "s"))

    def test_rejects_negative_count(self):
        sampler = TraceSampler(0.5, spawn_rng(0, "s"))
        with pytest.raises(ConfigError):
            sampler.sample_count(-1)

    def test_expectation(self):
        sampler = TraceSampler(0.1, spawn_rng(7, "s"))
        draws = [sampler.sample_count(1000) for __ in range(200)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.05)

    def test_vectorized_matches_expectation(self):
        sampler = TraceSampler(0.25, spawn_rng(7, "s"))
        counts = np.full(400, 400)
        sampled = sampler.sample_counts(counts)
        assert sampled.shape == counts.shape
        assert sampled.mean() == pytest.approx(100.0, rel=0.05)

    def test_vectorized_never_exceeds_input(self):
        sampler = TraceSampler(0.9, spawn_rng(3, "s"))
        counts = np.arange(50)
        sampled = sampler.sample_counts(counts)
        assert (sampled <= counts).all()
        assert (sampled >= 0).all()
