"""Failure injection: telemetry gaps, thinning, clock skew."""

import numpy as np
import pytest

from repro.trace.transform import (
    drop_time_window,
    resample_traces,
    shift_timestamps,
)
from repro.util import ConfigError
from repro.util.rng import spawn_rng

from tests.trace.test_dataset import compute_table, trace_dataset


class TestDropTimeWindow:
    def test_removes_rows_in_window(self):
        table = compute_table()  # timestamps 0..3
        gapped = drop_time_window(table, 1, 3)
        assert gapped.timestamp.tolist() == [0, 3]

    def test_rejects_empty_window(self):
        with pytest.raises(ConfigError):
            drop_time_window(compute_table(), 2, 2)

    def test_works_on_traces(self):
        traces = trace_dataset()
        gapped = drop_time_window(traces, 0.0, 1.0)
        assert (gapped.timestamp >= 1.0).all()
        assert gapped.sampling_rate == traces.sampling_rate


class TestResampleTraces:
    def test_adjusts_sampling_rate(self):
        traces = trace_dataset()  # rate 0.5
        thinned = resample_traces(traces, 0.5, spawn_rng(0, "r"))
        assert thinned.sampling_rate == pytest.approx(0.25)
        assert len(thinned) <= len(traces)

    def test_estimated_totals_unbiased(self):
        traces = trace_dataset()
        estimates = []
        for seed in range(200):
            thinned = resample_traces(traces, 0.5, spawn_rng(seed, "r"))
            estimates.append(thinned.estimated_total_ios())
        assert np.mean(estimates) == pytest.approx(
            traces.estimated_total_ios(), rel=0.15
        )

    def test_keep_all_is_identity(self):
        traces = trace_dataset()
        assert resample_traces(traces, 1.0, spawn_rng(0, "r")) is traces

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            resample_traces(trace_dataset(), 0.0, spawn_rng(0, "r"))


class TestShiftTimestamps:
    def test_shifts(self):
        traces = trace_dataset()
        shifted = shift_timestamps(traces, 10.0)
        assert shifted.timestamp.min() == pytest.approx(
            traces.timestamp.min() + 10.0
        )

    def test_rejects_negative_result(self):
        with pytest.raises(ConfigError):
            shift_timestamps(trace_dataset(), -100.0)

    def test_metric_tables_keep_integer_timestamps(self):
        table = compute_table()
        shifted = shift_timestamps(table, 5)
        assert shifted.timestamp.dtype == table.timestamp.dtype
        assert shifted.timestamp.tolist() == [5, 6, 7, 8]


class TestAnalysesSurviveGaps:
    """The §4/§7 analyses must degrade gracefully on gapped telemetry."""

    def test_wt_cov_skips_gap(self, small_fleet, rngs):
        from repro.balancer import wt_cov_samples
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=120),
            rngs.child("gap"),
        ).run()
        full = wt_cov_samples(result.metrics.compute, small_fleet, 30, "write")
        gapped_table = drop_time_window(result.metrics.compute, 30, 60)
        gapped = wt_cov_samples(gapped_table, small_fleet, 30, "write")
        assert len(gapped) <= len(full)
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in gapped)

    def test_hottest_block_on_thinned_traces(self, small_fleet, rngs):
        from repro.cache import hottest_block
        from repro.cluster import EBSSimulator, SimulationConfig
        from repro.util.units import MiB

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=120, trace_sampling_rate=0.2),
            rngs.child("gap2"),
        ).run()
        thinned = resample_traces(result.traces, 0.3, spawn_rng(1, "thin"))
        for vd in small_fleet.vds[:10]:
            block = hottest_block(
                thinned, vd.vd_id, 64 * MiB, vd.capacity_bytes
            )
            if block is not None:
                assert 0.0 < block.access_rate <= 1.0
