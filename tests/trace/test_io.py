"""Tests for dataset file IO roundtrips."""

import pytest

from repro.trace import (
    ComputeMetricTable,
    StorageMetricTable,
    read_metric_csv,
    read_trace_jsonl,
    write_metric_csv,
    write_trace_jsonl,
)
from repro.util.errors import DatasetError

from tests.trace.test_dataset import compute_table, trace_dataset


class TestTraceJsonl:
    def test_roundtrip(self, tmp_path):
        traces = trace_dataset()
        path = tmp_path / "traces.jsonl"
        write_trace_jsonl(traces, path)
        loaded = read_trace_jsonl(path)
        assert loaded.sampling_rate == traces.sampling_rate
        assert len(loaded) == len(traces)
        assert loaded.timestamp.tolist() == traces.timestamp.tolist()
        assert loaded.op.tolist() == traces.op.tolist()

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError):
            read_trace_jsonl(path)

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "metric"}\n')
        with pytest.raises(DatasetError):
            read_trace_jsonl(path)


class TestMetricCsv:
    def test_roundtrip(self, tmp_path):
        table = compute_table()
        path = tmp_path / "compute.csv"
        write_metric_csv(table, path)
        loaded = read_metric_csv(path, ComputeMetricTable)
        assert len(loaded) == len(table)
        assert loaded.read_bytes.tolist() == table.read_bytes.tolist()
        assert loaded.qp_id.tolist() == table.qp_id.tolist()

    def test_rejects_wrong_table_type(self, tmp_path):
        table = compute_table()
        path = tmp_path / "compute.csv"
        write_metric_csv(table, path)
        with pytest.raises(DatasetError):
            read_metric_csv(path, StorageMetricTable)

    def test_rejects_bad_class(self, tmp_path):
        with pytest.raises(DatasetError):
            read_metric_csv(tmp_path / "x.csv", dict)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            read_metric_csv(path, ComputeMetricTable)
