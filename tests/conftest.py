"""Shared fixtures: a small deterministic fleet and generated traffic."""

from __future__ import annotations

import pytest

from repro.util.rng import RngFactory
from repro.util.units import GiB
from repro.workload import FleetConfig, WorkloadGenerator, build_fleet


@pytest.fixture(scope="session")
def rngs() -> RngFactory:
    return RngFactory(20250707)


@pytest.fixture(scope="session")
def small_fleet_config() -> FleetConfig:
    return FleetConfig(
        dc_id=0,
        num_users=8,
        num_vms=24,
        num_compute_nodes=8,
        workers_per_node=4,
        num_storage_nodes=6,
        segment_bytes=32 * GiB,
    )

@pytest.fixture(scope="session")
def small_fleet(small_fleet_config, rngs):
    return build_fleet(small_fleet_config, rngs)


@pytest.fixture(scope="session")
def small_generator(small_fleet, rngs) -> WorkloadGenerator:
    return WorkloadGenerator(small_fleet, duration_seconds=240, rngs=rngs)


@pytest.fixture(scope="session")
def small_traffic(small_generator):
    return small_generator.generate_all()
