"""Unit tests for experiment helper functions on synthetic inputs."""

import numpy as np
import pytest

from repro.core.experiments.baseline import _median_p2a, _per_entity_totals
from repro.trace.dataset import ComputeMetricTable

from tests.trace.test_dataset import compute_table


class TestPerEntityTotals:
    def test_read_direction(self):
        totals = _per_entity_totals(compute_table(), "vm_id", "read")
        assert totals == {0: 30.0, 1: 70.0}

    def test_write_direction(self):
        totals = _per_entity_totals(compute_table(), "vm_id", "write")
        assert totals == {0: 3.0, 1: 7.0}

    def test_node_level(self):
        totals = _per_entity_totals(
            compute_table(), "compute_node_id", "read"
        )
        assert totals == {0: 30.0, 1: 70.0}


class TestMedianP2a:
    def test_flat_entity(self):
        table = ComputeMetricTable(
            timestamp=[0, 1, 2, 3],
            cluster_id=[0] * 4,
            compute_node_id=[0] * 4,
            user_id=[0] * 4,
            vm_id=[0] * 4,
            vd_id=[0] * 4,
            wt_id=[0] * 4,
            qp_id=[0] * 4,
            read_bytes=[5.0] * 4,
            write_bytes=[0.0] * 4,
            read_iops=[1.0] * 4,
            write_iops=[0.0] * 4,
        )
        assert _median_p2a(table, "vm_id", "read", 4) == pytest.approx(1.0)

    def test_single_spike(self):
        table = ComputeMetricTable(
            timestamp=[0],
            cluster_id=[0],
            compute_node_id=[0],
            user_id=[0],
            vm_id=[0],
            vd_id=[0],
            wt_id=[0],
            qp_id=[0],
            read_bytes=[100.0],
            write_bytes=[0.0],
            read_iops=[1.0],
            write_iops=[0.0],
        )
        # One spike over a 10-second horizon: peak 100, mean 10 -> P2A 10.
        assert _median_p2a(table, "vm_id", "read", 10) == pytest.approx(10.0)

    def test_no_traffic_is_zero(self):
        table = compute_table()
        assert _median_p2a(table, "vm_id", "write", 4) > 0
        zero = table.where(np.zeros(len(table), dtype=bool))
        assert _median_p2a(zero, "vm_id", "write", 4) == 0.0
