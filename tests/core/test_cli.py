"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.scale == "small"
        assert args.seed == 7

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig7d" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        code = main(["run", "fig99", "--scale", "small"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_json_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--json", "out.json"]
        )
        assert args.json == "out.json"

    def test_export_dataset_parses(self):
        args = build_parser().parse_args(["export-dataset", "somewhere"])
        assert args.directory == "somewhere"


@pytest.mark.slow
class TestMainEndToEnd:
    def test_run_with_json_output(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(["run", "table2", "--scale", "small", "--json", str(out)])
        assert code == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["scale"] == "small"
        assert payload["results"][0]["experiment_id"] == "table2"

    def test_export_dataset_writes_files(self, tmp_path, capsys):
        code = main(["export-dataset", str(tmp_path / "data")])
        assert code == 0
        written = {p.name for p in (tmp_path / "data").iterdir()}
        assert "dc0_traces.jsonl" in written
        assert "dc0_compute.csv" in written
        assert "dc0_storage.csv" in written
