"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.scale == "small"
        assert args.seed == 7

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig7d" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        code = main(["run", "fig99", "--scale", "small"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_run_rejects_output_and_json_together(self, capsys):
        code = main(
            ["run", "table2", "-o", "a.json", "--json", "b.json"]
        )
        assert code == 1
        assert "deprecated alias" in capsys.readouterr().err

    def test_export_dataset_requires_one_directory(self, capsys):
        assert main(["export-dataset"]) == 1
        assert "-o/--output" in capsys.readouterr().err
        assert main(["export-dataset", "a", "-o", "b"]) == 1
        assert "once" in capsys.readouterr().err

    def test_sweep_rejects_bad_axis(self, capsys):
        code = main(["sweep", "table2", "--axis", "notafield=1"])
        assert code == 1
        assert "unknown sweep axis" in capsys.readouterr().err

    def test_obs_validate_handles_result_payloads(self, tmp_path, capsys):
        import json

        from repro.core import results_payload
        from repro.core.report import ExperimentResult

        result = ExperimentResult(
            experiment_id="table2",
            title="demo",
            headers=["a"],
            rows=[[1]],
        )
        good = tmp_path / "results.json"
        good.write_text(json.dumps(results_payload([result], seed=7)))
        assert main(["obs", "validate", str(good)]) == 0
        assert "result_schema_version 2" in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"result_schema_version": 1, "results": [{}]})
        )
        assert main(["obs", "validate", str(bad)]) == 1
        assert "missing" in capsys.readouterr().err

    def test_redundancy_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--redundancy", "r=3",
             "--read-policy", "least_loaded"]
        )
        assert args.redundancy == "r=3"
        assert args.read_policy == "least_loaded"

    def test_redundancy_flags_default_to_none(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.redundancy is None
        assert args.read_policy is None

    def test_unknown_read_policy_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "table2", "--read-policy", "round_robin"]
            )

    def test_balance_and_export_accept_redundancy_flags(self):
        args = build_parser().parse_args(
            ["balance", "plan", "--redundancy", "r=2"]
        )
        assert args.redundancy == "r=2"
        args = build_parser().parse_args(
            ["export-dataset", "out", "--redundancy", "ec=4+2"]
        )
        assert args.redundancy == "ec=4+2"

    def test_bad_redundancy_spec_fails_cleanly(self, capsys):
        code = main(["run", "table2", "--redundancy", "raid=5"])
        assert code == 1
        assert "malformed redundancy" in capsys.readouterr().err

    def test_list_includes_redundancy_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "redundancy_cov" in out
        assert "redundancy_faults" in out

    def test_json_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--json", "out.json"]
        )
        assert args.json == "out.json"

    def test_run_output_flag_parsed(self):
        args = build_parser().parse_args(["run", "table2", "-o", "out.json"])
        assert args.output == "out.json"

    def test_export_dataset_parses(self):
        args = build_parser().parse_args(["export-dataset", "somewhere"])
        assert args.directory == "somewhere"

    def test_export_dataset_output_flag(self):
        args = build_parser().parse_args(["export-dataset", "-o", "there"])
        assert args.output == "there"
        assert args.directory is None

    def test_sweep_parses(self):
        args = build_parser().parse_args(
            [
                "sweep", "table2", "fig7a",
                "--axis", "cache_min_traces=100,200",
                "--axis", "seed=3,4",
                "--store", "cache/",
                "-o", "sweep.json",
                "--workers", "2",
            ]
        )
        assert args.command == "sweep"
        assert args.experiments == ["table2", "fig7a"]
        assert args.axis == ["cache_min_traces=100,200", "seed=3,4"]
        assert args.store == "cache/"
        assert args.output == "sweep.json"
        assert args.workers == 2


@pytest.mark.slow
class TestMainEndToEnd:
    def test_run_with_json_output(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(["run", "table2", "--scale", "small", "--json", str(out)])
        assert code == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["scale"] == "small"
        assert payload["results"][0]["experiment_id"] == "table2"

    def test_export_dataset_writes_files(self, tmp_path, capsys):
        code = main(["export-dataset", str(tmp_path / "data")])
        assert code == 0
        written = {p.name for p in (tmp_path / "data").iterdir()}
        assert "dc0_traces.jsonl" in written
        assert "dc0_compute.csv" in written
        assert "dc0_storage.csv" in written


@pytest.mark.slow
class TestFlushFailures:
    """The ``finally``-path writers must chain causes, never mask them."""

    def test_results_flush_failure_exits_nonzero_and_names_artifact(
        self, tmp_path, capsys
    ):
        target = tmp_path / "missing" / "results.json"
        code = main(
            ["run", "table2", "--scale", "small", "-o", str(target)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "NOT written" in err
        assert str(target) in err
        # main() surfaces the chained OSError root cause.
        assert "caused by" in err

    def test_telemetry_flush_failure_exits_nonzero(self, tmp_path, capsys):
        # A *file* where the parent directory should be defeats the
        # writer's mkdir(parents=True) with NotADirectoryError.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        target = blocker / "telemetry.json"
        code = main(
            ["run", "table2", "--scale", "small",
             "--telemetry", str(target)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "telemetry was not written" in err
        assert "caused by" in err

    def test_telemetry_failure_never_masks_inflight_error(
        self, tmp_path, monkeypatch, capsys
    ):
        """A failing telemetry write during exception unwind is logged,
        and the original (in-flight) failure keeps propagating."""
        import repro.cli as cli_module
        from repro.obs.runtime import Telemetry

        def exploding_study(args):
            raise RuntimeError("mid-study blowup")

        def exploding_write(self, path):
            raise OSError("disk full")

        monkeypatch.setattr(cli_module, "_study", exploding_study)
        monkeypatch.setattr(Telemetry, "write", exploding_write)
        with pytest.raises(RuntimeError, match="mid-study blowup"):
            main(
                ["run", "table2", "--scale", "small",
                 "--telemetry", str(tmp_path / "telemetry.json")]
            )
        err = capsys.readouterr().err
        assert "telemetry was NOT written" in err
        assert "keeping the original failure" in err
