"""The stable facade: ``repro.api`` and the package-root re-exports."""

import json

import pytest

from repro.api import (
    RESULT_SCHEMA_VERSION,
    SCALE_NAMES,
    ExperimentResult,
    StudyConfig,
    load_result,
    run_experiment,
    run_study,
    save_results,
)
from repro.util.errors import ConfigError
from repro.workload import FleetConfig


def tiny_config(seed=3) -> StudyConfig:
    return StudyConfig(
        seed=seed,
        duration_seconds=90,
        trace_sampling_rate=1.0 / 4.0,
        dc_configs=[
            FleetConfig(
                dc_id=0,
                num_users=4,
                num_vms=10,
                num_compute_nodes=4,
                num_storage_nodes=3,
            )
        ],
        wt_cov_windows=(30, 60),
        cache_min_traces=50,
    )


class TestSurface:
    def test_root_reexports_lazily(self):
        import repro

        for name in (
            "run_experiment", "run_study", "sweep", "load_result",
            "save_results", "StudyConfig", "ExperimentResult",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
        assert "run_experiment" in dir(repro)

    def test_root_rejects_unknown_names(self):
        import repro

        with pytest.raises(AttributeError):
            repro.not_a_real_export

    def test_scale_names_cover_the_presets(self):
        assert SCALE_NAMES == ("small", "medium", "large", "xlarge")


class TestRun:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_experiment("table2", config=tiny_config())

    def test_run_experiment(self, table2):
        assert table2.experiment_id == "table2"
        assert table2.rows

    def test_run_experiment_is_deterministic(self, table2):
        again = run_experiment("table2", config=tiny_config())
        assert again.to_dict() == table2.to_dict()

    def test_run_study_preserves_order(self):
        results = run_study(
            ["table3", "table2"], config=tiny_config()
        )
        assert list(results) == ["table3", "table2"]
        assert all(
            isinstance(r, ExperimentResult) for r in results.values()
        )

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ConfigError):
            run_experiment(
                "table2", config=tiny_config(), duration_seconds=60
            )

    def test_unknown_override_fails_before_building(self):
        with pytest.raises(ConfigError, match="unknown StudyConfig"):
            run_experiment("table2", duration_secondz=60)


class TestRedundancySurface:
    def test_run_experiment_accepts_redundancy_overrides(self):
        result = run_experiment(
            "table2",
            config=None,
            seed=3,
            duration_seconds=60,
            dc_configs=[
                FleetConfig(
                    dc_id=0,
                    num_users=4,
                    num_vms=10,
                    num_compute_nodes=4,
                    num_storage_nodes=3,
                )
            ],
            wt_cov_windows=(30, 60),
            cache_min_traces=50,
            redundancy="r=2",
            read_policy="least_loaded",
        )
        assert result.rows

    def test_bad_redundancy_spec_fails_before_building(self):
        with pytest.raises(ConfigError, match="malformed redundancy"):
            run_experiment("table2", redundancy="raid=5")

    def test_bad_read_policy_fails_before_building(self):
        with pytest.raises(ConfigError, match="unknown read policy"):
            run_experiment("table2", read_policy="round_robin")

    def test_study_config_carries_the_fields(self):
        config = tiny_config()
        assert config.redundancy is None
        assert config.read_policy == "primary"
        sim = config.simulation_config()
        assert sim.redundancy is None
        assert sim.read_policy == "primary"

    def test_save_results_emits_redundancy_keys(self, tmp_path):
        result = ExperimentResult(
            experiment_id="table2",
            title="demo",
            headers=["metric"],
            rows=[["x"]],
        )
        path = save_results(
            [result],
            tmp_path / "res.json",
            seed=7,
            redundancy="r=3",
            read_policy="water_filling",
        )
        payload = json.loads(path.read_text())
        assert payload["redundancy"] == "r=3"
        assert payload["read_policy"] == "water_filling"

    def test_validator_accepts_v1_and_rejects_bad_keys(self):
        from repro.core.result_schema import validate_result_payload

        v1 = {"result_schema_version": 1, "results": []}
        assert validate_result_payload(v1) == []
        bad = {
            "result_schema_version": 2,
            "results": [],
            "redundancy": 3,
            "read_policy": ["primary"],
        }
        problems = validate_result_payload(bad)
        assert any("redundancy" in p for p in problems)
        assert any("read_policy" in p for p in problems)

    def test_unsupported_versions_are_reported(self):
        from repro.core.result_schema import validate_result_payload

        problems = validate_result_payload(
            {"result_schema_version": 99, "results": []}
        )
        assert any("unsupported" in p for p in problems)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        result = ExperimentResult(
            experiment_id="table2",
            title="demo",
            headers=["metric", "value"],
            rows=[["x", 1.5]],
        )
        path = save_results([result], tmp_path / "res.json", seed=7)
        payload = json.loads(path.read_text())
        assert payload["result_schema_version"] == RESULT_SCHEMA_VERSION
        loaded = load_result(path)
        assert len(loaded) == 1
        assert loaded[0].to_dict() == result.to_dict()

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="no such results file"):
            load_result(tmp_path / "absent.json")

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_result(path)

    def test_load_lists_schema_problems(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(
            json.dumps(
                {
                    "result_schema_version": 999,
                    "results": [{"experiment_id": "t"}],
                }
            )
        )
        with pytest.raises(ConfigError) as excinfo:
            load_result(path)
        message = str(excinfo.value)
        assert "result_schema_version" in message
        assert "missing 'title'" in message
