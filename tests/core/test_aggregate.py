"""Tests for multi-seed aggregation."""

import pytest

from repro.core import ExperimentResult
from repro.core.aggregate import MultiSeedStudy, aggregate_results
from repro.util import ConfigError


def result(values, experiment_id="t", headers=("name", "value")):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="T",
        headers=list(headers),
        rows=[[name, value] for name, value in values],
    )


class TestAggregateResults:
    def test_averages_numeric_cells(self):
        a = result([("x", 1.0), ("y", 3.0)])
        b = result([("x", 3.0), ("y", 5.0)])
        merged = aggregate_results([a, b])
        by_name = {row[0]: row[1] for row in merged.rows}
        assert by_name["x"] == pytest.approx(2.0)
        assert by_name["y"] == pytest.approx(4.0)

    def test_appends_spread_column(self):
        a = result([("x", 1.0)])
        b = result([("x", 3.0)])
        merged = aggregate_results([a, b])
        assert merged.headers[-1] == "seed spread"
        # CV of [1, 3] = std/mean = 1/2.
        assert merged.rows[0][-1] == pytest.approx(0.5)

    def test_single_result_zero_spread(self):
        merged = aggregate_results([result([("x", 2.0)])])
        assert merged.rows[0][-1] == 0.0
        assert merged.rows[0][1] == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            aggregate_results([])

    def test_rejects_mismatched_experiments(self):
        with pytest.raises(ConfigError):
            aggregate_results(
                [result([("x", 1.0)]), result([("x", 1.0)], experiment_id="u")]
            )

    def test_rejects_mismatched_headers(self):
        with pytest.raises(ConfigError):
            aggregate_results(
                [
                    result([("x", 1.0)]),
                    result([("x", 1.0)], headers=("name", "other")),
                ]
            )

    def test_title_mentions_seed_count(self):
        merged = aggregate_results([result([("x", 1.0)])] * 3)
        assert "3 seeds" in merged.title

    def test_preserves_row_order(self):
        a = result([("b", 1.0), ("a", 2.0)])
        b = result([("b", 5.0), ("a", 6.0)])
        merged = aggregate_results([a, b])
        assert [row[0] for row in merged.rows] == ["b", "a"]


class TestMultiSeedStudy:
    def test_rejects_bad_seeds(self):
        with pytest.raises(ConfigError):
            MultiSeedStudy([])
        with pytest.raises(ConfigError):
            MultiSeedStudy([1, 1])

    @pytest.mark.slow
    def test_aggregated_experiment(self):
        from repro.core import StudyConfig
        from repro.workload import FleetConfig

        def factory(seed):
            return StudyConfig(
                seed=seed,
                duration_seconds=90,
                trace_sampling_rate=0.2,
                dc_configs=[
                    FleetConfig(
                        dc_id=0,
                        num_users=4,
                        num_vms=10,
                        num_compute_nodes=4,
                        num_storage_nodes=4,
                    )
                ],
                wt_cov_windows=(30,),
            )

        multi = MultiSeedStudy([1, 2], config_factory=factory)
        merged = multi.run("fig2a")
        assert merged.headers[-1] == "seed spread"
        assert merged.rows
