"""Tests for experiment result rendering."""

import pytest

from repro.core import ExperimentResult
from repro.util import ConfigError


def result():
    return ExperimentResult(
        experiment_id="t1",
        title="Demo",
        headers=["name", "value"],
        rows=[["alpha", 1.5], ["beta", 0.000001]],
        notes="a note",
    )


class TestExperimentResult:
    def test_render_contains_everything(self):
        text = result().render()
        assert "t1" in text
        assert "Demo" in text
        assert "alpha" in text
        assert "a note" in text

    def test_row_width_validated(self):
        with pytest.raises(ConfigError):
            ExperimentResult(
                experiment_id="x",
                title="x",
                headers=["a", "b"],
                rows=[[1]],
            )

    def test_column_access(self):
        assert result().column("name") == ["alpha", "beta"]

    def test_unknown_column(self):
        with pytest.raises(ConfigError):
            result().column("nope")

    def test_to_dict_roundtrip(self):
        data = result().to_dict()
        assert data["experiment_id"] == "t1"
        assert data["rows"][0] == ["alpha", 1.5]

    def test_render_empty_rows(self):
        empty = ExperimentResult(
            experiment_id="e", title="Empty", headers=["h"], rows=[]
        )
        assert "Empty" in empty.render()

    def test_float_formatting(self):
        res = ExperimentResult(
            experiment_id="f",
            title="f",
            headers=["v"],
            rows=[[123456.789], [float("nan")], [None]],
        )
        text = res.render()
        assert "1.23e+05" in text
        assert "-" in text
