"""Integration tests for the Study pipeline and the experiment registry."""

from dataclasses import replace

import pytest

from repro.core import EXPERIMENTS, Study, StudyConfig, experiment_ids
from repro.util.errors import ConfigError, SimulationError
from repro.workload import FleetConfig


def tiny_config(seed=3) -> StudyConfig:
    dcs = [
        FleetConfig(
            dc_id=dc,
            num_users=5,
            num_vms=14,
            num_compute_nodes=5,
            num_storage_nodes=4,
        )
        for dc in range(2)
    ]
    return StudyConfig(
        seed=seed,
        duration_seconds=120,
        trace_sampling_rate=1.0 / 5.0,
        dc_configs=dcs,
        wt_cov_windows=(30, 60),
        migration_window_scales=(15, 60),
        balancer_period_seconds=15,
        prediction_warmup_periods=3,
        prediction_epoch_periods=2,
        cache_min_traces=100,
        hot_rate_window_seconds=30.0,
    )


@pytest.fixture(scope="module")
def study():
    return Study(tiny_config()).build()


class TestStudyConfig:
    def test_duplicate_dc_ids_rejected(self):
        dc = FleetConfig(dc_id=0)
        with pytest.raises(ConfigError):
            StudyConfig(dc_configs=[dc, dc])

    def test_scales_valid(self):
        for name in ("small", "medium", "large"):
            config = StudyConfig.scale(name, seed=1)
            assert config.dc_configs

    def test_scale_accepts_field_overrides(self):
        config = StudyConfig.scale(
            "small", seed=1, duration_seconds=200, cache_min_traces=50
        )
        assert config.duration_seconds == 200
        assert config.cache_min_traces == 50

    def test_scale_rejects_unknown_name_and_override(self):
        with pytest.raises(ConfigError):
            StudyConfig.scale("huge")
        with pytest.raises(ConfigError):
            StudyConfig.scale("small", cache_min_tracez=50)

    def test_deprecated_presets_warn_but_match_scale(self):
        for shim, name in (
            (StudyConfig.small, "small"),
            (StudyConfig.medium, "medium"),
            (StudyConfig.large, "large"),
        ):
            with pytest.warns(DeprecationWarning, match="deprecated"):
                config = shim(seed=1)
            assert config == StudyConfig.scale(name, seed=1)

    def test_rejects_bad_lending_rates(self):
        with pytest.raises(ConfigError):
            StudyConfig(lending_rates=(0.0,))


class TestStudy:
    def test_results_require_build(self):
        fresh = Study(tiny_config())
        with pytest.raises(SimulationError):
            __ = fresh.results

    def test_build_idempotent(self, study):
        before = study.results
        study.build()
        assert study.results is before

    def test_result_for_dc(self, study):
        assert study.result_for_dc(1).fleet.config.dc_id == 1
        with pytest.raises(ConfigError):
            study.result_for_dc(99)

    def test_unknown_experiment(self, study):
        with pytest.raises(ConfigError):
            study.run("fig99")

    def test_experiment_cache(self, study):
        a = study.run("table2")
        b = study.run("table2")
        assert a is b


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table2", "table3", "table4",
            "fig2a", "fig2b", "fig2c", "fig2_types", "fig2d", "fig2ef",
            "fig3a", "fig3b", "fig3c", "fig3de", "fig3fg",
            "fig4a", "fig4b", "fig4c",
            "fig5a", "fig5b", "fig5c",
            "fig6a", "fig6b", "fig6c", "fig6d",
            "fig7a", "fig7bc", "fig7d",
        }
        assert expected <= set(EXPERIMENTS)

    def test_order_stable(self):
        ids = experiment_ids()
        assert ids[0] == "table2"
        assert len(ids) == len(set(ids))


@pytest.mark.parametrize("experiment_id", [
    "table2", "table3", "table4",
    "fig2a", "fig2b", "fig2c", "fig2_types", "fig2ef",
    "fig3a", "fig3b", "fig3c", "fig3de", "fig3fg",
    "fig4a", "fig5a", "fig5b",
    "fig6a", "fig6b", "fig6c", "fig6d",
    "fig7bc", "fig7d",
    "extra_latency", "extra_iostats", "extra_gc",
])
def test_experiment_runs_and_tags(study, experiment_id):
    result = study.run(experiment_id)
    assert result.experiment_id == experiment_id
    assert result.headers
    assert result.render()


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", ["fig2d", "fig4b", "fig4c", "fig5c", "fig7a"])
def test_heavy_experiments_run(study, experiment_id):
    result = study.run(experiment_id)
    assert result.rows or result.notes
