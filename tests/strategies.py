"""Tiny in-repo generative strategies for property-based tests.

Not a hypothesis clone: a *strategy* here is a plain function from a
seeded :class:`numpy.random.Generator` to a value, and :func:`examples`
materializes a deterministic list of them for
``pytest.mark.parametrize``.  Every example is fully determined by the
``seed`` argument, so a failing case reproduces by its parametrize id
alone — no shrinking, no database, no new dependency.
"""

from __future__ import annotations

from typing import Callable, List, TypeVar

import numpy as np

from repro.faults.generate import PlanShape, random_fault_plan
from repro.faults.plan import (
    DEGRADE_COMPONENTS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
)

T = TypeVar("T")

#: Domain-separation constant so strategy streams never collide with the
#: simulator's own seeded streams.
_STRATEGY_SALT = 0xFA017


def rng_for(seed: int) -> np.random.Generator:
    """The deterministic generator behind one strategy example."""
    return np.random.default_rng([_STRATEGY_SALT, seed])


def examples(
    strategy: Callable[[np.random.Generator], T],
    count: int,
    seed: int = 0,
) -> List[T]:
    """``count`` deterministic examples of one strategy.

    Example ``i`` depends only on ``(seed, i)``, never on ``count`` —
    growing the suite never changes existing cases.
    """
    return [strategy(rng_for(seed * 1_000_003 + i)) for i in range(count)]


# -- strategies --------------------------------------------------------------


def plan_shapes(rng: np.random.Generator) -> PlanShape:
    """A small but non-degenerate fleet shape."""
    return PlanShape(
        num_block_servers=int(rng.integers(2, 13)),
        num_storage_nodes=int(rng.integers(1, 5)),
        num_queue_pairs=int(rng.integers(2, 41)),
        duration_seconds=int(rng.integers(10, 241)),
    )


def fault_events(rng: np.random.Generator) -> FaultEvent:
    """One valid event of any kind over a bounded window."""
    duration = int(rng.integers(10, 241))
    start = int(rng.integers(0, duration))
    end = int(rng.integers(start + 1, duration + 1))
    kind = list(FaultKind)[int(rng.integers(0, len(FaultKind)))]
    if kind is FaultKind.DEGRADE:
        return FaultEvent(
            kind=kind,
            start_s=start,
            end_s=end,
            component=DEGRADE_COMPONENTS[
                int(rng.integers(0, len(DEGRADE_COMPONENTS)))
            ],
            multiplier=float(1.0 + 9.0 * rng.random()),
        )
    if kind is FaultKind.MIGRATION_BLACKOUT:
        return FaultEvent(kind=kind, start_s=start, end_s=end)
    return FaultEvent(
        kind=kind,
        start_s=start,
        end_s=end,
        target=int(rng.integers(0, 16)),
        dc=int(rng.integers(0, 3)) if rng.random() < 0.3 else None,
    )


def fault_plans(rng: np.random.Generator) -> FaultPlan:
    """A plan drawn against a random shape (the sweep generator)."""
    shape = plan_shapes(rng)
    return random_fault_plan(
        int(rng.integers(0, 2**31)),
        shape,
        policy=(
            RedirectPolicy.REDIRECT
            if rng.random() < 0.5
            else RedirectPolicy.QUEUE
        ),
        label="strategies",
    )


def fault_plans_with_shape(
    rng: np.random.Generator, shape: PlanShape
) -> FaultPlan:
    """A plan targeting one fixed fleet shape (for simulation properties)."""
    return random_fault_plan(
        int(rng.integers(0, 2**31)),
        shape,
        num_events=int(rng.integers(1, 9)),
        label="strategies-fixed",
    )


# -- balance strategies -------------------------------------------------------


def cluster_state_shapes(rng: np.random.Generator):
    """A small but non-degenerate cluster shape for the balance planner."""
    from repro.balance.generate import StateShape

    return StateShape(
        num_compute_nodes=int(rng.integers(2, 9)),
        workers_per_node=int(rng.integers(2, 5)),
        num_block_servers=int(rng.integers(2, 13)),
        num_vds=int(rng.integers(4, 33)),
        max_qps_per_vd=int(rng.integers(1, 5)),
        max_segments_per_vd=int(rng.integers(1, 9)),
    )


def cluster_states(rng: np.random.Generator):
    """A skewed :class:`ClusterState` drawn against a random shape."""
    from repro.balance.generate import random_cluster_state

    return random_cluster_state(
        int(rng.integers(0, 2**31)),
        cluster_state_shapes(rng),
        label="strategies",
    )


# -- streaming-engine strategies ---------------------------------------------


def offered_series(rng: np.random.Generator) -> np.ndarray:
    """A bursty non-negative offered-traffic series (units/s)."""
    length = int(rng.integers(8, 121))
    base = rng.gamma(shape=1.5, scale=100.0, size=length)
    # Occasional idle spells and hard bursts: the cases where bucket
    # backlog state actually carries across a chunk boundary.
    base[rng.random(length) < 0.2] = 0.0
    burst = rng.random(length) < 0.15
    base[burst] *= 25.0
    return base


def bucket_configs(rng: np.random.Generator):
    """A token-bucket config spanning tight to generous caps."""
    from repro.throttle.tokenbucket import TokenBucketConfig

    return TokenBucketConfig(
        rate_per_second=float(10.0 ** rng.uniform(0.5, 3.0)),
        burst_seconds=float(rng.uniform(0.0, 4.0)),
    )


def page_streams(rng: np.random.Generator) -> np.ndarray:
    """A skewed page-access stream (hot set + cold tail + scans)."""
    length = int(rng.integers(16, 400))
    hot = int(rng.integers(4, 64))
    universe = hot + int(rng.integers(16, 512))
    if rng.random() < 0.5:
        # Zipf-ish: most accesses hit the hot set.
        pages = np.where(
            rng.random(length) < 0.8,
            rng.integers(0, hot, size=length),
            rng.integers(0, universe, size=length),
        )
    else:
        # Sequential scan with jitter (defeats LRU, favors FIFO).
        pages = (np.arange(length) + rng.integers(0, 8, size=length)) % universe
    return pages.astype(np.int64)


def cut_points(rng: np.random.Generator, length: int) -> "List[int]":
    """Strictly increasing interior cut positions for a series of ``length``."""
    if length < 2:
        return []
    count = int(rng.integers(0, min(6, length - 1) + 1))
    if count == 0:
        return []
    cuts = rng.choice(np.arange(1, length), size=count, replace=False)
    return sorted(int(c) for c in cuts)
