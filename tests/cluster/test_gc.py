"""Tests for the append-only segment GC model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.gc import GarbageCollector, GcConfig, SegmentFile, simulate_gc
from repro.util.errors import ConfigError, SimulationError


class TestGcConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            GcConfig(garbage_threshold=0.0)
        with pytest.raises(ConfigError):
            GcConfig(garbage_threshold=1.0)
        with pytest.raises(ConfigError):
            GcConfig(extent_bytes=0)


class TestSegmentFile:
    def test_fresh_write_all_live(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 8192)
        assert segment.live_bytes == 8192
        assert segment.garbage_bytes == 0

    def test_rewrite_creates_garbage(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 4096)
        segment.write(0, 4096)
        assert segment.live_bytes == 4096
        assert segment.garbage_bytes == 4096
        assert segment.garbage_ratio == pytest.approx(0.5)

    def test_partial_extent_write_rounds_up(self):
        # Extent-granular accounting: a 200-byte write occupies one extent.
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(100, 200)
        assert segment.live_bytes == 4096

    def test_compaction_drops_garbage(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 4096)
        segment.write(0, 4096)
        rewritten = segment.compact()
        assert rewritten == 4096
        assert segment.garbage_bytes == 0
        assert segment.live_bytes == 4096

    def test_needs_compaction_threshold(self):
        segment = SegmentFile(
            0, GcConfig(garbage_threshold=0.4, extent_bytes=4096)
        )
        segment.write(0, 4096)
        assert not segment.needs_compaction
        segment.write(0, 4096)
        assert segment.needs_compaction

    def test_rejects_bad_writes(self):
        segment = SegmentFile(0)
        with pytest.raises(SimulationError):
            segment.write(-1, 4096)
        with pytest.raises(SimulationError):
            segment.write(0, 0)

    @settings(max_examples=40)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(0, 1 << 20), st.integers(1, 64 * 1024)
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_accounting_invariants(self, writes):
        # Property: appended == live + garbage + compacted-away, and all
        # counters stay non-negative.
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        compacted = 0
        for offset, size in writes:
            segment.write(offset, size)
            if segment.needs_compaction:
                compacted += segment.garbage_bytes
                segment.compact()
        assert segment.live_bytes >= 0
        assert segment.garbage_bytes >= 0
        assert segment.appended_bytes == (
            segment.live_bytes + segment.garbage_bytes + compacted
        )


class TestGarbageCollector:
    def test_no_rewrites_means_wa_one(self):
        gc = GarbageCollector(GcConfig(extent_bytes=4096))
        for page in range(16):
            gc.write(0, page * 4096, 4096)
        assert gc.stats.write_amplification == 1.0
        assert gc.stats.compactions == 0

    def test_rewrites_drive_amplification(self):
        gc = GarbageCollector(
            GcConfig(garbage_threshold=0.3, extent_bytes=4096)
        )
        for __ in range(50):
            gc.write(0, 0, 4096)  # hammer a single page
        assert gc.stats.compactions > 0
        assert gc.stats.write_amplification > 1.0

    def test_segments_tracked_independently(self):
        gc = GarbageCollector(GcConfig(extent_bytes=4096))
        gc.write(0, 0, 4096)
        gc.write(5, 0, 4096)
        assert gc.segments() == [0, 5]
        assert gc.file(0).live_bytes == 4096

    def test_empty_stats(self):
        assert GarbageCollector().stats.write_amplification == 1.0


class TestSimulateGc:
    def test_on_simulated_traces(self, small_fleet, rngs):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=120, trace_sampling_rate=0.2),
            rngs.child("gc"),
        ).run()
        stats = simulate_gc(result.traces)
        assert stats.user_write_bytes > 0
        assert stats.write_amplification >= 1.0
        # The hot rewrite pattern produces some garbage collection.
        assert stats.compactions >= 0
