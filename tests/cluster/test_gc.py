"""Tests for the append-only segment GC model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.gc import GarbageCollector, GcConfig, SegmentFile, simulate_gc
from repro.util.errors import ConfigError, SimulationError


class TestGcConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            GcConfig(garbage_threshold=0.0)
        with pytest.raises(ConfigError):
            GcConfig(garbage_threshold=1.0)
        with pytest.raises(ConfigError):
            GcConfig(extent_bytes=0)


class TestSegmentFile:
    def test_fresh_write_all_live(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 8192)
        assert segment.live_bytes == 8192
        assert segment.garbage_bytes == 0

    def test_rewrite_creates_garbage(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 4096)
        segment.write(0, 4096)
        assert segment.live_bytes == 4096
        assert segment.garbage_bytes == 4096
        assert segment.garbage_ratio == pytest.approx(0.5)

    def test_partial_extent_write_rounds_up(self):
        # Extent-granular accounting: a 200-byte write occupies one extent.
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(100, 200)
        assert segment.live_bytes == 4096

    def test_compaction_drops_garbage(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 4096)
        segment.write(0, 4096)
        rewritten = segment.compact()
        assert rewritten == 4096
        assert segment.garbage_bytes == 0
        assert segment.live_bytes == 4096

    def test_needs_compaction_threshold(self):
        segment = SegmentFile(
            0, GcConfig(garbage_threshold=0.4, extent_bytes=4096)
        )
        segment.write(0, 4096)
        assert not segment.needs_compaction
        segment.write(0, 4096)
        assert segment.needs_compaction

    def test_rejects_bad_writes(self):
        segment = SegmentFile(0)
        with pytest.raises(SimulationError):
            segment.write(-1, 4096)
        with pytest.raises(SimulationError):
            segment.write(0, 0)

    @settings(max_examples=40)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(0, 1 << 20), st.integers(1, 64 * 1024)
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_accounting_invariants(self, writes):
        # Property: appended == live + garbage + compacted-away, and all
        # counters stay non-negative.
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        compacted = 0
        for offset, size in writes:
            segment.write(offset, size)
            if segment.needs_compaction:
                compacted += segment.garbage_bytes
                segment.compact()
        assert segment.live_bytes >= 0
        assert segment.garbage_bytes >= 0
        assert segment.appended_bytes == (
            segment.live_bytes + segment.garbage_bytes + compacted
        )


class TestGarbageCollector:
    def test_no_rewrites_means_wa_one(self):
        gc = GarbageCollector(GcConfig(extent_bytes=4096))
        for page in range(16):
            gc.write(0, page * 4096, 4096)
        assert gc.stats.write_amplification == 1.0
        assert gc.stats.compactions == 0

    def test_rewrites_drive_amplification(self):
        gc = GarbageCollector(
            GcConfig(garbage_threshold=0.3, extent_bytes=4096)
        )
        for __ in range(50):
            gc.write(0, 0, 4096)  # hammer a single page
        assert gc.stats.compactions > 0
        assert gc.stats.write_amplification > 1.0

    def test_segments_tracked_independently(self):
        gc = GarbageCollector(GcConfig(extent_bytes=4096))
        gc.write(0, 0, 4096)
        gc.write(5, 0, 4096)
        assert gc.segments() == [0, 5]
        assert gc.file(0).live_bytes == 4096

    def test_empty_stats(self):
        assert GarbageCollector().stats.write_amplification == 1.0


class TestSegmentFileEdgeCases:
    def test_compact_empty_segment_is_noop(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        assert segment.compact() == 0
        assert segment.live_bytes == 0
        assert segment.garbage_bytes == 0
        assert segment.appended_bytes == 0

    def test_empty_segment_never_needs_compaction(self):
        # garbage_ratio of a zero-byte file is 0.0, not NaN, and stays
        # below any valid threshold.
        segment = SegmentFile(0, GcConfig(garbage_threshold=0.01))
        assert segment.garbage_ratio == 0.0
        assert not segment.needs_compaction
        assert segment.file_bytes == 0

    def test_spanning_write_invalidates_only_live_overlap(self):
        # extents: write A covers {0,1}; write B covers {1,2}.  Only the
        # overlap (extent 1) turns to garbage.
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 8192)
        segment.write(4096, 8192)
        assert segment.live_bytes == 3 * 4096
        assert segment.garbage_bytes == 4096
        assert segment.appended_bytes == 4 * 4096

    def test_threshold_boundary_is_inclusive(self):
        # garbage_ratio == threshold triggers compaction (>=).
        segment = SegmentFile(
            0, GcConfig(garbage_threshold=0.5, extent_bytes=4096)
        )
        segment.write(0, 4096)
        segment.write(0, 4096)
        assert segment.garbage_ratio == pytest.approx(0.5)
        assert segment.needs_compaction

    def test_compaction_preserves_appended_history(self):
        segment = SegmentFile(0, GcConfig(extent_bytes=4096))
        segment.write(0, 4096)
        segment.write(0, 4096)
        appended_before = segment.appended_bytes
        segment.compact()
        assert segment.appended_bytes == appended_before


def _empty_traces():
    from repro.trace.dataset import TraceDataset

    return TraceDataset(
        **{
            name: []
            for name in (
                *TraceDataset.INT_FIELDS,
                *TraceDataset.FLOAT_FIELDS,
            )
        }
    )


class TestSimulateGc:
    def test_empty_trace_dataset_is_noop(self):
        stats = simulate_gc(_empty_traces())
        assert stats.user_write_bytes == 0
        assert stats.gc_rewritten_bytes == 0
        assert stats.compactions == 0
        assert stats.write_amplification == 1.0
        assert stats.per_segment_rewrites == {}

    def test_read_only_traces_never_write(self, small_fleet, rngs):
        from repro.cluster import EBSSimulator, SimulationConfig
        from repro.trace.records import OpKind

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=30, trace_sampling_rate=0.1),
            rngs.child("gc-ro"),
        ).run()
        reads = result.traces.where(
            result.traces.op == int(OpKind.READ)
        )
        stats = simulate_gc(reads)
        assert stats.user_write_bytes == 0
        assert stats.write_amplification == 1.0

    def test_on_simulated_traces(self, small_fleet, rngs):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=120, trace_sampling_rate=0.2),
            rngs.child("gc"),
        ).run()
        stats = simulate_gc(result.traces)
        assert stats.user_write_bytes > 0
        assert stats.write_amplification >= 1.0
        # The hot rewrite pattern produces some garbage collection.
        assert stats.compactions >= 0
