"""Integration tests for the end-to-end EBS simulator."""

import numpy as np
import pytest

from repro.cluster import EBSSimulator, SimulationConfig
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def sim_result(small_fleet):
    config = SimulationConfig(
        duration_seconds=180, trace_sampling_rate=1.0 / 10.0
    )
    return EBSSimulator(small_fleet, config, RngFactory(5)).run()


class TestSimulationConfig:
    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigError):
            SimulationConfig(duration_seconds=0)

    def test_rejects_bad_sampling(self):
        with pytest.raises(ConfigError):
            SimulationConfig(trace_sampling_rate=0.0)

    def test_rejects_negative_thresholds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(min_record_bytes=-1)


class TestDatasets:
    def test_produces_all_datasets(self, sim_result):
        assert len(sim_result.metrics.compute) > 0
        assert len(sim_result.metrics.storage) > 0
        assert len(sim_result.traces) > 0
        assert len(sim_result.specs.vd_specs) == len(sim_result.fleet.vds)
        assert len(sim_result.specs.vm_specs) == len(sim_result.fleet.vms)

    def test_timestamps_within_duration(self, sim_result):
        duration = sim_result.config.duration_seconds
        assert sim_result.metrics.compute.timestamp.max() < duration
        assert sim_result.metrics.storage.timestamp.max() < duration
        assert sim_result.traces.timestamp.max() < duration + 1

    def test_trace_offsets_within_capacity(self, sim_result):
        for vd in sim_result.fleet.vds[:20]:
            traces = sim_result.traces.for_vd(vd.vd_id)
            if len(traces):
                assert traces.offset_bytes.max() < vd.capacity_bytes

    def test_trace_wt_matches_binding(self, sim_result):
        binding = sim_result.hypervisors.binding_arrays()
        for index in range(min(200, len(sim_result.traces))):
            record = sim_result.traces.record(index)
            assert binding[record.qp_id] == record.wt_id

    def test_trace_segment_matches_vd(self, sim_result):
        fleet = sim_result.fleet
        seg = sim_result.traces.segment_id
        vd_ids = sim_result.traces.vd_id
        for index in range(min(200, len(sim_result.traces))):
            vd = fleet.vds[int(vd_ids[index])]
            assert vd.first_segment_id <= seg[index] < (
                vd.first_segment_id + vd.num_segments
            )

    def test_trace_bs_matches_placement(self, sim_result):
        placement = sim_result.storage.placement.primary_mapping()
        seg = sim_result.traces.segment_id
        bs = sim_result.traces.block_server_id
        for index in range(min(200, len(sim_result.traces))):
            assert placement[int(seg[index])] == int(bs[index])

    def test_latencies_positive(self, sim_result):
        assert (sim_result.traces.latency_us > 0).all()

    def test_trace_count_roughly_matches_sampling(self, sim_result):
        total_iops = sum(
            t.read_iops.sum() + t.write_iops.sum()
            for t in sim_result.traffic
        )
        expected = total_iops * sim_result.config.trace_sampling_rate
        assert len(sim_result.traces) == pytest.approx(expected, rel=0.15)

    def test_metric_totals_close_to_offered_load(self, sim_result):
        # The recording threshold drops only negligible traffic.
        offered = sum(
            t.read_bytes.sum() + t.write_bytes.sum()
            for t in sim_result.traffic
        )
        recorded = (
            sim_result.metrics.total_read_bytes()
            + sim_result.metrics.total_write_bytes()
        )
        assert recorded == pytest.approx(offered, rel=0.05)

    def test_compute_and_storage_totals_agree(self, sim_result):
        compute = (
            sim_result.metrics.total_read_bytes()
            + sim_result.metrics.total_write_bytes()
        )
        storage = float(
            sim_result.metrics.storage.read_bytes.sum()
            + sim_result.metrics.storage.write_bytes.sum()
        )
        assert storage == pytest.approx(compute, rel=0.1)

    def test_load_grids_shape(self, sim_result):
        fleet = sim_result.fleet
        duration = sim_result.config.duration_seconds
        assert sim_result.wt_load_bps.shape == (fleet.num_wts, duration)
        assert sim_result.bs_load_bps.shape == (
            fleet.config.num_block_servers,
            duration,
        )

    def test_deterministic(self, small_fleet):
        config = SimulationConfig(
            duration_seconds=60, trace_sampling_rate=1.0 / 10.0
        )
        a = EBSSimulator(small_fleet, config, RngFactory(9)).run()
        b = EBSSimulator(small_fleet, config, RngFactory(9)).run()
        assert len(a.traces) == len(b.traces)
        assert (a.traces.offset_bytes == b.traces.offset_bytes).all()
        assert a.metrics.total_write_bytes() == b.metrics.total_write_bytes()
