"""Tests for the per-component latency model."""

import numpy as np
import pytest

from repro.cluster import LatencyConfig, LatencyModel
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


def sample(model, n=2000, write_fraction=0.5, size=16384, wt_u=0.0, bs_u=0.0):
    rng = spawn_rng(1, "lat")
    is_write = rng.random(n) < write_fraction
    return is_write, model.sample(
        spawn_rng(2, "lat"),
        is_write,
        np.full(n, size),
        np.full(n, wt_u),
        np.full(n, bs_u),
    )


class TestLatencyConfig:
    def test_rejects_nonpositive_base(self):
        with pytest.raises(ConfigError):
            LatencyConfig(compute_base_us=0.0)

    def test_rejects_bad_tail(self):
        with pytest.raises(ConfigError):
            LatencyConfig(tail_probability=1.0)
        with pytest.raises(ConfigError):
            LatencyConfig(tail_multiplier=0.5)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigError):
            LatencyConfig(max_utilization=1.0)


class TestLatencyModel:
    def test_all_components_present(self):
        __, lats = sample(LatencyModel())
        assert set(lats) == set(LatencyModel.COMPONENTS)

    def test_positive(self):
        __, lats = sample(LatencyModel())
        for component in lats.values():
            assert (component > 0).all()

    def test_empty_batch(self):
        model = LatencyModel()
        lats = model.sample(
            spawn_rng(0, "lat"),
            np.zeros(0, dtype=bool),
            np.zeros(0),
            np.zeros(0),
            np.zeros(0),
        )
        for component in lats.values():
            assert component.size == 0

    def test_length_mismatch_rejected(self):
        model = LatencyModel()
        with pytest.raises(ConfigError):
            model.sample(
                spawn_rng(0, "lat"),
                np.zeros(3, dtype=bool),
                np.zeros(2),
                np.zeros(3),
                np.zeros(3),
            )

    def test_reads_pay_more_at_chunk_server(self):
        is_write, lats = sample(LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0)))
        reads = lats["chunk_server"][~is_write]
        writes = lats["chunk_server"][is_write]
        assert reads.mean() > writes.mean()

    def test_writes_pay_more_on_backend(self):
        is_write, lats = sample(LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0)))
        assert lats["backend"][is_write].mean() > lats["backend"][~is_write].mean()

    def test_utilization_inflates_compute(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0))
        __, idle = sample(model, wt_u=0.0)
        __, busy = sample(model, wt_u=0.9)
        assert busy["compute"].mean() > 5 * idle["compute"].mean()

    def test_utilization_clamped(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0))
        __, over = sample(model, wt_u=5.0)
        assert np.isfinite(over["compute"]).all()

    def test_larger_ios_slower_on_network(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0))
        __, small = sample(model, size=4096)
        __, large = sample(model, size=1 << 20)
        assert large["frontend"].mean() > small["frontend"].mean()

    def test_tail_events_present(self):
        model = LatencyModel(LatencyConfig(tail_probability=0.05, tail_multiplier=50.0))
        __, lats = sample(model, n=5000)
        ratio = lats["compute"].max() / np.median(lats["compute"])
        assert ratio > 20


class TestCachedLatency:
    def test_cn_cache_faster_than_bs_cache(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0))
        rng = spawn_rng(3, "lat")
        is_write = np.zeros(500, dtype=bool)
        sizes = np.full(500, 16384)
        cn = model.cached_latency(rng, is_write, sizes, "compute_node")
        bs = model.cached_latency(rng, is_write, sizes, "block_server")
        assert cn.mean() < bs.mean()

    def test_cached_faster_than_full_path(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0, tail_probability=0.0))
        is_write, lats = sample(model, n=500)
        full = sum(lats.values())
        cached = model.cached_latency(
            spawn_rng(4, "lat"), is_write, np.full(500, 16384), "compute_node"
        )
        assert cached.mean() < full.mean()

    def test_rejects_bad_location(self):
        model = LatencyModel()
        with pytest.raises(ConfigError):
            model.cached_latency(
                spawn_rng(0, "lat"), np.zeros(1, dtype=bool), np.ones(1), "rack"
            )
