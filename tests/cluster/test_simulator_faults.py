"""Differential tests: scalar vs vectorized simulation under fault plans.

The contract being pinned: for ANY fault plan, the vectorized pass-1 and
the per-VD trace pipeline produce datasets bit-identical to the scalar
reference — dtypes included — and identical for any worker count.  A
no-fault plan must reproduce the fault-free golden digest exactly.
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.simulator import EBSSimulator, SimulationConfig
from repro.faults.generate import PlanShape, random_fault_plan
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
)
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet

from tests.cluster.test_simulator_fastpath import (
    GOLDEN_DIGEST,
    GOLDEN_FLEET,
    GOLDEN_SIM,
    _result_digest,
)

#: The issue's acceptance bar: at least 25 seeded plans in the harness.
NUM_DIFFERENTIAL_PLANS = 25


def _build_fleet():
    return build_fleet(GOLDEN_FLEET, RngFactory(11))


def _shape() -> PlanShape:
    return PlanShape.of_fleet(_build_fleet(), GOLDEN_SIM.duration_seconds)


def _run(plan, fast: bool, workers: int = 1, seed: int = 11):
    rngs = RngFactory(seed)
    fleet = build_fleet(GOLDEN_FLEET, rngs)
    config = replace(GOLDEN_SIM, use_fast_path=fast)
    simulator = EBSSimulator(fleet, config, rngs, fault_plan=plan)
    return simulator.run(workers=workers)


def _plan_for(seed: int) -> FaultPlan:
    policy = (
        RedirectPolicy.REDIRECT if seed % 2 == 0 else RedirectPolicy.QUEUE
    )
    return random_fault_plan(
        seed, _shape(), policy=policy, label="differential"
    )


class TestNoFaultIdentity:
    def test_empty_plan_reproduces_golden_digest(self):
        result = _run(FaultPlan(), fast=True)
        assert result.faults is None
        assert _result_digest(result) == GOLDEN_DIGEST

    def test_none_plan_reproduces_golden_digest(self):
        assert _result_digest(_run(None, fast=True)) == GOLDEN_DIGEST

    def test_out_of_horizon_plan_reproduces_traces(self):
        """Events entirely past the horizon leave the datasets untouched."""
        t = GOLDEN_SIM.duration_seconds
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.BS_CRASH,
                    start_s=t + 10,
                    end_s=t + 20,
                    target=0,
                ),
            )
        )
        result = _run(plan, fast=True)
        assert result.faults is not None  # the plan is non-empty...
        assert _result_digest(result) == GOLDEN_DIGEST  # ...but inert


class TestDifferentialUnderFaults:
    @pytest.mark.parametrize("seed", range(NUM_DIFFERENTIAL_PLANS))
    def test_scalar_and_fast_paths_are_bit_identical(self, seed):
        plan = _plan_for(seed)
        slow = _run(plan, fast=False)
        fast = _run(plan, fast=True)
        assert _result_digest(slow) == _result_digest(fast)

    @pytest.mark.parametrize("seed", range(NUM_DIFFERENTIAL_PLANS))
    def test_fault_accounting_matches_across_paths(self, seed):
        plan = _plan_for(seed)
        slow = _run(plan, fast=False)
        fast = _run(plan, fast=True)
        if slow.faults is None:
            assert fast.faults is None
            return
        assert slow.faults.accounting == fast.faults.accounting
        assert slow.faults.trace_stats == fast.faults.trace_stats


class TestWorkerParityUnderFaults:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_workers_do_not_change_results(self, seed):
        plan = _plan_for(seed)
        sequential = _run(plan, fast=True, workers=1)
        fanned = _run(plan, fast=True, workers=2)
        assert _result_digest(sequential) == _result_digest(fanned)
        if sequential.faults is not None:
            assert (
                sequential.faults.trace_stats == fanned.faults.trace_stats
            )

    def test_seed_changes_results(self):
        plan = _plan_for(0)
        assert _result_digest(_run(plan, fast=True, seed=11)) != (
            _result_digest(_run(plan, fast=True, seed=12))
        )


class TestFaultEffectsAreReal:
    """Guard against the harness passing because faults are silently inert."""

    def test_some_differential_plan_changes_the_datasets(self):
        changed = 0
        for seed in range(6):
            plan = _plan_for(seed)
            if _result_digest(_run(plan, fast=True)) != GOLDEN_DIGEST:
                changed += 1
        assert changed > 0

    def test_crash_moves_load_off_the_failed_bs(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.BS_CRASH, start_s=0, end_s=45, target=0
                ),
            ),
            policy=RedirectPolicy.REDIRECT,
        )
        result = _run(plan, fast=True)
        assert np.all(result.bs_load_bps[0] == 0.0)
        assert result.faults.accounting.redirected_ios > 0

    def test_degrade_inflates_in_window_latency(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.DEGRADE,
                    start_s=0,
                    end_s=45,
                    component="all",
                    multiplier=10.0,
                ),
            )
        )
        base = _run(None, fast=True)
        degraded = _run(plan, fast=True)
        total = lambda r: float(  # noqa: E731
            sum(
                r.traces.columns()[c].sum()
                for c in r.traces.columns()
                if c.endswith("_us")
            )
        )
        assert total(degraded) > 5.0 * total(base)
        assert degraded.faults.degraded_latency_fraction == 1.0

    def test_stall_replay_reaches_hypervisors(self):
        fleet = _build_fleet()
        qp = fleet.queue_pairs[0].qp_id
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.QP_STALL, start_s=5, end_s=60, target=qp
                ),
            )
        )
        result = _run(plan, fast=True)
        node = result.fleet.queue_pairs[qp].compute_node_id
        log = result.hypervisors.node(node).stall_log
        assert any(
            entry.qp_id == qp and entry.action == "stall" for entry in log
        )
        # Window end (60) is past the horizon: still stalled at the end.
        assert result.hypervisors.node(node).is_stalled(qp)

    def test_crash_replay_reaches_storage_failure_log(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.BS_CRASH, start_s=5, end_s=20, target=1
                ),
            )
        )
        result = _run(plan, fast=True)
        actions = [
            (event.bs_id, event.action)
            for event in result.storage.failure_log
        ]
        assert (1, "fail") in actions and (1, "recover") in actions
        assert not result.storage.is_failed(1)


def _digest_plan_outcome(plan) -> str:
    """Digest of datasets AND fault attribution, for the golden pin."""
    result = _run(plan, fast=True)
    h = hashlib.sha256()
    h.update(_result_digest(result).encode())
    if result.faults is not None:
        import json

        h.update(
            json.dumps(result.faults.to_dict(), sort_keys=True).encode()
        )
    return h.hexdigest()


class TestGoldenFaultDigest:
    """One pinned end-to-end digest under a fixed non-trivial plan.

    If this moves, either the RNG stream layout or the fault semantics
    changed — both need a deliberate digest update with justification.
    """

    PLAN = FaultPlan(
        events=(
            FaultEvent(kind=FaultKind.BS_CRASH, start_s=5, end_s=25, target=2),
            FaultEvent(kind=FaultKind.QP_STALL, start_s=10, end_s=30, target=4),
            FaultEvent(
                kind=FaultKind.DEGRADE,
                start_s=0,
                end_s=40,
                component="chunk_server",
                multiplier=3.0,
            ),
        ),
        policy=RedirectPolicy.REDIRECT,
        retry_backoff_us=250.0,
    )

    def test_digest_is_stable_across_runs(self):
        assert _digest_plan_outcome(self.PLAN) == _digest_plan_outcome(
            self.PLAN
        )

    def test_scalar_path_agrees(self):
        fast = _run(self.PLAN, fast=True)
        slow = _run(self.PLAN, fast=False)
        assert _result_digest(fast) == _result_digest(slow)
