"""Fast-path equivalence, worker stability, and regression tests.

Covers the vectorized pass 1 (must be bit-identical to the scalar
reference, dtypes included), the seed-determinism of the whole simulator
(golden digest, stable across worker counts), and the ``_ColumnBuffer``
empty-dtype / ``_normalized_probabilities`` regressions.
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.hypervisor import HypervisorSet
from repro.cluster.simulator import (
    EBSSimulator,
    SimulationConfig,
    _ColumnBuffer,
    _normalized_probabilities,
)
from repro.cluster.storage import StorageCluster
from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet
from repro.workload.generator import WorkloadGenerator

#: SHA-256 over every trace column, metric column, and load grid of the
#: golden run below.  Any change to RNG stream layout, accumulation
#: order, or output dtypes shows up here.
GOLDEN_DIGEST = (
    "c687f029ac846fe4bb7c258242262c6667979a881ac3af485d4d299b976fbaf8"
)

GOLDEN_FLEET = FleetConfig(
    dc_id=0, num_users=4, num_vms=12, num_compute_nodes=4,
    num_storage_nodes=3,
)
GOLDEN_SIM = SimulationConfig(duration_seconds=45, trace_sampling_rate=0.2)


def _golden_run(workers: int = 1):
    rngs = RngFactory(11)
    fleet = build_fleet(GOLDEN_FLEET, rngs)
    return EBSSimulator(fleet, GOLDEN_SIM, rngs).run(workers=workers)


def _result_digest(result) -> str:
    h = hashlib.sha256()
    for name in sorted(result.traces.columns()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(result.traces.columns()[name]).tobytes())
    for table in (result.metrics.compute, result.metrics.storage):
        for name in sorted(table.columns()):
            h.update(name.encode())
            h.update(np.ascontiguousarray(table.columns()[name]).tobytes())
    h.update(np.ascontiguousarray(result.wt_load_bps).tobytes())
    h.update(np.ascontiguousarray(result.bs_load_bps).tobytes())
    return h.hexdigest()


def _tables_equal(a, b) -> bool:
    acols, bcols = a.columns(), b.columns()
    return acols.keys() == bcols.keys() and all(
        acols[name].dtype == bcols[name].dtype
        and np.array_equal(acols[name], bcols[name])
        for name in acols
    )


class TestPass1Equivalence:
    @pytest.fixture(scope="class")
    def pass1_inputs(self, small_fleet):
        config = SimulationConfig(
            duration_seconds=120, trace_sampling_rate=1.0 / 10.0
        )
        rngs = RngFactory(13)
        simulator = EBSSimulator(small_fleet, config, rngs)
        generator = WorkloadGenerator(
            small_fleet, config.duration_seconds, rngs,
            diurnal_amplitude=config.diurnal_amplitude,
        )
        traffic = generator.generate_all()
        qp_to_wt, seg_to_bs = simulator.bindings(
            HypervisorSet(small_fleet), StorageCluster(small_fleet)
        )
        return simulator, traffic, qp_to_wt, seg_to_bs

    def test_fast_pass1_bit_identical(self, pass1_inputs):
        simulator, traffic, qp_to_wt, seg_to_bs = pass1_inputs
        ref = simulator.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=False)
        fast = simulator.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=True)
        np.testing.assert_array_equal(ref[0], fast[0])  # WT load grid
        np.testing.assert_array_equal(ref[1], fast[1])  # BS load grid
        assert _tables_equal(ref[2], fast[2])           # compute metrics
        assert _tables_equal(ref[3], fast[3])           # storage metrics

    def test_config_knob_selects_path(self, small_fleet):
        config = SimulationConfig(
            duration_seconds=30, trace_sampling_rate=1.0 / 10.0,
            use_fast_path=False,
        )
        slow = EBSSimulator(small_fleet, config, RngFactory(3)).run()
        fast = EBSSimulator(
            small_fleet, replace(config, use_fast_path=True), RngFactory(3)
        ).run()
        assert _tables_equal(slow.metrics.compute, fast.metrics.compute)
        assert _tables_equal(slow.metrics.storage, fast.metrics.storage)
        np.testing.assert_array_equal(slow.wt_load_bps, fast.wt_load_bps)


class TestSeedDeterminism:
    def test_golden_digest(self):
        assert _result_digest(_golden_run()) == GOLDEN_DIGEST

    def test_workers_do_not_change_results(self):
        assert _result_digest(_golden_run(workers=2)) == GOLDEN_DIGEST

    def test_study_build_workers_stable(self):
        config = replace(
            StudyConfig.scale("small"),
            duration_seconds=60,
        )
        sequential = Study(config)
        sequential.build(workers=1)
        parallel = Study(config)
        parallel.build(workers=2)
        for a, b in zip(sequential.results, parallel.results):
            assert _result_digest(a) == _result_digest(b)


class TestColumnBufferRegression:
    def test_empty_buffer_keeps_declared_dtypes(self):
        # Regression: the empty fallback used to be float64 for every
        # column, so a quiet fleet produced float id columns.
        buf = _ColumnBuffer(("vd_id", "qp_id"), ("read_bytes",))
        out = buf.concatenated()
        assert out["vd_id"].dtype == np.int64
        assert out["qp_id"].dtype == np.int64
        assert out["read_bytes"].dtype == np.float64
        assert all(arr.size == 0 for arr in out.values())

    def test_zero_traffic_fleet_yields_typed_empty_datasets(self):
        # Thresholds above any plausible per-QP load plus a vanishing
        # sampling rate: nothing is recorded or traced, but dataset
        # columns must still carry their declared dtypes.
        rngs = RngFactory(17)
        fleet = build_fleet(GOLDEN_FLEET, rngs)
        config = SimulationConfig(
            duration_seconds=20,
            trace_sampling_rate=1e-12,
            min_record_bytes=1e18,
            min_record_iops=1e18,
        )
        result = EBSSimulator(fleet, config, rngs).run()
        assert len(result.metrics.compute) == 0
        assert len(result.metrics.storage) == 0
        assert len(result.traces) == 0
        for table in (
            result.metrics.compute, result.metrics.storage, result.traces
        ):
            for name in table.INT_FIELDS:
                assert table.columns()[name].dtype == np.int64, name
            for name in table.FLOAT_FIELDS:
                assert table.columns()[name].dtype == np.float64, name


class TestNormalizedProbabilities:
    def test_renormalizes_float_drift(self):
        # Regression: accumulated float drift made rng.choice reject the
        # weight vector outright.
        drifted = np.array([0.25, 0.25, 0.25, 0.25 + 3e-8])
        p = _normalized_probabilities(drifted, "qp weights")
        assert p.sum() == pytest.approx(1.0, abs=1e-15)
        rng = np.random.default_rng(0)
        rng.choice(4, size=10, p=p)  # must not raise

    def test_rejects_real_bugs(self):
        with pytest.raises(ConfigError):
            _normalized_probabilities(np.array([0.5, -0.1]), "w")
        with pytest.raises(ConfigError):
            _normalized_probabilities(np.array([0.0, 0.0]), "w")
        with pytest.raises(ConfigError):
            _normalized_probabilities(np.array([np.nan, 1.0]), "w")
        with pytest.raises(ConfigError):
            _normalized_probabilities(np.zeros(0), "w")
