"""Tests for the hypervisor QP-to-WT binding."""

import pytest

from repro.cluster import Hypervisor, HypervisorSet
from repro.util.errors import ConfigError, SimulationError


class TestHypervisor:
    def test_round_robin_binding(self, small_fleet):
        hypervisor = Hypervisor(small_fleet, 0)
        qps = hypervisor.qp_ids
        workers = hypervisor.worker_ids
        for index, qp in enumerate(qps):
            assert hypervisor.wt_of(qp) == workers[index % len(workers)]

    def test_every_node_qp_bound(self, small_fleet):
        for node_id in range(small_fleet.config.num_compute_nodes):
            hypervisor = Hypervisor(small_fleet, node_id)
            node_qps = [
                qp.qp_id
                for qp in small_fleet.queue_pairs
                if qp.compute_node_id == node_id
            ]
            assert sorted(hypervisor.qp_ids) == sorted(node_qps)

    def test_worker_ids_are_global(self, small_fleet):
        per = small_fleet.config.workers_per_node
        hypervisor = Hypervisor(small_fleet, 1)
        assert hypervisor.worker_ids == list(range(per, 2 * per))

    def test_rebind(self, small_fleet):
        hypervisor = Hypervisor(small_fleet, 0)
        qp = hypervisor.qp_ids[0]
        target = hypervisor.worker_ids[-1]
        hypervisor.rebind(qp, target)
        assert hypervisor.wt_of(qp) == target

    def test_rebind_rejects_foreign_wt(self, small_fleet):
        hypervisor = Hypervisor(small_fleet, 0)
        qp = hypervisor.qp_ids[0]
        with pytest.raises(SimulationError):
            hypervisor.rebind(qp, 10_000)

    def test_rebind_rejects_foreign_qp(self, small_fleet):
        hypervisor = Hypervisor(small_fleet, 0)
        with pytest.raises(SimulationError):
            hypervisor.rebind(999_999, hypervisor.worker_ids[0])

    def test_swap_workers(self, small_fleet):
        hypervisor = Hypervisor(small_fleet, 0)
        wt_a, wt_b = hypervisor.worker_ids[:2]
        qps_a = hypervisor.qps_of_wt(wt_a)
        qps_b = hypervisor.qps_of_wt(wt_b)
        hypervisor.swap_workers(wt_a, wt_b)
        assert hypervisor.qps_of_wt(wt_b) == qps_a
        assert hypervisor.qps_of_wt(wt_a) == qps_b

    def test_swap_preserves_total_qps(self, small_fleet):
        hypervisor = Hypervisor(small_fleet, 0)
        before = set(hypervisor.qp_ids)
        hypervisor.swap_workers(*hypervisor.worker_ids[:2])
        assert set(hypervisor.qp_ids) == before

    def test_rejects_bad_node(self, small_fleet):
        with pytest.raises(ConfigError):
            Hypervisor(small_fleet, 10_000)


class TestHypervisorSet:
    def test_covers_all_nodes(self, small_fleet):
        hypervisors = HypervisorSet(small_fleet)
        assert len(hypervisors) == small_fleet.config.num_compute_nodes

    def test_global_lookup(self, small_fleet):
        hypervisors = HypervisorSet(small_fleet)
        for qp in small_fleet.queue_pairs[:10]:
            wt = hypervisors.wt_of_qp(qp.qp_id)
            assert small_fleet.node_of_wt(wt) == qp.compute_node_id

    def test_binding_arrays_complete(self, small_fleet):
        hypervisors = HypervisorSet(small_fleet)
        binding = hypervisors.binding_arrays()
        assert set(binding) == {qp.qp_id for qp in small_fleet.queue_pairs}
