"""Redundancy model unit + property tests (config, placement, policies).

The redesigned placement surface's contract:

- ``RedundancyConfig`` parses/rejects specs and round-trips through its
  canonical ``spec`` string;
- ``ring_table`` / ``PlacementMap`` never co-locate two copies of one
  segment, under construction and under any sequence of valid moves;
- every read policy emits a weight matrix whose rows sum to 1 with each
  slot under the scheme's cap;
- the deprecated accessors still work but warn.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import StorageCluster
from repro.cluster.redundancy import (
    READ_POLICY_NAMES,
    PlacementMap,
    RedundancyConfig,
    assign_read_weights,
    ring_table,
)
from repro.util.errors import ConfigError, SimulationError


class TestRedundancyConfig:
    @pytest.mark.parametrize(
        "spec, width, fanout, scale",
        [
            ("r=1", 1, 1, 1.0),
            ("r=3", 3, 1, 1.0),
            ("ec=4+2", 6, 4, 0.25),
            ("ec=2+1", 3, 2, 0.5),
        ],
    )
    def test_parse_shapes(self, spec, width, fanout, scale):
        config = RedundancyConfig.parse(spec)
        assert config.width == width
        assert config.read_fanout == fanout
        assert config.write_weight_scale == pytest.approx(scale)
        assert config.spec == spec

    def test_parse_tolerates_whitespace_and_case(self):
        assert RedundancyConfig.parse(" R = 3 ").spec == "r=3"
        assert RedundancyConfig.parse("EC=4 + 2").spec == "ec=4+2"

    @pytest.mark.parametrize(
        "spec", ["", "r=0", "r=-1", "ec=4", "ec=0+2", "ec=4+0", "raid=5", "3"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            RedundancyConfig.parse(spec)

    def test_only_single_copy_primary_is_trivial(self):
        assert RedundancyConfig.parse("r=1").is_trivial
        assert not RedundancyConfig.parse("r=2").is_trivial
        assert not RedundancyConfig.parse("ec=2+1").is_trivial

    def test_validate_against_needs_width_servers(self):
        RedundancyConfig.parse("ec=4+2").validate_against(6)
        with pytest.raises(ConfigError, match="6 distinct"):
            RedundancyConfig.parse("ec=4+2").validate_against(5)

    def test_constructor_cross_field_validation(self):
        with pytest.raises(ConfigError):
            RedundancyConfig(scheme="replication", r=2, k=4)
        with pytest.raises(ConfigError):
            RedundancyConfig(scheme="ec", k=4, m=2, r=3)
        with pytest.raises(ConfigError):
            RedundancyConfig(scheme="mirroring")

    @given(r=st.integers(1, 12))
    def test_replication_spec_round_trips(self, r):
        config = RedundancyConfig.parse(f"r={r}")
        assert RedundancyConfig.parse(config.spec) == config

    @given(k=st.integers(1, 12), m=st.integers(1, 6))
    def test_ec_spec_round_trips(self, k, m):
        config = RedundancyConfig.parse(f"ec={k}+{m}")
        assert RedundancyConfig.parse(config.spec) == config
        assert config.width == k + m


class TestRingTable:
    def test_width_one_is_the_primary_column(self):
        primaries = [3, 1, 4, 1, 5]
        table = ring_table(primaries, 1, 8)
        np.testing.assert_array_equal(table[:, 0], primaries)

    @given(
        num_bs=st.integers(2, 16),
        width=st.integers(1, 16),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_rows_never_co_locate(self, num_bs, width, data):
        if width > num_bs:
            with pytest.raises(SimulationError):
                ring_table([0], width, num_bs)
            return
        primaries = data.draw(
            st.lists(st.integers(0, num_bs - 1), min_size=1, max_size=40)
        )
        table = ring_table(primaries, width, num_bs)
        assert table.shape == (len(primaries), width)
        for row in table:
            assert len(set(row.tolist())) == width

    def test_zero_width_rejected(self):
        with pytest.raises(SimulationError):
            ring_table([0, 1], 0, 4)


class TestPlacementMap:
    def _map(self, num_segments=10, width=3, num_bs=6):
        primaries = np.arange(num_segments, dtype=np.int64) % num_bs
        return PlacementMap(ring_table(primaries, width, num_bs), num_bs)

    def test_construction_rejects_co_located_rows(self):
        with pytest.raises(SimulationError, match="co-located"):
            PlacementMap(np.array([[0, 1], [2, 2]]), 4)

    def test_construction_rejects_out_of_range_cells(self):
        with pytest.raises(SimulationError, match="outside"):
            PlacementMap(np.array([[0, 5]]), 4)

    def test_one_dim_input_becomes_width_one(self):
        placement = PlacementMap(np.array([2, 0, 1]), 3)
        assert placement.width == 1
        assert placement.primary_of(0) == 2

    def test_set_slot_moves_exactly_one_copy(self):
        placement = self._map()
        before = placement.replicas_of(0)
        free = next(
            bs for bs in range(placement.num_block_servers)
            if bs not in before
        )
        src = placement.set_slot(0, 1, free)
        assert src == before[1]
        after = placement.replicas_of(0)
        assert after[0] == before[0] and after[2] == before[2]
        assert after[1] == free
        placement.check_invariants()

    def test_set_slot_rejects_co_location(self):
        placement = self._map()
        primary = placement.primary_of(0)
        with pytest.raises(SimulationError, match="co-locate"):
            placement.set_slot(0, 1, primary)

    def test_set_slot_rejects_noop_and_bad_ids(self):
        placement = self._map()
        with pytest.raises(SimulationError, match="already lives"):
            placement.set_slot(0, 0, placement.primary_of(0))
        with pytest.raises(SimulationError, match="slots"):
            placement.set_slot(0, 9, 0)
        with pytest.raises(SimulationError, match="unknown"):
            placement.set_slot(10**9, 0, 0)
        with pytest.raises(SimulationError, match="unknown"):
            placement.set_slot(0, 0, 10**9)

    def test_lookup_surfaces_agree(self):
        placement = self._map()
        assert placement.primary_array()[3] == placement.primary_of(3)
        assert placement.primary_mapping()[3] == placement.primary_of(3)
        assert placement.slot_of(3, placement.replicas_of(3)[2]) == 2
        assert placement.slot_of(3, 10**6 % placement.num_block_servers) in (
            -1, 0, 1, 2,
        )
        for bs in range(placement.num_block_servers):
            for seg, slot in placement.resident_on(bs):
                assert placement.replicas_of(seg)[slot] == bs

    @given(
        moves=st.lists(
            st.tuples(
                st.integers(0, 10_000),
                st.integers(0, 10_000),
                st.integers(0, 10_000),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_moves_never_co_locate_or_lose_copies(self, moves):
        placement = self._map(num_segments=12, width=3, num_bs=7)
        for seg_pick, slot_pick, bs_pick in moves:
            seg = seg_pick % placement.num_segments
            slot = slot_pick % placement.width
            dest = bs_pick % placement.num_block_servers
            if dest in placement.replicas_of(seg):
                continue
            placement.set_slot(seg, slot, dest)
        placement.check_invariants()
        total = sum(
            placement.resident_count(bs)
            for bs in range(placement.num_block_servers)
        )
        assert total == placement.num_segments * placement.width
        for seg in range(placement.num_segments):
            copies = placement.replicas_of(seg)
            assert len(set(copies)) == placement.width

    def test_copy_is_independent(self):
        placement = self._map()
        clone = placement.copy()
        free = next(
            bs for bs in range(placement.num_block_servers)
            if bs not in placement.replicas_of(0)
        )
        clone.set_slot(0, 0, free)
        assert placement.primary_of(0) != clone.primary_of(0)

    def test_table_view_is_read_only(self):
        placement = self._map()
        with pytest.raises(ValueError):
            placement.table[0, 0] = 99


def _policy_inputs(seed, num_segments=24, num_bs=8):
    rng = np.random.default_rng(seed)
    primaries = rng.integers(0, num_bs, size=num_segments)
    read_mass = rng.gamma(0.4, 2e9, size=num_segments)  # heavy-tailed, like §3
    write_mass = rng.gamma(0.4, 4e9, size=num_segments)
    return primaries, read_mass, write_mass


class TestReadPolicies:
    @pytest.mark.parametrize("policy", READ_POLICY_NAMES)
    @pytest.mark.parametrize("spec", ["r=2", "r=3", "ec=2+1", "ec=4+2"])
    def test_weight_contract(self, policy, spec):
        config = RedundancyConfig.parse(spec)
        num_bs = 8
        primaries, read_mass, write_mass = _policy_inputs(5)
        table = ring_table(primaries, config.width, num_bs)
        weights = assign_read_weights(
            policy, config, table, read_mass, write_mass, num_bs,
            rng=np.random.default_rng(7),
        )
        assert weights.shape == table.shape
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-9)
        assert float(weights.min()) >= -1e-12
        assert float(weights.max()) <= config.read_weight_cap + 1e-9

    @pytest.mark.parametrize("policy", READ_POLICY_NAMES)
    def test_deterministic_given_same_rng_stream(self, policy):
        config = RedundancyConfig.parse("r=3")
        primaries, read_mass, write_mass = _policy_inputs(11)
        table = ring_table(primaries, config.width, 8)
        runs = [
            assign_read_weights(
                policy, config, table, read_mass, write_mass, 8,
                rng=np.random.default_rng(123),
            )
            for __ in range(2)
        ]
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_primary_policy_matches_its_name(self):
        config = RedundancyConfig.parse("r=3")
        primaries, read_mass, write_mass = _policy_inputs(2)
        table = ring_table(primaries, 3, 8)
        weights = assign_read_weights(
            "primary", config, table, read_mass, write_mass, 8
        )
        np.testing.assert_array_equal(weights[:, 0], 1.0)
        np.testing.assert_array_equal(weights[:, 1:], 0.0)

    def test_load_aware_policies_beat_primary_on_cov(self):
        # The point of the exercise: steering reads off the primary copy
        # flattens the per-BS load distribution.
        config = RedundancyConfig.parse("r=3")
        num_bs = 8
        primaries, read_mass, write_mass = _policy_inputs(3, num_segments=64)
        table = ring_table(primaries, 3, num_bs)

        def cov(policy):
            weights = assign_read_weights(
                policy, config, table, read_mass, write_mass, num_bs,
                rng=np.random.default_rng(1),
            )
            load = np.zeros(num_bs)
            np.add.at(load, table.ravel(), (read_mass[:, None] * weights).ravel())
            np.add.at(load, table.ravel(), np.repeat(write_mass, 3))
            return float(np.std(load) / np.mean(load))

        baseline = cov("primary")
        assert cov("least_loaded") <= baseline
        assert cov("water_filling") <= baseline

    def test_unknown_policy_rejected(self):
        config = RedundancyConfig.parse("r=2")
        primaries, read_mass, write_mass = _policy_inputs(4)
        with pytest.raises(ConfigError, match="unknown read policy"):
            assign_read_weights(
                "round_robin", config, ring_table(primaries, 2, 8),
                read_mass, write_mass, 8,
            )


class TestStorageClusterRedundancy:
    def test_width_follows_the_scheme(self, small_fleet):
        storage = StorageCluster(
            small_fleet, redundancy=RedundancyConfig.parse("r=3")
        )
        assert storage.width == 3
        assert storage.scheme.spec == "r=3"
        for segment in small_fleet.segments:
            copies = storage.replicas_of(segment.segment_id)
            assert copies[0] == segment.block_server_id
            assert len(set(copies)) == 3
        storage.check_invariants()

    def test_migrate_respects_co_location(self, small_fleet):
        storage = StorageCluster(
            small_fleet, redundancy=RedundancyConfig.parse("r=2")
        )
        seg = small_fleet.segments[0].segment_id
        primary, replica = storage.replicas_of(seg)
        with pytest.raises(SimulationError):
            storage.migrate(seg, replica)  # would co-locate with slot 1
        free = next(
            bs for bs in range(storage.num_block_servers)
            if bs not in (primary, replica)
        )
        storage.migrate(seg, free, slot=1)
        assert storage.replicas_of(seg) == (primary, free)
        storage.check_invariants()

    def test_decommission_never_co_locates(self, small_fleet):
        storage = StorageCluster(
            small_fleet, redundancy=RedundancyConfig.parse("r=3")
        )
        events = storage.decommission(0, timestamp=1)
        assert events
        storage.check_invariants()
        assert storage.resident_on(0) == set()
        for seg in range(storage.num_segments):
            copies = storage.replicas_of(seg)
            assert 0 not in copies
            assert len(set(copies)) == 3

    @given(decom=st.lists(st.integers(0, 5), unique=True, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_decommission_sequences_conserve_copies(self, small_fleet, decom):
        storage = StorageCluster(
            small_fleet, redundancy=RedundancyConfig.parse("r=2")
        )
        for bs in decom:
            if len(storage.active_block_servers) <= 3:
                break
            storage.decommission(bs % storage.num_block_servers)
        storage.check_invariants()
        total = sum(
            storage.placement.resident_count(bs)
            for bs in range(storage.num_block_servers)
        )
        assert total == storage.num_segments * 2


class TestDeprecatedShims:
    def test_shims_warn_but_agree_with_the_new_api(self, small_fleet):
        storage = StorageCluster(small_fleet)
        seg = small_fleet.segments[0].segment_id
        with pytest.warns(DeprecationWarning, match="primary_of"):
            assert storage.block_server_of(seg) == storage.primary_of(seg)
        with pytest.warns(DeprecationWarning, match="primaries_on"):
            assert storage.segments_of(0) == storage.primaries_on(0)
        with pytest.warns(DeprecationWarning, match="primary_array"):
            snapshot = storage.placement_snapshot()
        assert snapshot == storage.placement.primary_mapping()

    def test_new_api_does_not_warn(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            storage.primary_of(0)
            storage.primaries_on(0)
            storage.placement.primary_mapping()
            storage.primary_array()
