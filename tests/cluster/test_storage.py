"""Tests for the storage cluster's segment placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import StorageCluster
from repro.util.errors import SimulationError


class TestStorageCluster:
    def test_initial_placement_matches_fleet(self, small_fleet):
        storage = StorageCluster(small_fleet)
        for segment in small_fleet.segments:
            assert (
                storage.primary_of(segment.segment_id)
                == segment.block_server_id
            )

    def test_invariants_hold_initially(self, small_fleet):
        StorageCluster(small_fleet).check_invariants()

    def test_migrate_moves_segment(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = small_fleet.segments[0].segment_id
        source = storage.primary_of(segment)
        target = (source + 1) % storage.num_block_servers
        storage.migrate(segment, target, timestamp=42)
        assert storage.primary_of(segment) == target
        assert segment in storage.primaries_on(target)
        assert segment not in storage.primaries_on(source)
        storage.check_invariants()

    def test_migration_logged(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = small_fleet.segments[0].segment_id
        source = storage.primary_of(segment)
        target = (source + 1) % storage.num_block_servers
        storage.migrate(segment, target, timestamp=7)
        event = storage.migration_log[-1]
        assert event.segment_id == segment
        assert event.from_bs == source
        assert event.to_bs == target
        assert event.timestamp == 7

    def test_noop_migration_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = small_fleet.segments[0].segment_id
        with pytest.raises(SimulationError):
            storage.migrate(segment, storage.primary_of(segment))

    def test_unknown_segment_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with pytest.raises(SimulationError):
            storage.migrate(10**9, 0)

    def test_unknown_destination_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with pytest.raises(SimulationError):
            storage.migrate(small_fleet.segments[0].segment_id, 10**9)

    def test_storage_node_of_bs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        per = small_fleet.config.block_servers_per_node
        assert storage.storage_node_of_bs(0) == 0
        assert storage.storage_node_of_bs(per) == 1

    @settings(max_examples=20, deadline=None)
    @given(moves=st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)), max_size=30))
    def test_random_migrations_conserve_segments(self, small_fleet, moves):
        # Property: any sequence of valid migrations never loses or
        # duplicates a segment.
        storage = StorageCluster(small_fleet)
        num_segments = storage.num_segments
        for seg_pick, bs_pick in moves:
            segment = seg_pick % num_segments
            target = bs_pick % storage.num_block_servers
            if storage.primary_of(segment) == target:
                continue
            storage.migrate(segment, target)
        storage.check_invariants()
        assert storage.num_segments == num_segments


class TestTransientFailures:
    """Fail/recover semantics the fault-injection replay relies on."""

    def test_fail_marks_bs_not_serving_but_keeps_segments(self, small_fleet):
        storage = StorageCluster(small_fleet)
        resident = storage.primaries_on(0)
        storage.fail_block_server(0, timestamp=5)
        assert storage.is_failed(0)
        assert not storage.is_serving(0)
        assert storage.is_active(0)  # failed, not decommissioned
        assert storage.primaries_on(0) == resident  # no evacuation
        storage.check_invariants()

    def test_recover_restores_serving(self, small_fleet):
        storage = StorageCluster(small_fleet)
        storage.fail_block_server(2, timestamp=5)
        storage.recover_block_server(2, timestamp=9)
        assert storage.is_serving(2)
        assert storage.failed_block_servers == set()

    def test_failures_nest_by_depth(self, small_fleet):
        # Overlapping fault windows on the same BS: the BS serves again
        # only after the LAST recovery.
        storage = StorageCluster(small_fleet)
        storage.fail_block_server(1)
        storage.fail_block_server(1)
        storage.recover_block_server(1)
        assert storage.is_failed(1)
        storage.recover_block_server(1)
        assert storage.is_serving(1)

    def test_recover_unfailed_raises(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with pytest.raises(SimulationError, match="not failed"):
            storage.recover_block_server(0)

    def test_migrate_onto_failed_bs_raises(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = next(iter(storage.primaries_on(0)))
        storage.fail_block_server(1)
        with pytest.raises(SimulationError, match="failed"):
            storage.migrate(segment, 1)
        # The rejected migration must not have mutated placement.
        assert storage.primary_of(segment) == 0
        storage.check_invariants()
        storage.recover_block_server(1)
        storage.migrate(segment, 1)
        assert storage.primary_of(segment) == 1

    def test_failure_log_records_both_transitions(self, small_fleet):
        storage = StorageCluster(small_fleet)
        storage.fail_block_server(3, timestamp=10)
        storage.recover_block_server(3, timestamp=20)
        assert [
            (e.bs_id, e.action, e.timestamp) for e in storage.failure_log
        ] == [(3, "fail", 10), (3, "recover", 20)]

    def test_serving_excludes_failed_and_decommissioned(self, small_fleet):
        storage = StorageCluster(small_fleet)
        every = set(range(storage.num_block_servers))
        assert storage.serving_block_servers == every
        storage.fail_block_server(0)
        storage.decommission(1)
        assert storage.serving_block_servers == every - {0, 1}
        assert storage.failed_block_servers == {0}

    def test_decommission_evacuates_only_to_serving_bs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        storage.fail_block_server(2)
        events = storage.decommission(0, timestamp=3)
        assert events  # BS 0 held segments
        assert all(event.to_bs != 2 for event in events)
        assert all(event.to_bs != 0 for event in events)
        storage.check_invariants()

    def test_is_failed_unknown_bs_raises(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with pytest.raises(SimulationError, match="unknown"):
            storage.is_failed(10**9)
        with pytest.raises(SimulationError, match="unknown"):
            storage.fail_block_server(10**9)
