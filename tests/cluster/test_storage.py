"""Tests for the storage cluster's segment placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import StorageCluster
from repro.util.errors import SimulationError


class TestStorageCluster:
    def test_initial_placement_matches_fleet(self, small_fleet):
        storage = StorageCluster(small_fleet)
        for segment in small_fleet.segments:
            assert (
                storage.block_server_of(segment.segment_id)
                == segment.block_server_id
            )

    def test_invariants_hold_initially(self, small_fleet):
        StorageCluster(small_fleet).check_invariants()

    def test_migrate_moves_segment(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = small_fleet.segments[0].segment_id
        source = storage.block_server_of(segment)
        target = (source + 1) % storage.num_block_servers
        storage.migrate(segment, target, timestamp=42)
        assert storage.block_server_of(segment) == target
        assert segment in storage.segments_of(target)
        assert segment not in storage.segments_of(source)
        storage.check_invariants()

    def test_migration_logged(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = small_fleet.segments[0].segment_id
        source = storage.block_server_of(segment)
        target = (source + 1) % storage.num_block_servers
        storage.migrate(segment, target, timestamp=7)
        event = storage.migration_log[-1]
        assert event.segment_id == segment
        assert event.from_bs == source
        assert event.to_bs == target
        assert event.timestamp == 7

    def test_noop_migration_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        segment = small_fleet.segments[0].segment_id
        with pytest.raises(SimulationError):
            storage.migrate(segment, storage.block_server_of(segment))

    def test_unknown_segment_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with pytest.raises(SimulationError):
            storage.migrate(10**9, 0)

    def test_unknown_destination_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        with pytest.raises(SimulationError):
            storage.migrate(small_fleet.segments[0].segment_id, 10**9)

    def test_storage_node_of_bs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        per = small_fleet.config.block_servers_per_node
        assert storage.storage_node_of_bs(0) == 0
        assert storage.storage_node_of_bs(per) == 1

    @settings(max_examples=20, deadline=None)
    @given(moves=st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)), max_size=30))
    def test_random_migrations_conserve_segments(self, small_fleet, moves):
        # Property: any sequence of valid migrations never loses or
        # duplicates a segment.
        storage = StorageCluster(small_fleet)
        num_segments = storage.num_segments
        for seg_pick, bs_pick in moves:
            segment = seg_pick % num_segments
            target = bs_pick % storage.num_block_servers
            if storage.block_server_of(segment) == target:
                continue
            storage.migrate(segment, target)
        storage.check_invariants()
        assert storage.num_segments == num_segments
