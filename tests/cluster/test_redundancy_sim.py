"""Simulator-level redundancy tests: parity, digests, failover, guards.

Pins the three load-bearing guarantees of the redundancy redesign:

- **r=1 golden parity** — ``redundancy="r=1"`` with the primary policy
  is byte-for-byte the no-redundancy simulator (same golden digest), on
  both pass-1 paths;
- **differential** — for every read policy and for EC, the vectorized
  pass-1 is bit-identical to the scalar reference, with and without a
  fault plan;
- **failover accounting** — IO mass is conserved (delivered + dropped
  == offered) when a crash window hits a replicated cluster, and the
  unsupported combinations (streaming, qp_stall) are rejected loudly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.hypervisor import HypervisorSet
from repro.cluster.simulator import EBSSimulator, SimulationConfig
from repro.cluster.storage import StorageCluster
from repro.cluster.redundancy import READ_POLICY_NAMES, RedundancyConfig
from repro.engine.executor import StreamingSimulator
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
)
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload.fleet import build_fleet
from repro.workload.generator import WorkloadGenerator

from tests.cluster.test_simulator_fastpath import (
    GOLDEN_DIGEST,
    GOLDEN_FLEET,
    GOLDEN_SIM,
    _result_digest,
    _tables_equal,
)

#: Non-trivial schemes that fit the 3-BS golden fleet.
SCHEMES = ["r=2", "r=3", "ec=2+1"]


def _run(redundancy, read_policy="primary", fast=True, plan=None, seed=11):
    rngs = RngFactory(seed)
    fleet = build_fleet(GOLDEN_FLEET, rngs)
    config = replace(
        GOLDEN_SIM,
        use_fast_path=fast,
        redundancy=redundancy,
        read_policy=read_policy,
    )
    return EBSSimulator(fleet, config, rngs, fault_plan=plan).run()


class TestGoldenParity:
    """r=1 + primary must run the legacy code paths untouched."""

    def test_r1_primary_reproduces_the_golden_digest(self):
        assert _result_digest(_run("r=1")) == GOLDEN_DIGEST

    def test_r1_primary_reference_path_matches_too(self):
        assert _result_digest(_run("r=1", fast=False)) == GOLDEN_DIGEST

    def test_trivial_scheme_is_detected(self):
        config = replace(GOLDEN_SIM, redundancy="r=1")
        assert config.redundancy_config() is None
        assert SimulationConfig().redundancy_config() is None
        nontrivial = replace(
            GOLDEN_SIM, redundancy="r=1", read_policy="least_loaded"
        )
        assert nontrivial.redundancy_config() is not None

    def test_nontrivial_redundancy_changes_the_result(self):
        assert _result_digest(_run("r=2")) != GOLDEN_DIGEST


class TestDifferential:
    """Scalar vs vectorized pass 1 under every policy and scheme."""

    @pytest.fixture(scope="class")
    def inputs(self, small_fleet):
        rngs = RngFactory(13)
        config = SimulationConfig(
            duration_seconds=90, trace_sampling_rate=1.0 / 10.0
        )
        generator = WorkloadGenerator(
            small_fleet, config.duration_seconds, rngs,
            diurnal_amplitude=config.diurnal_amplitude,
        )
        traffic = generator.generate_all()
        return small_fleet, config, traffic

    def _pass1_pair(self, fleet, config, traffic, plan=None):
        rngs = RngFactory(13)
        simulator = EBSSimulator(fleet, config, rngs, fault_plan=plan)
        storage = StorageCluster(
            fleet, redundancy=config.redundancy_config()
        )
        qp_to_wt, seg_to_bs = simulator.bindings(
            HypervisorSet(fleet), storage
        )
        ref = simulator.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=False)
        fast = simulator.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=True)
        return ref, fast

    @pytest.mark.parametrize("policy", READ_POLICY_NAMES)
    def test_fast_path_bit_identical_per_policy(self, inputs, policy):
        fleet, config, traffic = inputs
        config = replace(config, redundancy="r=3", read_policy=policy)
        ref, fast = self._pass1_pair(fleet, config, traffic)
        np.testing.assert_array_equal(ref[0], fast[0])
        np.testing.assert_array_equal(ref[1], fast[1])
        assert _tables_equal(ref[2], fast[2])
        assert _tables_equal(ref[3], fast[3])

    @pytest.mark.parametrize("spec", ["r=2", "ec=2+1", "ec=4+2"])
    def test_fast_path_bit_identical_per_scheme(self, inputs, spec):
        fleet, config, traffic = inputs
        config = replace(
            config, redundancy=spec, read_policy="least_loaded"
        )
        ref, fast = self._pass1_pair(fleet, config, traffic)
        np.testing.assert_array_equal(ref[0], fast[0])
        np.testing.assert_array_equal(ref[1], fast[1])
        assert _tables_equal(ref[2], fast[2])
        assert _tables_equal(ref[3], fast[3])

    def test_fast_path_bit_identical_under_a_crash_plan(self, inputs):
        fleet, config, traffic = inputs
        config = replace(
            config, redundancy="r=2", read_policy="least_loaded"
        )
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.BS_CRASH, start_s=20, end_s=50, target=1
                ),
            ),
            policy=RedirectPolicy.QUEUE,
        )
        ref, fast = self._pass1_pair(fleet, config, traffic, plan=plan)
        np.testing.assert_array_equal(ref[0], fast[0])
        np.testing.assert_array_equal(ref[1], fast[1])
        assert _tables_equal(ref[2], fast[2])
        assert _tables_equal(ref[3], fast[3])

    @pytest.mark.parametrize("spec", SCHEMES)
    def test_full_run_digest_stable_across_paths(self, spec):
        slow = _run(spec, read_policy="power_of_two", fast=False)
        fast = _run(spec, read_policy="power_of_two", fast=True)
        assert _result_digest(slow) == _result_digest(fast)

    def test_same_seed_same_digest(self):
        a = _run("r=3", read_policy="power_of_two")
        b = _run("r=3", read_policy="power_of_two")
        assert _result_digest(a) == _result_digest(b)


def _run_unfiltered(redundancy, read_policy="primary"):
    """Zero recording thresholds: per-copy metric rows are never masked,
    so the byte totals below are exact, not threshold-dependent."""
    rngs = RngFactory(11)
    fleet = build_fleet(GOLDEN_FLEET, rngs)
    config = replace(
        GOLDEN_SIM,
        min_record_bytes=0.0,
        min_record_iops=0.0,
        redundancy=redundancy,
        read_policy=read_policy,
    )
    return EBSSimulator(fleet, config, rngs).run()


class TestReplicaMass:
    """The offered load grid carries the scheme's write fan-out."""

    @pytest.mark.parametrize(
        "spec, amplification",
        [("r=2", 2.0), ("r=3", 3.0), ("ec=2+1", 1.5)],
    )
    def test_write_bytes_amplified_by_the_scheme(self, spec, amplification):
        base = _run_unfiltered(None)
        redundant = _run_unfiltered(spec)
        base_write = float(
            np.asarray(base.metrics.storage.columns()["write_bytes"]).sum()
        )
        red_write = float(
            np.asarray(
                redundant.metrics.storage.columns()["write_bytes"]
            ).sum()
        )
        assert red_write == pytest.approx(
            amplification * base_write, rel=1e-9
        )

    def test_read_bytes_conserved_across_copies(self):
        # A read policy steers reads, it must not create or destroy them.
        base = _run_unfiltered(None)
        for policy in READ_POLICY_NAMES:
            redundant = _run_unfiltered("r=3", read_policy=policy)
            base_read = float(
                np.asarray(base.metrics.storage.columns()["read_bytes"]).sum()
            )
            red_read = float(
                np.asarray(
                    redundant.metrics.storage.columns()["read_bytes"]
                ).sum()
            )
            assert red_read == pytest.approx(base_read, rel=1e-9), policy

    def test_cov_monotone_under_replication(self):
        covs = []
        for spec in (None, "r=2", "r=3"):
            result = _run(spec, read_policy="least_loaded" if spec else "primary")
            load = result.bs_load_bps.sum(axis=1)
            covs.append(float(np.std(load) / np.mean(load)))
        assert covs[1] <= covs[0] + 1e-9
        assert covs[2] <= covs[1] + 1e-9


class TestFailover:
    def _crash_plan(self, target=0):
        return FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.BS_CRASH, start_s=15, end_s=30,
                    target=target,
                ),
            ),
            policy=RedirectPolicy.QUEUE,
        )

    @pytest.mark.parametrize("spec", SCHEMES)
    def test_io_mass_conserved_under_crash(self, spec):
        result = _run(
            spec, read_policy="least_loaded", plan=self._crash_plan()
        )
        outcome = result.faults
        assert outcome is not None
        offered = outcome.accounting.offered_storage_ios
        storage_residual, compute_residual = outcome.conservation_residual()
        assert storage_residual <= 1e-6 * max(offered, 1.0)
        assert compute_residual <= 1e-6 * max(
            outcome.accounting.offered_compute_ios, 1.0
        )

    def test_reads_fail_over_instead_of_queueing(self):
        # Single-copy: a crash queues/blocks reads on the downed BS.
        # Replicated: reads fail over to a surviving copy, so the
        # redirected counter moves and the queued counter drops.
        single = _run(None, plan=self._crash_plan()).faults
        replicated = _run(
            "r=3", read_policy="primary", plan=self._crash_plan()
        ).faults
        assert single.accounting.queued_ios > 0
        assert replicated.accounting.queued_ios == 0
        assert replicated.accounting.redirected_ios > 0

    def test_qp_stall_with_redundancy_rejected(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.QP_STALL, start_s=10, end_s=20, target=0
                ),
            ),
            policy=RedirectPolicy.QUEUE,
        )
        with pytest.raises(ConfigError, match="qp_stall"):
            _run("r=2", plan=plan)

    def test_qp_stall_with_trivial_redundancy_still_allowed(self):
        result = _run(
            "r=1",
            plan=FaultPlan(
                events=(
                    FaultEvent(
                        kind=FaultKind.QP_STALL, start_s=10, end_s=20,
                        target=0,
                    ),
                ),
                policy=RedirectPolicy.QUEUE,
            ),
        )
        assert result.faults is not None


class TestEngineGuards:
    def test_streaming_rejects_redundancy(self):
        rngs = RngFactory(11)
        fleet = build_fleet(GOLDEN_FLEET, rngs)
        config = replace(GOLDEN_SIM, redundancy="r=2")
        simulator = EBSSimulator(fleet, config, rngs)
        with pytest.raises(ConfigError, match="streaming"):
            StreamingSimulator(simulator, chunk_epochs=16)

    def test_streaming_accepts_trivial_redundancy(self):
        rngs = RngFactory(11)
        fleet = build_fleet(GOLDEN_FLEET, rngs)
        config = replace(GOLDEN_SIM, redundancy="r=1")
        simulator = EBSSimulator(fleet, config, rngs)
        StreamingSimulator(simulator, chunk_epochs=16)  # must not raise

    def test_scheme_too_wide_for_the_fleet_rejected(self):
        rngs = RngFactory(11)
        fleet = build_fleet(GOLDEN_FLEET, rngs)  # 3 BlockServers
        config = replace(GOLDEN_SIM, redundancy="ec=4+2")
        with pytest.raises(ConfigError, match="distinct"):
            EBSSimulator(fleet, config, rngs)

    def test_simulation_result_storage_carries_the_scheme(self):
        result = _run("r=3", read_policy="least_loaded")
        assert result.storage.width == 3
        assert result.storage.scheme == RedundancyConfig.parse("r=3")
        result.storage.check_invariants()
