"""Failure injection: BlockServer decommissioning."""

import numpy as np
import pytest

from repro.balancer import BalancerConfig, InterBsBalancer, make_importer
from repro.cluster import StorageCluster
from repro.util.errors import SimulationError
from repro.util.rng import spawn_rng


class TestDecommission:
    def test_evacuates_all_segments(self, small_fleet):
        storage = StorageCluster(small_fleet)
        victim = 0
        count = len(storage.primaries_on(victim))
        events = storage.decommission(victim)
        assert len(events) == count
        assert storage.primaries_on(victim) == set()
        assert not storage.is_active(victim)
        storage.check_invariants()

    def test_segments_spread_over_survivors(self, small_fleet):
        storage = StorageCluster(small_fleet)
        before = {
            bs: len(storage.primaries_on(bs))
            for bs in range(storage.num_block_servers)
        }
        storage.decommission(0)
        after = {
            bs: len(storage.primaries_on(bs))
            for bs in range(1, storage.num_block_servers)
        }
        # Every survivor got some of the load; the spread stays tight.
        assert sum(after.values()) == sum(before.values())
        assert max(after.values()) - min(after.values()) <= max(
            2, before[0]
        )

    def test_migrate_to_decommissioned_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        storage.decommission(1)
        segment = next(iter(storage.primaries_on(0)))
        with pytest.raises(SimulationError):
            storage.migrate(segment, 1)

    def test_double_decommission_rejected(self, small_fleet):
        storage = StorageCluster(small_fleet)
        storage.decommission(0)
        with pytest.raises(SimulationError):
            storage.decommission(0)

    def test_cannot_remove_last_bs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        for bs in range(storage.num_block_servers - 1):
            storage.decommission(bs)
        with pytest.raises(SimulationError):
            storage.decommission(storage.num_block_servers - 1)

    def test_balancer_survives_decommission(self, small_fleet):
        # The balancer never routes segments to a dead BS, even when the
        # importer strategy nominates it (its load history reads as zero).
        storage = StorageCluster(small_fleet)
        storage.decommission(2)
        matrix = np.ones((storage.num_segments, 5))
        for segment in storage.primaries_on(0):
            matrix[segment] = 60.0
        balancer = InterBsBalancer(
            storage,
            BalancerConfig(),
            make_importer("min_traffic"),
            rng=spawn_rng(0, "d"),
        )
        run = balancer.run(matrix)
        storage.check_invariants()
        for event in run.migrations:
            assert event.to_bs != 2

    def test_active_set_tracked(self, small_fleet):
        storage = StorageCluster(small_fleet)
        full = storage.active_block_servers
        storage.decommission(3)
        assert storage.active_block_servers == full - {3}
