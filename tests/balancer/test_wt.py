"""Tests for the hypervisor load-balancing analyses (§4)."""

import numpy as np
import pytest

from repro.balancer import (
    NodeType,
    RebindingConfig,
    classify_node,
    classify_nodes,
    hottest_qp_shares,
    hottest_wt_series,
    simulate_rebinding,
    vm_vd_qp_covs,
    wt_cov_samples,
)
from repro.cluster import EBSSimulator, Hypervisor, SimulationConfig
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def sim(small_fleet):
    config = SimulationConfig(
        duration_seconds=120, trace_sampling_rate=1.0 / 5.0
    )
    return EBSSimulator(small_fleet, config, RngFactory(11)).run()


class TestWtCovSamples:
    def test_values_in_unit_interval(self, sim):
        covs = wt_cov_samples(sim.metrics.compute, sim.fleet, 60, "read")
        assert covs
        assert all(0.0 <= c <= 1.0 + 1e-9 for c in covs)

    def test_direction_total(self, sim):
        covs = wt_cov_samples(sim.metrics.compute, sim.fleet, 60, "total")
        assert covs

    def test_rejects_bad_direction(self, sim):
        with pytest.raises(ConfigError):
            wt_cov_samples(sim.metrics.compute, sim.fleet, 60, "sideways")

    def test_rejects_bad_window(self, sim):
        with pytest.raises(ConfigError):
            wt_cov_samples(sim.metrics.compute, sim.fleet, 0, "read")

    def test_subsampling_reduces_count(self, sim):
        rng = RngFactory(1).get("x")
        full = wt_cov_samples(sim.metrics.compute, sim.fleet, 30, "write")
        some = wt_cov_samples(
            sim.metrics.compute, sim.fleet, 30, "write",
            sample_fraction=0.3, rng=rng,
        )
        assert 0 < len(some) <= len(full)

    def test_single_hot_wt_gives_high_cov(self, sim):
        # Build a synthetic table with one WT taking all traffic.
        from repro.trace.dataset import ComputeMetricTable

        table = ComputeMetricTable(
            timestamp=[0, 1, 2],
            cluster_id=[0] * 3,
            compute_node_id=[0] * 3,
            user_id=[0] * 3,
            vm_id=[0] * 3,
            vd_id=[0] * 3,
            wt_id=[0] * 3,
            qp_id=[0] * 3,
            read_bytes=[100.0, 100.0, 100.0],
            write_bytes=[0.0] * 3,
            read_iops=[1.0] * 3,
            write_iops=[0.0] * 3,
        )
        covs = wt_cov_samples(table, sim.fleet, 10, "read")
        assert covs and covs[0] == pytest.approx(1.0)


class TestVmVdQpCovs:
    def test_keys_and_ranges(self, sim):
        covs = vm_vd_qp_covs(sim.metrics.compute, sim.fleet, "write")
        assert set(covs) == {"vm2qp", "vm2vd", "vd2qp"}
        for values in covs.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)


class TestHottestQpShares:
    def test_shares_valid(self, sim):
        shares = hottest_qp_shares(sim.metrics.compute, sim.fleet, "write")
        assert shares
        assert all(0.0 < s <= 1.0 for s in shares)


class TestClassification:
    def test_every_active_node_classified(self, sim):
        fractions = classify_nodes(sim.metrics.compute, sim.fleet)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_idle_wt_detection(self, sim):
        # A node whose QP count is below its WT count must be Type I.
        fleet = sim.fleet
        per = fleet.config.workers_per_node
        for node_id in range(fleet.config.num_compute_nodes):
            qps = [
                qp for qp in fleet.queue_pairs
                if qp.compute_node_id == node_id
            ]
            node_type = classify_node(sim.metrics.compute, fleet, node_id)
            if len(qps) < per:
                assert node_type is NodeType.IDLE_WTS


class TestRebinding:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RebindingConfig(period_seconds=0)
        with pytest.raises(ConfigError):
            RebindingConfig(trigger_ratio=1.0)

    def test_outcome_fields(self, sim):
        outcome = simulate_rebinding(
            sim.traces,
            sim.hypervisors.node(0),
            RebindingConfig(period_seconds=0.1),
        )
        if outcome is not None:
            assert 0.0 <= outcome.rebinding_ratio <= 1.0
            assert outcome.rebinding_gain >= 0.0

    def test_rebinding_does_not_mutate_hypervisor(self, sim):
        hypervisor = sim.hypervisors.node(0)
        before = hypervisor.binding_snapshot()
        simulate_rebinding(sim.traces, hypervisor)
        assert hypervisor.binding_snapshot() == before

    def test_no_traces_returns_none(self, small_fleet, sim):
        empty = sim.traces.where(np.zeros(len(sim.traces), dtype=bool))
        assert simulate_rebinding(empty, Hypervisor(small_fleet, 0)) is None

    def test_idle_coldest_wt_still_triggers(self, sim):
        # With an idle coldest WT any hot traffic exceeds the trigger, so
        # raising the ratio cannot silence nodes that have idle workers.
        strict = simulate_rebinding(
            sim.traces,
            sim.hypervisors.node(0),
            RebindingConfig(period_seconds=0.1, trigger_ratio=1e12),
        )
        loose = simulate_rebinding(
            sim.traces,
            sim.hypervisors.node(0),
            RebindingConfig(period_seconds=0.1, trigger_ratio=1.2),
        )
        if strict is not None and loose is not None:
            assert strict.rebinding_ratio <= loose.rebinding_ratio


class TestHottestWtSeries:
    def test_series_and_p2a(self, sim):
        series, value = hottest_wt_series(sim.traces, sim.hypervisors.node(0))
        assert (series >= 0).all()
        if series.sum() > 0:
            assert value >= 1.0

    def test_rejects_bad_period(self, sim):
        with pytest.raises(ConfigError):
            hottest_wt_series(sim.traces, sim.hypervisors.node(0), 0.0)
