"""Tests for the §6.1.3 placement constraints of the inter-BS balancer."""

import numpy as np
import pytest

from repro.balancer import BalancerConfig, InterBsBalancer, make_importer
from repro.cluster import StorageCluster
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


def hot_matrix(storage, num_periods=4, hot_bs=0, level=100.0):
    matrix = np.ones((storage.num_segments, num_periods))
    for segment in storage.primaries_on(hot_bs):
        matrix[segment] = level
    return matrix


class TestConfigValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            BalancerConfig(max_segments_per_bs=0)


class TestCapacityConstraint:
    def test_importers_never_exceed_capacity(self, small_fleet):
        storage = StorageCluster(small_fleet)
        limit = max(
            len(storage.primaries_on(bs))
            for bs in range(storage.num_block_servers)
        ) + 2
        balancer = InterBsBalancer(
            storage,
            BalancerConfig(max_segments_per_bs=limit),
            make_importer("min_traffic"),
            rng=spawn_rng(0, "c"),
        )
        balancer.run(hot_matrix(storage, num_periods=6))
        storage.check_invariants()
        for bs in range(storage.num_block_servers):
            assert len(storage.primaries_on(bs)) <= limit

    def test_tight_capacity_blocks_migration(self, small_fleet):
        storage = StorageCluster(small_fleet)
        # Every BS is already at or above a capacity of 1: nothing can move.
        balancer = InterBsBalancer(
            storage,
            BalancerConfig(max_segments_per_bs=1),
            make_importer("min_traffic"),
            rng=spawn_rng(0, "c"),
        )
        run = balancer.run(hot_matrix(storage))
        assert run.num_migrations == 0


class TestAntiAffinity:
    @staticmethod
    def _colocations(small_fleet, storage):
        counts = {}
        for seg_id, bs in storage.placement.primary_mapping().items():
            vd = small_fleet.segments[seg_id].vd_id
            counts[(vd, bs)] = counts.get((vd, bs), 0) + 1
        return sum(c - 1 for c in counts.values() if c > 1)

    def test_anti_affinity_never_adds_colocations(self, small_fleet):
        # Under anti-affinity a migration can never create a new same-VD
        # colocation, so the total colocation count is non-increasing.
        storage = StorageCluster(small_fleet)
        initial = self._colocations(small_fleet, storage)
        balancer = InterBsBalancer(
            storage,
            BalancerConfig(vd_anti_affinity=True),
            make_importer("min_traffic"),
            rng=spawn_rng(1, "c"),
        )
        balancer.run(hot_matrix(storage, num_periods=6))
        storage.check_invariants()
        # In a small fleet where every BS already holds a segment of most
        # VDs, anti-affinity can legitimately block all migrations; either
        # way colocations must not grow.
        assert self._colocations(small_fleet, storage) <= initial

    def test_admissible_checks_same_vd(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(
            storage,
            BalancerConfig(vd_anti_affinity=True),
            make_importer("min_traffic"),
            rng=spawn_rng(3, "c"),
        )
        segment = small_fleet.segments[0]
        sibling_bs = {
            s.block_server_id
            for s in small_fleet.segments
            if s.vd_id == segment.vd_id and s.segment_id != segment.segment_id
        }
        for bs in range(storage.num_block_servers):
            # The segment's own BS holds the segment itself (same VD), so
            # it is inadmissible too.
            expected = bs not in sibling_bs and bs != segment.block_server_id
            assert balancer._admissible(segment.segment_id, bs) is expected

    def test_anti_affinity_no_worse_than_unconstrained(self, small_fleet):
        results = {}
        for flag in (False, True):
            storage = StorageCluster(small_fleet)
            balancer = InterBsBalancer(
                storage,
                BalancerConfig(vd_anti_affinity=flag),
                make_importer("min_traffic"),
                rng=spawn_rng(2, "c"),
            )
            balancer.run(hot_matrix(storage, num_periods=6))
            results[flag] = self._colocations(small_fleet, storage)
        assert results[True] <= results[False]
