"""Tests for the importer-selection strategies."""

import numpy as np
import pytest

from repro.balancer import (
    IMPORTER_STRATEGIES,
    IdealImporter,
    LunuleImporter,
    MinTrafficImporter,
    MinVarianceImporter,
    RandomImporter,
    make_importer,
)
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


def history():
    # 4 BSs x 6 periods.
    return np.array(
        [
            [10.0, 10, 10, 10, 10, 10],
            [1.0, 2, 3, 4, 5, 6],     # rising trend
            [6.0, 5, 4, 3, 2, 1],     # falling trend
            [3.0, 9, 1, 8, 2, 9],     # volatile
        ]
    )


class TestRegistry:
    def test_all_five_present(self):
        assert set(IMPORTER_STRATEGIES) == {
            "random",
            "min_traffic",
            "min_variance",
            "lunule",
            "ideal",
        }

    def test_make_importer(self):
        assert isinstance(make_importer("lunule"), LunuleImporter)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_importer("oracle9000")


class TestMinTraffic:
    def test_picks_lowest_current(self):
        assert MinTrafficImporter().select(history(), 5, exporter=0) == 2

    def test_never_picks_exporter(self):
        h = history()
        h[1:, 5] = 100.0  # exporter 0 would be the minimum
        assert MinTrafficImporter().select(h, 5, exporter=0) != 0


class TestRandom:
    def test_needs_rng(self):
        with pytest.raises(ConfigError):
            RandomImporter().select(history(), 5, exporter=0)

    def test_excludes_exporter(self):
        rng = spawn_rng(0, "imp")
        picks = {
            RandomImporter().select(history(), 5, 0, rng=rng)
            for __ in range(50)
        }
        assert 0 not in picks
        assert picks <= {1, 2, 3}


class TestMinVariance:
    def test_picks_flattest(self):
        assert MinVarianceImporter().select(history(), 5, exporter=3) == 0

    def test_rejects_small_window(self):
        with pytest.raises(ConfigError):
            MinVarianceImporter(window=1)


class TestLunule:
    def test_extrapolates_trend(self):
        # BS 2 falls to ~0 next period; the linear fit should pick it over
        # BS 1 which is rising.
        choice = LunuleImporter(window=4).select(history(), 5, exporter=0)
        assert choice == 2

    def test_falls_back_with_short_history(self):
        h = history()[:, :1]
        choice = LunuleImporter().select(h, 0, exporter=0)
        assert choice in (1, 2, 3)


class TestIdeal:
    def test_reads_future(self):
        future = np.array([0.0, 100.0, 100.0, 0.5])
        choice = IdealImporter().select(history(), 5, exporter=0, future=future)
        assert choice == 3

    def test_degrades_without_future(self):
        assert IdealImporter().select(history(), 5, exporter=0) == 2

    def test_needs_two_bs(self):
        with pytest.raises(ConfigError):
            IdealImporter().select(np.ones((1, 3)), 2, exporter=0)
