"""Tests for the prediction-based importer (§6.1.3)."""

import numpy as np
import pytest

from repro.balancer import InterBsBalancer, PredictorImporter
from repro.cluster import StorageCluster
from repro.prediction import ArimaPredictor, LinearFitPredictor
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


def trending_history():
    # 4 BSs x 8 periods: BS 2 falls steadily, BS 1 rises steadily.
    return np.array(
        [
            [5.0] * 8,
            [1.0, 2, 3, 4, 5, 6, 7, 8],
            [8.0, 7, 6, 5, 4, 3, 2, 1],
            [5.0] * 8,
        ]
    )


class TestPredictorImporter:
    def test_validates_factory(self):
        with pytest.raises(ConfigError):
            PredictorImporter(lambda: object())

    def test_validates_window(self):
        with pytest.raises(ConfigError):
            PredictorImporter(LinearFitPredictor, history_window=2)

    def test_name_includes_model(self):
        importer = PredictorImporter(ArimaPredictor)
        assert importer.name == "predictor[arima]"

    def test_picks_falling_bs(self):
        importer = PredictorImporter(LinearFitPredictor)
        choice = importer.select(trending_history(), 7, exporter=0)
        # The linear predictor extrapolates BS 2 toward 0.
        assert choice == 2

    def test_never_picks_exporter(self):
        importer = PredictorImporter(LinearFitPredictor)
        history = trending_history()
        history[1:, :] = 100.0
        assert importer.select(history, 7, exporter=0) != 0

    def test_refit_every_caches_models(self):
        importer = PredictorImporter(LinearFitPredictor, refit_every=100)
        history = trending_history()
        importer.select(history, 6, exporter=0)
        models_before = dict(importer._models)
        importer.select(history, 7, exporter=0)
        # Within the refit interval the same fitted models are reused.
        for bs, model in importer._models.items():
            assert models_before.get(bs) is model

    def test_works_inside_balancer(self, small_fleet):
        storage = StorageCluster(small_fleet)
        matrix = np.ones((storage.num_segments, 6))
        for segment in storage.primaries_on(0):
            matrix[segment] = 50.0
        balancer = InterBsBalancer(
            storage,
            importer=PredictorImporter(LinearFitPredictor),
            rng=spawn_rng(0, "p"),
        )
        run = balancer.run(matrix)
        storage.check_invariants()
        assert run.num_migrations > 0
