"""Edge cases exposed by the ClusterState refactor of the balancers.

The inter-BS balancer and the dispatch comparison now build their
per-period views through :class:`repro.balance.ClusterState`; these
tests pin the degenerate shapes that refactor has to keep working —
an empty (zero-traffic) DC, a single-node / single-BS cluster, and a
fully excluded move universe.
"""

import numpy as np
import pytest

from repro.balance import (
    BalanceConfig,
    ClusterState,
    TriggerConfig,
    badness,
    fixed_trigger_plan,
    plan_moves,
)
from repro.balancer import InterBsBalancer
from repro.balancer.dispatch import (
    DispatchConfig,
    DispatchPolicy,
    simulate_dispatch,
)
from repro.cluster import StorageCluster
from repro.util.rng import RngFactory, spawn_rng
from repro.util.units import GiB
from repro.workload import FleetConfig, build_fleet


@pytest.fixture(scope="module")
def single_node_fleet():
    """One compute node, one storage node: the smallest legal cluster."""
    config = FleetConfig(
        dc_id=0,
        num_users=2,
        num_vms=4,
        num_compute_nodes=1,
        workers_per_node=2,
        num_storage_nodes=1,
        segment_bytes=32 * GiB,
    )
    return build_fleet(config, RngFactory(20250808))


class TestEmptyDc:
    def test_interbs_zero_traffic_never_migrates(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "edge"))
        run = balancer.run(np.zeros((storage.num_segments, 4)))
        assert run.num_migrations == 0
        assert np.all(run.bs_loads == 0.0)

    def test_from_storage_with_zero_traffic_scores_zero(self, small_fleet):
        storage = StorageCluster(small_fleet)
        state = ClusterState.from_storage(
            storage, np.zeros(storage.num_segments)
        )
        state.validate()
        assert badness(state) == 0.0
        assert plan_moves(state).is_empty
        assert fixed_trigger_plan(state).is_empty

    def test_compute_free_state_plans_storage_moves_only(self, small_fleet):
        storage = StorageCluster(small_fleet)
        traffic = np.zeros(storage.num_segments)
        traffic[: storage.num_segments // 4] = 100.0  # a hot BS stripe
        state = ClusterState.from_storage(storage, traffic)
        plan = plan_moves(state, BalanceConfig(max_moves=4096))
        assert all(
            p.move.kind.value == "segment_migrate" for p in plan.moves
        )


class TestSingleNodeCluster:
    def test_dispatch_runs_on_a_single_node(self, single_node_fleet):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            single_node_fleet,
            SimulationConfig(duration_seconds=30),
            RngFactory(20250808).child("edge-sim"),
        ).run()
        outcome = simulate_dispatch(
            result.traces,
            result.hypervisors.node(0),
            DispatchPolicy.ROUND_ROBIN,
            DispatchConfig(),
        )
        if outcome is not None:  # no traced IOs is legal for a tiny run
            assert outcome.node_id == 0
            assert 0.0 <= outcome.dispatched_fraction <= 1.0

    def test_interbs_single_bs_cannot_migrate(self, single_node_fleet):
        storage = StorageCluster(single_node_fleet)
        if storage.num_block_servers != 1:
            pytest.skip("fleet derived more than one BS")
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "edge"))
        matrix = np.full((storage.num_segments, 3), 50.0)
        matrix[0] = 5000.0
        run = balancer.run(matrix)
        assert run.num_migrations == 0

    def test_planner_on_a_single_node_single_bs_state(self, single_node_fleet):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            single_node_fleet,
            SimulationConfig(duration_seconds=30),
            RngFactory(20250808).child("edge-sim2"),
        ).run()
        state = ClusterState.from_simulation(result)
        plan = plan_moves(state, BalanceConfig(max_moves=64))
        # vd_rehome needs a second node and segment_migrate a second BS;
        # only same-node WT rebinds can appear.
        allowed = {"qp_rebind"}
        if state.num_block_servers > 1:
            allowed.add("segment_migrate")
        assert {p.move.kind.value for p in plan.moves} <= allowed


class TestAllExcluded:
    def test_fully_vetoed_universe_plans_nothing(self, small_fleet):
        storage = StorageCluster(small_fleet)
        traffic = np.linspace(1.0, 100.0, storage.num_segments)
        state = ClusterState.from_storage(storage, traffic)
        plan = plan_moves(
            state,
            BalanceConfig(
                exclude_segments=frozenset(range(state.num_segments)),
            ),
        )
        assert plan.is_empty
        vetoed = plan_moves(
            state,
            BalanceConfig(
                exclude_bs=frozenset(range(state.num_block_servers)),
            ),
        )
        assert vetoed.is_empty

    def test_trigger_with_all_families_off_plans_nothing(self, small_fleet):
        storage = StorageCluster(small_fleet)
        traffic = np.linspace(1.0, 100.0, storage.num_segments)
        state = ClusterState.from_storage(storage, traffic)
        plan = fixed_trigger_plan(
            state,
            TriggerConfig(no_qp_rebinds=True, no_segment_moves=True),
        )
        assert plan.is_empty
        assert plan.final_score == plan.initial_score
