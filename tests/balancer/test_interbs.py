"""Tests for the Algorithm 1 inter-BS balancer and its analyses."""

import numpy as np
import pytest

from repro.balancer import (
    BalancerConfig,
    InterBsBalancer,
    frequent_migration_proportion,
    make_importer,
    normalized_migration_intervals,
    per_bs_cov,
    segment_period_matrix,
)
from repro.cluster import StorageCluster
from repro.cluster.storage import MigrationEvent
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


class TestBalancerConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            BalancerConfig(period_seconds=0)
        with pytest.raises(ConfigError):
            BalancerConfig(trigger_ratio=1.0)
        with pytest.raises(ConfigError):
            BalancerConfig(shed_fraction=0.0)
        with pytest.raises(ConfigError):
            BalancerConfig(max_segments_per_migration=0)


class TestSegmentPeriodMatrix:
    def test_from_storage_metrics(self, small_fleet, rngs):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=90),
            rngs.child("ipm"),
        ).run()
        matrix = segment_period_matrix(
            result.metrics.storage, len(small_fleet.segments), 90, 30, "write"
        )
        assert matrix.shape == (len(small_fleet.segments), 3)
        assert matrix.sum() == pytest.approx(
            float(result.metrics.storage.write_bytes.sum())
        )

    def test_rejects_bad_direction(self, small_fleet):
        from repro.trace.dataset import StorageMetricTable

        empty = StorageMetricTable(
            **{
                name: []
                for name in (
                    *StorageMetricTable.INT_FIELDS,
                    *StorageMetricTable.FLOAT_FIELDS,
                )
            }
        )
        with pytest.raises(ConfigError):
            segment_period_matrix(empty, 10, 90, 30, "diagonal")


class TestInterBsBalancer:
    def _balanced_matrix(self, storage, num_periods=4):
        # Uniform traffic: nothing should migrate.
        return np.ones((storage.num_segments, num_periods))

    def _hot_matrix(self, storage, num_periods=4):
        matrix = np.ones((storage.num_segments, num_periods))
        hot_bs = 0
        for segment in storage.primaries_on(hot_bs):
            matrix[segment] = 100.0
        return matrix

    def test_no_migration_when_balanced(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._balanced_matrix(storage))
        assert run.num_migrations == 0

    def test_hotspot_triggers_migration(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._hot_matrix(storage))
        assert run.num_migrations > 0
        storage.check_invariants()

    def test_migration_reduces_hot_bs_load(self, small_fleet):
        storage = StorageCluster(small_fleet)
        before = len(storage.primaries_on(0))
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        balancer.run(self._hot_matrix(storage))
        assert len(storage.primaries_on(0)) < before

    def test_bs_loads_shape(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._hot_matrix(storage, num_periods=5))
        assert run.bs_loads.shape == (storage.num_block_servers, 5)
        assert run.num_periods == 5

    def test_rejects_shape_mismatch(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        with pytest.raises(ConfigError):
            balancer.run(np.ones((3, 4)))

    def test_secondary_pass_runs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(
            storage, importer=make_importer("ideal"), rng=spawn_rng(0, "b")
        )
        write = self._hot_matrix(storage)
        read = np.ones_like(write)
        hot_read_bs = 1
        for segment in storage.primaries_on(hot_read_bs):
            read[segment] = 50.0
        run = balancer.run(write, secondary_traffic=read)
        storage.check_invariants()
        assert run.num_migrations > 0

    def test_placement_history_recorded(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._hot_matrix(storage, num_periods=3))
        assert len(run.placement_history) == 3
        assert set(run.placement_history[0]) == set(
            storage.placement.primary_mapping()
        )


class TestBlackoutPeriods:
    """Migration blackouts: loads observed, nothing moves."""

    def _hot_matrix(self, storage, num_periods=4):
        matrix = np.ones((storage.num_segments, num_periods))
        for segment in storage.primaries_on(0):
            matrix[segment] = 100.0
        return matrix

    def test_full_blackout_freezes_all_migrations(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        matrix = self._hot_matrix(storage)
        run = balancer.run(matrix, blackout_periods=range(matrix.shape[1]))
        assert run.num_migrations == 0
        # Loads are still recorded during the blackout.
        assert run.bs_loads.shape[1] == matrix.shape[1]
        assert np.all(run.bs_loads.sum(axis=0) > 0)
        # Placement never changed.
        assert all(
            snap == run.placement_history[0]
            for snap in run.placement_history
        )

    def test_partial_blackout_defers_migrations(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        matrix = self._hot_matrix(storage, num_periods=4)
        period_s = balancer.config.period_seconds
        run = balancer.run(matrix, blackout_periods=[0, 1])
        assert run.num_migrations > 0
        # Every migration happened outside the blackout windows.
        assert all(
            event.timestamp // period_s not in (0, 1)
            for event in run.migrations
        )

    def test_empty_blackout_matches_no_blackout(self, small_fleet):
        storage_a = StorageCluster(small_fleet)
        storage_b = StorageCluster(small_fleet)
        matrix = self._hot_matrix(storage_a)
        run_a = InterBsBalancer(storage_a, rng=spawn_rng(0, "b")).run(matrix)
        run_b = InterBsBalancer(storage_b, rng=spawn_rng(0, "b")).run(
            matrix, blackout_periods=[]
        )
        assert run_a.num_migrations == run_b.num_migrations
        assert storage_a.placement.primary_mapping() == storage_b.placement.primary_mapping()


class TestFailedImporterFallback:
    """A failed BS must never import; the balancer routes around it."""

    def _matrix_hot_on(self, storage, hot_bs, num_periods=4, heat=100.0):
        matrix = np.ones((storage.num_segments, num_periods))
        for segment in storage.primaries_on(hot_bs):
            matrix[segment] = heat
        return matrix

    def test_no_migration_targets_a_failed_bs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        # Fail the coldest BSs so the MinTrafficImporter's natural picks
        # are unavailable and the fallback has to engage.
        for bs in range(2, storage.num_block_servers):
            storage.fail_block_server(bs)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._matrix_hot_on(storage, hot_bs=0))
        assert run.num_migrations > 0
        failed = storage.failed_block_servers
        assert all(event.to_bs not in failed for event in run.migrations)
        storage.check_invariants()

    def test_fallback_targets_least_loaded_serving_bs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        for bs in range(2, storage.num_block_servers):
            storage.fail_block_server(bs)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._matrix_hot_on(storage, hot_bs=0))
        # BS 1 is the only serving non-exporter left.
        assert {event.to_bs for event in run.migrations} == {1}

    def test_no_serving_importer_means_no_migrations(self, small_fleet):
        storage = StorageCluster(small_fleet)
        for bs in range(1, storage.num_block_servers):
            storage.fail_block_server(bs)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._matrix_hot_on(storage, hot_bs=0))
        assert run.num_migrations == 0
        storage.check_invariants()

    def test_decommissioned_bs_never_imports(self, small_fleet):
        storage = StorageCluster(small_fleet)
        victims = list(range(2, storage.num_block_servers))
        for bs in victims:
            storage.decommission(bs)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._matrix_hot_on(storage, hot_bs=0))
        assert all(event.to_bs not in victims for event in run.migrations)
        storage.check_invariants()

    def test_recovery_reopens_the_importer(self, small_fleet):
        # Fail every non-exporter: nothing can move.  Recover exactly one
        # BS: it becomes the only legal importer and receives the shed.
        storage = StorageCluster(small_fleet)
        matrix = self._matrix_hot_on(storage, hot_bs=0, num_periods=4)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        for bs in range(1, storage.num_block_servers):
            storage.fail_block_server(bs)
        first = balancer.run(matrix[:, :2])
        assert first.num_migrations == 0
        storage.recover_block_server(1)
        second = balancer.run(matrix[:, 2:])
        assert second.num_migrations > 0
        assert {event.to_bs for event in second.migrations} == {1}
        storage.check_invariants()


class TestFrequentMigrations:
    def make_events(self):
        return [
            MigrationEvent(timestamp=0, segment_id=1, from_bs=0, to_bs=1),
            MigrationEvent(timestamp=5, segment_id=2, from_bs=1, to_bs=2),
            MigrationEvent(timestamp=100, segment_id=3, from_bs=3, to_bs=4),
        ]

    def test_detects_in_and_out(self):
        # BS 1 receives at t=0 and sheds at t=5: both migrations touching
        # it are frequent at a 15s window.
        proportion = frequent_migration_proportion(self.make_events(), 15)
        assert proportion == pytest.approx(2.0 / 3.0)

    def test_wide_window_catches_all_windowed_pairs(self):
        proportion = frequent_migration_proportion(self.make_events(), 1000)
        assert proportion == pytest.approx(2.0 / 3.0)

    def test_tiny_window_separates(self):
        proportion = frequent_migration_proportion(self.make_events(), 2)
        assert proportion == 0.0

    def test_empty(self):
        assert frequent_migration_proportion([], 15) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            frequent_migration_proportion([], 0)


class TestMigrationIntervals:
    def test_basic(self):
        events = [
            MigrationEvent(timestamp=t, segment_id=i, from_bs=0, to_bs=1)
            for i, t in enumerate([0, 30, 90])
        ]
        intervals = normalized_migration_intervals(events, 300)
        assert sorted(intervals) == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_single_migration_no_interval(self):
        events = [MigrationEvent(timestamp=0, segment_id=0, from_bs=0, to_bs=1)]
        assert normalized_migration_intervals(events, 300) == []


class TestPerBsCov:
    def test_total_mode(self):
        loads = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert per_bs_cov(loads) == pytest.approx(0.0)

    def test_per_period_mode(self):
        loads = np.array([[2.0, 0.0], [0.0, 0.0]])
        covs = per_bs_cov(loads, per_period=True)
        assert len(covs) == 1
        assert covs[0] == pytest.approx(1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            per_bs_cov(np.ones(3))
