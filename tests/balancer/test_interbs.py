"""Tests for the Algorithm 1 inter-BS balancer and its analyses."""

import numpy as np
import pytest

from repro.balancer import (
    BalancerConfig,
    InterBsBalancer,
    frequent_migration_proportion,
    make_importer,
    normalized_migration_intervals,
    per_bs_cov,
    segment_period_matrix,
)
from repro.cluster import StorageCluster
from repro.cluster.storage import MigrationEvent
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


class TestBalancerConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            BalancerConfig(period_seconds=0)
        with pytest.raises(ConfigError):
            BalancerConfig(trigger_ratio=1.0)
        with pytest.raises(ConfigError):
            BalancerConfig(shed_fraction=0.0)
        with pytest.raises(ConfigError):
            BalancerConfig(max_segments_per_migration=0)


class TestSegmentPeriodMatrix:
    def test_from_storage_metrics(self, small_fleet, rngs):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=90),
            rngs.child("ipm"),
        ).run()
        matrix = segment_period_matrix(
            result.metrics.storage, len(small_fleet.segments), 90, 30, "write"
        )
        assert matrix.shape == (len(small_fleet.segments), 3)
        assert matrix.sum() == pytest.approx(
            float(result.metrics.storage.write_bytes.sum())
        )

    def test_rejects_bad_direction(self, small_fleet):
        from repro.trace.dataset import StorageMetricTable

        empty = StorageMetricTable(
            **{
                name: []
                for name in (
                    *StorageMetricTable.INT_FIELDS,
                    *StorageMetricTable.FLOAT_FIELDS,
                )
            }
        )
        with pytest.raises(ConfigError):
            segment_period_matrix(empty, 10, 90, 30, "diagonal")


class TestInterBsBalancer:
    def _balanced_matrix(self, storage, num_periods=4):
        # Uniform traffic: nothing should migrate.
        return np.ones((storage.num_segments, num_periods))

    def _hot_matrix(self, storage, num_periods=4):
        matrix = np.ones((storage.num_segments, num_periods))
        hot_bs = 0
        for segment in storage.segments_of(hot_bs):
            matrix[segment] = 100.0
        return matrix

    def test_no_migration_when_balanced(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._balanced_matrix(storage))
        assert run.num_migrations == 0

    def test_hotspot_triggers_migration(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._hot_matrix(storage))
        assert run.num_migrations > 0
        storage.check_invariants()

    def test_migration_reduces_hot_bs_load(self, small_fleet):
        storage = StorageCluster(small_fleet)
        before = len(storage.segments_of(0))
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        balancer.run(self._hot_matrix(storage))
        assert len(storage.segments_of(0)) < before

    def test_bs_loads_shape(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._hot_matrix(storage, num_periods=5))
        assert run.bs_loads.shape == (storage.num_block_servers, 5)
        assert run.num_periods == 5

    def test_rejects_shape_mismatch(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        with pytest.raises(ConfigError):
            balancer.run(np.ones((3, 4)))

    def test_secondary_pass_runs(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(
            storage, importer=make_importer("ideal"), rng=spawn_rng(0, "b")
        )
        write = self._hot_matrix(storage)
        read = np.ones_like(write)
        hot_read_bs = 1
        for segment in storage.segments_of(hot_read_bs):
            read[segment] = 50.0
        run = balancer.run(write, secondary_traffic=read)
        storage.check_invariants()
        assert run.num_migrations > 0

    def test_placement_history_recorded(self, small_fleet):
        storage = StorageCluster(small_fleet)
        balancer = InterBsBalancer(storage, rng=spawn_rng(0, "b"))
        run = balancer.run(self._hot_matrix(storage, num_periods=3))
        assert len(run.placement_history) == 3
        assert set(run.placement_history[0]) == set(
            storage.placement_snapshot()
        )


class TestFrequentMigrations:
    def make_events(self):
        return [
            MigrationEvent(timestamp=0, segment_id=1, from_bs=0, to_bs=1),
            MigrationEvent(timestamp=5, segment_id=2, from_bs=1, to_bs=2),
            MigrationEvent(timestamp=100, segment_id=3, from_bs=3, to_bs=4),
        ]

    def test_detects_in_and_out(self):
        # BS 1 receives at t=0 and sheds at t=5: both migrations touching
        # it are frequent at a 15s window.
        proportion = frequent_migration_proportion(self.make_events(), 15)
        assert proportion == pytest.approx(2.0 / 3.0)

    def test_wide_window_catches_all_windowed_pairs(self):
        proportion = frequent_migration_proportion(self.make_events(), 1000)
        assert proportion == pytest.approx(2.0 / 3.0)

    def test_tiny_window_separates(self):
        proportion = frequent_migration_proportion(self.make_events(), 2)
        assert proportion == 0.0

    def test_empty(self):
        assert frequent_migration_proportion([], 15) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            frequent_migration_proportion([], 0)


class TestMigrationIntervals:
    def test_basic(self):
        events = [
            MigrationEvent(timestamp=t, segment_id=i, from_bs=0, to_bs=1)
            for i, t in enumerate([0, 30, 90])
        ]
        intervals = normalized_migration_intervals(events, 300)
        assert sorted(intervals) == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_single_migration_no_interval(self):
        events = [MigrationEvent(timestamp=0, segment_id=0, from_bs=0, to_bs=1)]
        assert normalized_migration_intervals(events, 300) == []


class TestPerBsCov:
    def test_total_mode(self):
        loads = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert per_bs_cov(loads) == pytest.approx(0.0)

    def test_per_period_mode(self):
        loads = np.array([[2.0, 0.0], [0.0, 0.0]])
        covs = per_bs_cov(loads, per_period=True)
        assert len(covs) == 1
        assert covs[0] == pytest.approx(1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            per_bs_cov(np.ones(3))
