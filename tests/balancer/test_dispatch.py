"""Tests for the §4.4 multi-WT dispatch model."""

import numpy as np
import pytest

from repro.balancer import (
    DispatchConfig,
    DispatchPolicy,
    compare_policies,
    simulate_dispatch,
)
from repro.cluster import EBSSimulator, Hypervisor, SimulationConfig
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def sim(small_fleet):
    config = SimulationConfig(
        duration_seconds=120, trace_sampling_rate=1.0 / 5.0
    )
    return EBSSimulator(small_fleet, config, RngFactory(31)).run()


class TestDispatchConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            DispatchConfig(sync_cost_us=-1.0)
        with pytest.raises(ConfigError):
            DispatchConfig(window_seconds=0.0)


class TestSimulateDispatch:
    def test_hash_qp_matches_static_binding(self, sim):
        # The control policy reproduces single-WT hosting: nothing is
        # dispatched away from the home WT, so the added cost is zero.
        outcome = simulate_dispatch(
            sim.traces, sim.hypervisors.node(0), DispatchPolicy.HASH_QP
        )
        if outcome is not None:
            assert outcome.dispatched_fraction == 0.0
            assert outcome.added_cost_us_per_io == 0.0

    def test_round_robin_balances_total(self, sim):
        for hypervisor in sim.hypervisors:
            static = simulate_dispatch(
                sim.traces, hypervisor, DispatchPolicy.HASH_QP
            )
            dispatched = simulate_dispatch(
                sim.traces, hypervisor, DispatchPolicy.ROUND_ROBIN
            )
            if static is None or dispatched is None:
                continue
            assert dispatched.total_cov <= static.total_cov + 1e-9

    def test_jsq_balances_total(self, sim):
        static_covs, jsq_covs = [], []
        for hypervisor in sim.hypervisors:
            static = simulate_dispatch(
                sim.traces, hypervisor, DispatchPolicy.HASH_QP
            )
            jsq = simulate_dispatch(
                sim.traces, hypervisor, DispatchPolicy.JOIN_SHORTEST_QUEUE
            )
            if static is None or jsq is None:
                continue
            static_covs.append(static.total_cov)
            jsq_covs.append(jsq.total_cov)
        assert np.mean(jsq_covs) < np.mean(static_covs)

    def test_dispatch_cost_scales_with_sync_cost(self, sim):
        cheap = simulate_dispatch(
            sim.traces,
            sim.hypervisors.node(0),
            DispatchPolicy.ROUND_ROBIN,
            DispatchConfig(sync_cost_us=0.1),
        )
        pricey = simulate_dispatch(
            sim.traces,
            sim.hypervisors.node(0),
            DispatchPolicy.ROUND_ROBIN,
            DispatchConfig(sync_cost_us=10.0),
        )
        if cheap is not None and pricey is not None:
            assert pricey.added_cost_us_per_io == pytest.approx(
                100.0 * cheap.added_cost_us_per_io
            )

    def test_no_traces_returns_none(self, small_fleet, sim):
        empty = sim.traces.where(np.zeros(len(sim.traces), dtype=bool))
        assert (
            simulate_dispatch(
                empty, Hypervisor(small_fleet, 0), DispatchPolicy.ROUND_ROBIN
            )
            is None
        )


class TestComparePolicies:
    def test_all_policies_covered(self, sim):
        out = compare_policies(sim.traces, sim.hypervisors)
        assert set(out) == set(DispatchPolicy)
        lengths = {len(v) for v in out.values()}
        assert len(lengths) == 1  # same node count per policy

    def test_dispatch_beats_static_hosting(self, sim):
        # The headline §4.4 claim: a dispatch model removes the WT
        # imbalance that rebinding cannot.
        out = compare_policies(sim.traces, sim.hypervisors)
        static = np.mean([o.total_cov for o in out[DispatchPolicy.HASH_QP]])
        rr = np.mean([o.total_cov for o in out[DispatchPolicy.ROUND_ROBIN]])
        assert rr < static / 2
