"""Peak-RSS: streamed runs must stay measurably under monolithic.

``ru_maxrss`` never goes down within a process, so each mode runs in its
own subprocess (``_rss_probe.py``) and reports its high-water mark on
stdout.  The probe also prints a checksum of the load grids so this test
doubles as a cheap cross-process parity check.

The assertion keeps deliberate headroom: the streamed run must fit in a
fraction of the monolithic footprint *and* save an absolute chunk, so
interpreter-version noise in the baseline RSS cannot flip the verdict.
"""

import subprocess
import sys
from pathlib import Path

import pytest

PROBE = Path(__file__).with_name("_rss_probe.py")
REPO = PROBE.parents[2]

#: Streamed peak RSS must be below this fraction of the monolithic peak.
MAX_FRACTION = 0.7
#: ... and save at least this much in absolute terms.
MIN_SAVING_BYTES = 64 * 1024 * 1024


def _probe(mode: str) -> "tuple[int, str]":
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, str(PROBE), mode],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=600,
        check=True,
    )
    rss_text, checksum = proc.stdout.split()
    return int(rss_text), checksum


def test_peak_rss_is_not_inherited_from_a_fat_parent():
    """Regression: Linux ``ru_maxrss`` survives exec(), so a probe
    spawned from a large pytest process used to report the *parent's*
    peak (making mono == streamed).  ``peak_rss_bytes`` now prefers
    ``VmHWM``, which is reset with the new address space."""
    ballast = bytearray(256 * 1024 * 1024)  # fatten this process first
    ballast[::4096] = b"x" * len(ballast[::4096])
    code = (
        "from repro.obs.runtime import peak_rss_bytes;"
        "print(peak_rss_bytes())"
    )
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, timeout=60, check=True,
    ).stdout
    child_peak = int(out)
    assert 0 < child_peak < 128 * 1024 * 1024, (
        f"bare interpreter reported {child_peak / 2**20:.0f} MiB peak — "
        "looks inherited from the parent"
    )
    del ballast


@pytest.mark.slow
def test_streamed_peak_rss_is_bounded():
    mono_rss, mono_sum = _probe("mono")
    streamed_rss, streamed_sum = _probe("streamed")
    assert streamed_sum == mono_sum  # same physics, different memory plan
    assert streamed_rss < mono_rss * MAX_FRACTION, (
        f"streamed peak RSS {streamed_rss / 2**20:.0f} MiB is not under "
        f"{MAX_FRACTION:.0%} of monolithic {mono_rss / 2**20:.0f} MiB"
    )
    assert mono_rss - streamed_rss > MIN_SAVING_BYTES, (
        f"streamed run saved only "
        f"{(mono_rss - streamed_rss) / 2**20:.0f} MiB"
    )
