"""Shard-boundary carry-over: save/restore must round-trip exactly.

Property tests over the in-repo strategies: token-bucket levels, LRU /
FIFO / frozen cache state, and fault drain queues are checkpointed at
random cut points and must reproduce the uncut execution bit for bit.
"""

import numpy as np
import pytest

from repro.cache.fifo import FifoCache
from repro.cache.frozen import FrozenCache
from repro.cache.lru import LruCache
from repro.engine.state import (
    cut_series,
    replay_pages_streamed,
    shape_streamed,
)
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.timeline import FaultTimeline
from repro.throttle.tokenbucket import TokenBucket, TokenBucketState
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet
from tests.strategies import (
    bucket_configs,
    cut_points,
    offered_series,
    page_streams,
    rng_for,
)

N_EXAMPLES = 25


class TestTokenBucketCarryOver:
    @pytest.mark.parametrize("seed", range(N_EXAMPLES))
    def test_chunked_shape_equals_monolithic(self, seed):
        rng = rng_for(seed)
        config = bucket_configs(rng)
        offered = offered_series(rng)
        cuts = cut_points(rng, offered.size)

        whole = TokenBucket(config).shape(offered)
        chunked = shape_streamed(
            TokenBucket(config), cut_series(offered, cuts)
        )
        assert np.array_equal(whole.delivered, chunked.delivered)
        assert np.array_equal(whole.backlog, chunked.backlog)
        assert np.array_equal(whole.throttled, chunked.throttled)

    @pytest.mark.parametrize("seed", range(N_EXAMPLES))
    def test_state_round_trips_exactly(self, seed):
        rng = rng_for(seed + 10_000)
        config = bucket_configs(rng)
        bucket = TokenBucket(config)
        bucket.shape(offered_series(rng), fresh=True)
        state = bucket.save_state()
        other = TokenBucket(config)
        other.restore_state(state)
        assert other.tokens == bucket.tokens
        assert other.backlog == bucket.backlog
        # Identical continuations from the restored state.
        follow = offered_series(rng)
        a = bucket.shape(follow, fresh=False)
        b = other.shape(follow, fresh=False)
        assert np.array_equal(a.delivered, b.delivered)
        assert np.array_equal(a.backlog, b.backlog)

    def test_restore_validates(self):
        from repro.throttle.tokenbucket import TokenBucketConfig

        bucket = TokenBucket(
            TokenBucketConfig(rate_per_second=10.0, burst_seconds=1.0)
        )
        with pytest.raises(ConfigError):
            bucket.restore_state(TokenBucketState(tokens=-1.0, backlog=0.0))
        with pytest.raises(ConfigError):
            bucket.restore_state(TokenBucketState(tokens=99.0, backlog=0.0))

    def test_shape_fresh_default_still_resets(self):
        # The PR1 regression stays fixed: default shape() is stateless.
        from repro.throttle.tokenbucket import TokenBucketConfig

        bucket = TokenBucket(TokenBucketConfig(rate_per_second=5.0))
        offered = np.array([50.0, 0.0, 0.0])
        first = bucket.shape(offered)
        second = bucket.shape(offered)
        assert np.array_equal(first.delivered, second.delivered)
        assert np.array_equal(first.backlog, second.backlog)


def _caches_equal(a, b) -> bool:
    if len(a) != len(b) or a.stats.hits != b.stats.hits:
        return False
    if a.stats.misses != b.stats.misses:
        return False
    pages_a, pages_b = a._page_state(), b._page_state()
    return pages_a == pages_b


class TestCacheCarryOver:
    @pytest.mark.parametrize("policy", [LruCache, FifoCache])
    @pytest.mark.parametrize("seed", range(N_EXAMPLES))
    def test_chunked_replay_equals_monolithic(self, policy, seed):
        rng = rng_for(seed + 20_000)
        pages = page_streams(rng)
        capacity = int(rng.integers(2, 48))
        cuts = cut_points(rng, pages.size)

        whole = policy(capacity)
        whole_hits, _ = replay_pages_streamed(whole, [pages])
        chunked = policy(capacity)
        chunk_hits, accesses = replay_pages_streamed(
            chunked, cut_series(pages, cuts)
        )
        assert chunk_hits == whole_hits
        assert accesses == pages.size
        assert _caches_equal(whole, chunked)

    @pytest.mark.parametrize("seed", range(N_EXAMPLES))
    def test_frozen_chunked_replay(self, seed):
        rng = rng_for(seed + 30_000)
        pages = page_streams(rng)
        cache = FrozenCache(capacity_pages=16, start_page=4)
        other = FrozenCache(capacity_pages=16, start_page=4)
        cuts = cut_points(rng, pages.size)
        whole_hits, _ = replay_pages_streamed(cache, [pages])
        chunk_hits, _ = replay_pages_streamed(other, cut_series(pages, cuts))
        assert whole_hits == chunk_hits
        assert cache.stats.hits == other.stats.hits

    @pytest.mark.parametrize("policy", [LruCache, FifoCache])
    @pytest.mark.parametrize("seed", range(10))
    def test_state_dict_round_trip_preserves_order(self, policy, seed):
        rng = rng_for(seed + 40_000)
        pages = page_streams(rng)
        cache = policy(8)
        replay_pages_streamed(cache, [pages])
        fresh = policy(8)
        fresh.load_state_dict(cache.state_dict())
        assert _caches_equal(cache, fresh)
        # The recency/admission order matters: one more access must
        # evict the same victim in both.
        probe = int(pages.max()) + 1_000
        cache.access(probe)
        fresh.access(probe)
        assert _caches_equal(cache, fresh)

    def test_state_dict_rejects_mismatches(self):
        lru = LruCache(4)
        with pytest.raises(ConfigError):
            FifoCache(4).load_state_dict(lru.state_dict())
        with pytest.raises(ConfigError):
            LruCache(8).load_state_dict(lru.state_dict())
        frozen = FrozenCache(capacity_pages=4, start_page=0)
        state = frozen.state_dict()
        state["pages"] = 9
        with pytest.raises(ConfigError):
            frozen.load_state_dict(state)


class TestTimelineCarryOver:
    @pytest.fixture(scope="class")
    def timeline(self):
        fleet = build_fleet(
            FleetConfig(
                dc_id=0, num_users=2, num_vms=4, num_compute_nodes=2,
                num_storage_nodes=2,
            ),
            RngFactory(3),
        )
        plan = FaultPlan(events=(
            FaultEvent(kind=FaultKind.BS_CRASH, target=0, start_s=5, end_s=15),
            FaultEvent(kind=FaultKind.QP_STALL, target=1, start_s=8, end_s=20),
        ))
        return FaultTimeline(plan, fleet, duration_seconds=40)

    def test_drain_queue_round_trip(self, timeline):
        want_bs = timeline.bs_drain_seconds(0).copy()
        want_qp = timeline.qp_drain_seconds(1).copy()
        state = timeline.save_state()
        # Clobber the memo, restore, and check exact vectors come back.
        timeline._bs_drain.clear()
        timeline._qp_drain.clear()
        timeline.restore_state(state)
        assert np.array_equal(timeline._bs_drain[0], want_bs)
        assert np.array_equal(timeline._qp_drain[1], want_qp)
        assert np.array_equal(timeline.bs_drain_seconds(0), want_bs)

    def test_snapshot_is_isolated_from_memo_growth(self, timeline):
        state = timeline.save_state()
        before = {k: v.copy() for k, v in state["bs_drain"].items()}
        timeline.bs_drain_seconds(1)  # grows the live memo
        assert set(state["bs_drain"]) == set(before)

    def test_epoch_cursor(self, timeline):
        assert timeline.epoch_cursor(0) == 0
        cursor = timeline.epoch_cursor(10)
        assert 0 <= cursor < timeline.num_epochs
        # Monotone in time.
        cursors = [timeline.epoch_cursor(s) for s in range(40)]
        assert cursors == sorted(cursors)
        with pytest.raises(ConfigError):
            timeline.epoch_cursor(40)

    def test_restore_validates_shapes(self, timeline):
        with pytest.raises(ConfigError):
            timeline.restore_state({"bs_drain": {}})
        with pytest.raises(ConfigError):
            timeline.restore_state({
                "bs_drain": {0: np.zeros(3, dtype=np.int64)},
                "qp_drain": {},
            })
