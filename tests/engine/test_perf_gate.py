"""The perf-regression gate itself is under test.

``benchmarks/perf_gate.py`` is plain stdlib Python on purpose so CI can
run it before installing anything; these tests pin its contract: one
sided, scale-matched, structural failures never pass, and the
``--self-test`` mode genuinely catches a 2x slowdown.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # direct pytest invocation safety
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf_gate import (  # noqa: E402
    DEFAULT_BASELINE,
    GATES,
    compare,
    enforce_targets,
    evaluate,
    main,
    write_summary,
)


@pytest.fixture(scope="module")
def baseline():
    return json.loads(DEFAULT_BASELINE.read_text())


def _slow(baseline, factor, sections=None):
    slowed = copy.deepcopy(baseline)
    for gate in GATES:
        if sections is not None and gate.section not in sections:
            continue
        slowed[gate.section][gate.metric] /= factor
    return slowed


class TestCompare:
    def test_baseline_passes_itself(self, baseline):
        failures, report = compare(baseline, baseline, 0.25)
        assert failures == []
        assert len(report) == len(GATES)

    def test_2x_slowdown_fails_every_gate(self, baseline):
        failures, _ = compare(baseline, _slow(baseline, 2.0), 0.25)
        assert len(failures) == len(GATES)
        assert all(f.startswith("REGRESSION") for f in failures)

    def test_gate_is_one_sided(self, baseline):
        # A 2x *speedup* must never fail.
        failures, _ = compare(baseline, _slow(baseline, 0.5), 0.25)
        assert failures == []

    def test_slowdown_within_tolerance_passes(self, baseline):
        failures, _ = compare(baseline, _slow(baseline, 1.2), 0.25)
        assert failures == []

    def test_single_section_regression_is_localized(self, baseline):
        slowed = _slow(baseline, 3.0, sections={"cache_replay"})
        failures, report = compare(baseline, slowed, 0.25)
        assert len(failures) == 1
        assert "cache_replay" in failures[0]
        assert len(report) == len(GATES) - 1

    def test_scale_mismatch_refuses_comparison(self, baseline):
        tiny = copy.deepcopy(baseline)
        for gate in GATES:
            tiny[gate.section]["scale"] = "tiny"
        failures, _ = compare(baseline, tiny, 0.25)
        assert all("scale mismatch" in f for f in failures)

    def test_missing_section_is_a_failure(self, baseline):
        truncated = copy.deepcopy(baseline)
        del truncated[GATES[0].section]
        failures, _ = compare(baseline, truncated, 0.25)
        assert any("section missing" in f for f in failures)


class TestCli:
    def test_self_test_exits_zero(self, capsys):
        assert main(["--self-test"]) == 0
        assert "self-test ok" in capsys.readouterr().out

    def test_regressed_candidate_exits_one(self, baseline, tmp_path, capsys):
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps(_slow(baseline, 2.0)))
        assert main(["--candidate", str(candidate)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_identical_candidate_exits_zero(self, baseline, tmp_path):
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps(baseline))
        assert main(["--candidate", str(candidate)]) == 0

    def test_structural_only_failure_exits_two(self, tmp_path):
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps({}))
        assert main(["--candidate", str(candidate)]) == 2

    def test_missing_candidate_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--candidate", str(tmp_path / "nope.json")])

    def test_baseline_is_committed_and_gated_metrics_exist(self, baseline):
        for gate in GATES:
            assert isinstance(
                baseline[gate.section][gate.metric], (int, float)
            )


def _with_targets(baseline, attainment):
    """A candidate carrying schema-v3 target blocks at one attainment."""
    candidate = copy.deepcopy(baseline)
    for gate in GATES:
        candidate[gate.section]["target"] = {
            "metric": gate.metric,
            "value": candidate[gate.section][gate.metric] / attainment,
            "unit": gate.unit,
            "attainment": attainment,
        }
    return candidate


class TestTargets:
    """The raw-speed targets: advisory by default, opt-in enforcement."""

    def test_targets_do_not_gate_by_default(self, baseline, tmp_path):
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps(_with_targets(baseline, 0.25)))
        assert main(["--candidate", str(candidate)]) == 0

    def test_enforce_targets_fails_below_attainment(self, baseline):
        failures = enforce_targets(_with_targets(baseline, 0.25))
        assert len(failures) == len(GATES)
        assert all(f.startswith("TARGET MISS") for f in failures)

    def test_enforce_targets_passes_at_attainment(self, baseline):
        assert enforce_targets(_with_targets(baseline, 1.5)) == []

    def test_enforce_targets_rejects_unrecorded_targets(self, baseline):
        # A pre-v3 artifact has no target blocks: structural failure,
        # never a silent pass.
        stripped = copy.deepcopy(baseline)
        for gate in GATES:
            stripped[gate.section].pop("target", None)
        failures = enforce_targets(stripped)
        assert len(failures) == len(GATES)
        assert all("no recorded target" in f for f in failures)

    def test_enforce_flag_exits_one_on_miss(self, baseline, tmp_path, capsys):
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps(_with_targets(baseline, 0.25)))
        code = main(["--candidate", str(candidate), "--enforce-targets"])
        assert code == 1
        assert "TARGET MISS" in capsys.readouterr().err


class TestSummary:
    def test_summary_table_written_and_appended(self, baseline, tmp_path):
        summary = tmp_path / "summary.md"
        rows = evaluate(baseline, _with_targets(baseline, 0.5), 0.25)
        write_summary(summary, rows, 0.25)
        text = summary.read_text()
        assert "### Perf gate" in text
        assert "25%" in text  # the tolerance is stated
        for gate in GATES:
            assert f"`{gate.section}.{gate.metric}`" in text
        assert "50.0%" in text  # attainment column
        assert "✅ ok" in text
        write_summary(summary, rows, 0.25)  # appends, never truncates
        assert summary.read_text().count("### Perf gate") == 2

    def test_summary_marks_regressions(self, baseline, tmp_path):
        slowed = _slow(baseline, 2.0)
        summary = tmp_path / "summary.md"
        write_summary(summary, evaluate(baseline, slowed, 0.25), 0.25)
        assert "❌ regression" in summary.read_text()

    def test_summary_flag_from_cli(self, baseline, tmp_path):
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps(baseline))
        summary = tmp_path / "summary.md"
        assert (
            main(
                ["--candidate", str(candidate), "--summary", str(summary)]
            )
            == 0
        )
        assert "### Perf gate" in summary.read_text()
