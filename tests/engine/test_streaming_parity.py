"""The determinism contract: streamed == monolithic, byte for byte.

For a fixed seed, every ``chunk_epochs`` × ``workers`` combination must
produce the same result digest, the same merged ``sim.*``/``workload.*``
telemetry metrics, and the same fault outcome as the single-shot run.
The in-suite matrix here is the local twin of the nightly CI job.
"""

import numpy as np
import pytest

from repro.cluster.simulator import EBSSimulator, SimulationConfig
from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.engine import StreamingSimulator, result_digest, snapshot_digest
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs.runtime import Telemetry, telemetry_session
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet

FLEET = FleetConfig(
    dc_id=0, num_users=4, num_vms=12, num_compute_nodes=4,
    num_storage_nodes=3,
)
SIM = SimulationConfig(duration_seconds=45, trace_sampling_rate=0.2)
#: 9s epochs make 45s runs exercise multi-shard plans (incl. ragged).
EPOCH = 9
PLAN = FaultPlan(events=(
    FaultEvent(kind=FaultKind.BS_CRASH, target=1, start_s=10, end_s=20),
    FaultEvent(kind=FaultKind.QP_STALL, target=2, start_s=5, end_s=12),
))


#: 50s is NOT a multiple of the 9s epoch: the final epoch itself is
#: partial (5s), on top of whatever ragged final *shard* the chunking
#: produces — the worst-case carry-over geometry.
RAGGED_SIM = SimulationConfig(duration_seconds=50, trace_sampling_rate=0.2)


def _run(
    streamed, chunk_epochs=2, workers=1, plan=None, telemetry=False,
    cleanup=True, sim=SIM, series_format="raw", series_dtype="float64",
):
    """One run; ``cleanup=False`` keeps the shard store alive so the
    caller can read the lazy ``result.traffic`` view (caller must call
    ``engine.cleanup()``)."""
    rngs = RngFactory(11)
    fleet = build_fleet(FLEET, rngs)
    simulator = EBSSimulator(fleet, sim, rngs, fault_plan=plan)
    session = Telemetry(enabled=telemetry)
    engine = None
    with telemetry_session(session) as handle:
        if streamed:
            engine = StreamingSimulator(
                simulator, chunk_epochs, epoch_seconds=EPOCH,
                vd_batch_size=5, series_format=series_format,
                series_dtype=series_dtype,
            )
            try:
                result = engine.run(workers=workers)
                snapshot = handle.snapshot() if telemetry else None
            finally:
                if cleanup:
                    engine.cleanup()
        else:
            result = simulator.run(workers=workers)
            snapshot = handle.snapshot() if telemetry else None
    return result, snapshot, engine


@pytest.fixture(scope="module")
def monolithic():
    result, _, _ = _run(False)
    return result


class TestDigestParity:
    @pytest.mark.parametrize("chunk_epochs", [1, 2, 5, 7])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_streamed_digest_matches_monolithic(
        self, monolithic, chunk_epochs, workers
    ):
        # chunk_epochs=7 exceeds the run's 5 epochs: the whole
        # simulation must collapse into one (clamped) shard.
        result, _, _ = _run(
            True, chunk_epochs=chunk_epochs, workers=workers
        )
        assert result_digest(result) == result_digest(monolithic)

    def test_streamed_traffic_view_matches(self, monolithic):
        result, _, engine = _run(True, chunk_epochs=2, cleanup=False)
        try:
            assert len(result.traffic) == len(monolithic.traffic)
            for got, want in zip(result.traffic, monolithic.traffic):
                assert got.vd_id == want.vd_id
                assert np.array_equal(got.read_bytes, want.read_bytes)
                assert np.array_equal(got.write_iops, want.write_iops)
        finally:
            engine.cleanup()

    def test_grids_and_tables_bitwise(self, monolithic):
        result, _, _ = _run(True, chunk_epochs=3)
        assert result.wt_load_bps.dtype == monolithic.wt_load_bps.dtype
        assert np.array_equal(result.wt_load_bps, monolithic.wt_load_bps)
        assert np.array_equal(result.bs_load_bps, monolithic.bs_load_bps)
        for name, column in monolithic.metrics.compute.columns().items():
            got = result.metrics.compute.columns()[name]
            assert got.dtype == column.dtype
            assert np.array_equal(got, column)


@pytest.fixture(scope="module")
def ragged_monolithic():
    result, _, _ = _run(False, sim=RAGGED_SIM)
    return result


class TestGeometryEdgeCases:
    """The shard-geometry corners: oversize chunks and partial epochs."""

    @pytest.mark.parametrize(
        "chunk_epochs,workers", [(2, 1), (4, 2), (7, 1)]
    )
    def test_partial_final_epoch_matches_monolithic(
        self, ragged_monolithic, chunk_epochs, workers
    ):
        """50s over 9s epochs: the last epoch is 5s, shards are ragged.

        chunk=2 -> shards 18+18+14s; chunk=4 -> 36+14s; chunk=7 (> the
        run's 6 epochs) -> one 50s shard.  All must match the
        single-shot digest exactly.
        """
        result, _, _ = _run(
            True,
            sim=RAGGED_SIM,
            chunk_epochs=chunk_epochs,
            workers=workers,
        )
        assert result_digest(result) == result_digest(ragged_monolithic)

    def test_oversize_chunk_collapses_to_one_shard(self):
        from repro.engine.plan import plan_for

        plan = plan_for(45, num_vds=12, chunk_epochs=7, epoch_seconds=9)
        assert plan.num_shards == 1
        assert plan.shard_bounds(0) == (0, 45)

    def test_ragged_plan_bounds_cover_exactly_once(self):
        from repro.engine.plan import plan_for

        plan = plan_for(50, num_vds=12, chunk_epochs=2, epoch_seconds=9)
        bounds = plan.all_shard_bounds()
        assert bounds == [(0, 18), (18, 36), (36, 50)]
        assert bounds[0][0] == 0 and bounds[-1][1] == 50
        for (_, t1), (t0, _) in zip(bounds, bounds[1:]):
            assert t1 == t0  # contiguous, no overlap, no gap


class TestFormatParity:
    """npz and raw/mmap stores are interchangeable at float64.

    The default streamed path (``raw``) is already pinned against the
    monolithic digest by :class:`TestDigestParity`; here the legacy npz
    store must land on the very same bytes across the geometry matrix,
    and the float32 opt-in must be deterministic under its own digest.
    """

    @pytest.mark.parametrize(
        "chunk_epochs,workers", [(1, 1), (2, 2), (5, 1)]
    )
    def test_npz_and_raw_digests_match(
        self, monolithic, chunk_epochs, workers
    ):
        raw, _, _ = _run(
            True, chunk_epochs=chunk_epochs, workers=workers,
            series_format="raw",
        )
        npz, _, _ = _run(
            True, chunk_epochs=chunk_epochs, workers=workers,
            series_format="npz",
        )
        assert result_digest(raw) == result_digest(npz)
        assert result_digest(raw) == result_digest(monolithic)

    def test_float32_is_deterministic_with_its_own_digest(self, monolithic):
        first, _, _ = _run(True, series_dtype="float32")
        second, _, _ = _run(True, series_dtype="float32")
        # Deterministic: same geometry + dtype => same bytes...
        assert result_digest(first) == result_digest(second)
        # ...but the storage cast is lossy, so float32 runs pin their own
        # golden digest instead of reusing the float64 one.
        assert result_digest(first) != result_digest(monolithic)
        geom, _, _ = _run(
            True, chunk_epochs=5, workers=2, series_dtype="float32"
        )
        assert result_digest(geom) == result_digest(first)


class TestTelemetryParity:
    def test_metric_namespaces_match(self):
        _, mono, _ = _run(False, telemetry=True)
        _, streamed, _ = _run(
            True, chunk_epochs=2, workers=2, telemetry=True
        )
        assert snapshot_digest(mono) == snapshot_digest(streamed)


class TestFaultParity:
    def test_fault_run_digest_and_outcome(self):
        mono, mono_snap, _ = _run(False, plan=PLAN, telemetry=True)
        streamed, s_snap, _ = _run(
            True, chunk_epochs=2, workers=2, plan=PLAN, telemetry=True
        )
        assert result_digest(mono) == result_digest(streamed)
        assert mono.faults is not None and streamed.faults is not None
        assert mono.faults.accounting == streamed.faults.accounting
        assert mono.faults.trace_stats == streamed.faults.trace_stats
        assert mono.faults.windows == streamed.faults.windows
        assert snapshot_digest(mono_snap) == snapshot_digest(s_snap)


class TestStudyIntegration:
    def test_streamed_study_matches_monolithic(self, tmp_path):
        config = StudyConfig.scale("small", seed=5)
        mono = Study(config).build()
        streamed = Study(
            config,
            chunk_epochs=2,
            shard_dir=str(tmp_path / "shards"),
        ).build()
        try:
            assert len(mono.results) == len(streamed.results)
            for a, b in zip(mono.results, streamed.results):
                assert result_digest(a) == result_digest(b)
            # Experiments consume the lazy traffic view unchanged.
            got = streamed.run("table3")
            want = mono.run("table3")
            assert got.rows == want.rows
        finally:
            streamed.cleanup()

    def test_streamed_study_rejects_bad_chunk(self):
        with pytest.raises(Exception):
            Study(StudyConfig.scale("small"), chunk_epochs=0)
