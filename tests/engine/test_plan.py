"""StreamPlan geometry: pure arithmetic, property-tested."""

import pytest

from repro.engine.plan import EPOCH_SECONDS, StreamPlan, plan_for
from repro.util.errors import ConfigError
from tests.strategies import examples, rng_for


def _random_plan(rng):
    return StreamPlan(
        duration_seconds=int(rng.integers(1, 2000)),
        epoch_seconds=int(rng.integers(1, 120)),
        chunk_epochs=int(rng.integers(1, 9)),
        num_vds=int(rng.integers(1, 300)),
        vd_batch_size=int(rng.integers(1, 64)),
    )


class TestStreamPlan:
    @pytest.mark.parametrize("seed", range(40))
    def test_shards_partition_the_horizon(self, seed):
        plan = _random_plan(rng_for(seed))
        bounds = plan.all_shard_bounds()
        assert bounds[0][0] == 0
        assert bounds[-1][1] == plan.duration_seconds
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0  # contiguous, disjoint
            assert a1 - a0 == plan.shard_seconds  # only the last is ragged
        assert all(t1 > t0 for t0, t1 in bounds)

    @pytest.mark.parametrize("seed", range(40))
    def test_batches_partition_the_fleet(self, seed):
        plan = _random_plan(rng_for(seed))
        bounds = plan.all_batch_bounds()
        assert bounds[0][0] == 0
        assert bounds[-1][1] == plan.num_vds
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
        assert sum(v1 - v0 for v0, v1 in bounds) == plan.num_vds

    def test_ragged_last_shard(self):
        plan = StreamPlan(
            duration_seconds=400,
            epoch_seconds=EPOCH_SECONDS,
            chunk_epochs=3,
            num_vds=10,
            vd_batch_size=4,
        )
        assert plan.shard_seconds == 180
        assert plan.num_shards == 3
        assert plan.shard_bounds(2) == (360, 400)
        assert plan.num_batches == 3
        assert plan.batch_bounds(2) == (8, 10)

    def test_bounds_reject_out_of_range(self):
        plan = _random_plan(rng_for(1))
        with pytest.raises(ConfigError):
            plan.shard_bounds(plan.num_shards)
        with pytest.raises(ConfigError):
            plan.batch_bounds(-1)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(duration_seconds=0),
            dict(epoch_seconds=0),
            dict(chunk_epochs=0),
            dict(num_vds=0),
            dict(vd_batch_size=0),
        ],
    )
    def test_validation(self, bad):
        kwargs = dict(
            duration_seconds=60,
            epoch_seconds=60,
            chunk_epochs=1,
            num_vds=4,
            vd_batch_size=2,
        )
        kwargs.update(bad)
        with pytest.raises(ConfigError):
            StreamPlan(**kwargs)


class TestPlanFor:
    def test_memory_target_shrinks_batches(self):
        roomy = plan_for(duration_seconds=1200, num_vds=1000, chunk_epochs=2)
        tight = plan_for(
            duration_seconds=1200, num_vds=1000, chunk_epochs=2,
            max_rss_mb=8,
        )
        assert tight.vd_batch_size < roomy.vd_batch_size
        assert tight.vd_batch_size >= 1

    def test_explicit_batch_size_wins(self):
        plan = plan_for(
            duration_seconds=600, num_vds=50, chunk_epochs=1,
            max_rss_mb=1, vd_batch_size=7,
        )
        assert plan.vd_batch_size == 7

    def test_series_itemsize_scales_the_budget(self):
        # float32 series halve the per-VD footprint, so the same RSS
        # budget fits roughly twice the VDs per batch.
        f64 = plan_for(
            duration_seconds=1200, num_vds=4000, chunk_epochs=2,
            max_rss_mb=8, series_itemsize=8,
        )
        f32 = plan_for(
            duration_seconds=1200, num_vds=4000, chunk_epochs=2,
            max_rss_mb=8, series_itemsize=4,
        )
        assert f32.vd_batch_size > f64.vd_batch_size

    def test_series_itemsize_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            plan_for(
                duration_seconds=60, num_vds=4, chunk_epochs=1,
                series_itemsize=0,
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_batch_size_never_exceeds_fleet(self, seed):
        rng = rng_for(seed + 500)
        plan = plan_for(
            duration_seconds=int(rng.integers(1, 3000)),
            num_vds=int(rng.integers(1, 40)),
            chunk_epochs=int(rng.integers(1, 6)),
            max_rss_mb=int(rng.integers(1, 256)),
        )
        assert 1 <= plan.vd_batch_size <= max(1, plan.num_vds)


def test_examples_are_deterministic():
    a = examples(_random_plan, 5, seed=3)
    b = examples(_random_plan, 5, seed=3)
    assert a == b
