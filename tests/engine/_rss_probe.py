"""Subprocess probe: run one simulation and print peak RSS in bytes.

``ru_maxrss`` is a per-process high-water mark, so the monolithic and
streamed runs must live in *separate* processes for the comparison to
mean anything — this module is the payload that ``test_memory.py``
launches twice.  Metric-row thresholds are set absurdly high so both
modes emit zero metric rows and the RSS difference is dominated by the
working set the engine is supposed to bound: the stacked
``(entity, second)`` matrices and the fast-path chunk temporaries.

Usage::

    python tests/engine/_rss_probe.py {mono|streamed}
"""

import sys

from repro.cluster.simulator import EBSSimulator, SimulationConfig
from repro.engine import StreamingSimulator
from repro.obs.runtime import peak_rss_bytes
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet

FLEET = FleetConfig(
    dc_id=0,
    num_users=24,
    num_vms=160,
    num_compute_nodes=16,
    num_storage_nodes=12,
)
SIM = SimulationConfig(
    duration_seconds=1200,
    trace_sampling_rate=0.001,
    # Zero metric rows: the probe measures array working sets, not the
    # (identical-by-parity-tests) metric tables.
    min_record_bytes=1e18,
    min_record_iops=1e18,
)
CHUNK_EPOCHS = 2


def main(mode: str) -> int:
    rngs = RngFactory(1234)
    fleet = build_fleet(FLEET, rngs)
    simulator = EBSSimulator(fleet, SIM, rngs)
    if mode == "mono":
        result = simulator.run()
    elif mode == "streamed":
        engine = StreamingSimulator(simulator, CHUNK_EPOCHS)
        try:
            result = engine.run()
        finally:
            engine.cleanup()
    else:  # pragma: no cover - defensive
        raise SystemExit(f"unknown mode {mode!r}")
    # Touch the result so neither path can be optimized away.
    sink = float(result.wt_load_bps.sum()) + float(result.bs_load_bps.sum())
    rss = peak_rss_bytes()
    if rss is None:  # pragma: no cover - resource module always present
        raise SystemExit("peak_rss_bytes unavailable")
    print(f"{rss} {sink:.6e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1]))
