"""ShardStore spill/reload: bitwise round-trips and the lazy view."""

import numpy as np
import pytest

from repro.engine.plan import plan_for
from repro.engine.shards import ShardStore, StreamedTraffic, purge_store
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload import FleetConfig, WorkloadGenerator, build_fleet

FLEET = FleetConfig(
    dc_id=0, num_users=3, num_vms=8, num_compute_nodes=3, num_storage_nodes=2
)
DURATION = 45


@pytest.fixture(scope="module")
def monolithic_traffic():
    rngs = RngFactory(33)
    fleet = build_fleet(FLEET, rngs)
    return WorkloadGenerator(fleet, DURATION, rngs).generate_all()


@pytest.fixture()
def store(tmp_path, monolithic_traffic):
    plan = plan_for(
        duration_seconds=DURATION,
        num_vds=len(monolithic_traffic),
        chunk_epochs=2,
        epoch_seconds=9,
        vd_batch_size=3,
    )
    rngs = RngFactory(33)
    fleet = build_fleet(FLEET, rngs)
    generator = WorkloadGenerator(fleet, DURATION, rngs)
    store = ShardStore(tmp_path / "store", plan)
    qp_rw = np.zeros(len(fleet.queue_pairs))
    qp_ww = np.zeros(len(fleet.queue_pairs))
    seg_rw = np.zeros(len(fleet.segments))
    seg_ww = np.zeros(len(fleet.segments))
    for batch_index, (_, batch) in enumerate(
        generator.iter_batches(plan.vd_batch_size)
    ):
        store.spill_batch(batch_index, batch)
        for tr in batch:
            vd = fleet.vds[tr.vd_id]
            qs = slice(vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs)
            qp_rw[qs] = tr.qp_read_weights
            qp_ww[qs] = tr.qp_write_weights
            ss = slice(
                vd.first_segment_id, vd.first_segment_id + vd.num_segments
            )
            seg_rw[ss] = tr.segment_read_weights
            seg_ww[ss] = tr.segment_write_weights
    store.finalize((qp_rw, qp_ww, seg_rw, seg_ww))
    return store


def _traffic_equal(a, b) -> bool:
    if a.vd_id != b.vd_id:
        return False
    for field in (
        "read_bytes", "write_bytes", "read_iops", "write_iops",
        "hot_fraction_series", "qp_read_weights", "qp_write_weights",
        "segment_read_weights", "segment_write_weights",
    ):
        left, right = getattr(a, field), getattr(b, field)
        if left.dtype != right.dtype or not np.array_equal(left, right):
            return False
    return (
        a.mean_read_size_bytes == b.mean_read_size_bytes
        and a.mean_write_size_bytes == b.mean_write_size_bytes
    )


class TestRoundTrip:
    def test_materialize_is_bitwise_equal(self, store, monolithic_traffic):
        reloaded = store.materialize()
        assert len(reloaded) == len(monolithic_traffic)
        for a, b in zip(reloaded, monolithic_traffic):
            assert _traffic_equal(a, b)

    def test_series_for_shard_matches_slices(self, store, monolithic_traffic):
        for shard in range(store.plan.num_shards):
            t0, t1 = store.plan.shard_bounds(shard)
            read_b, write_b, read_i, write_i = store.series_for_shard(shard)
            for row, tr in enumerate(monolithic_traffic):
                assert np.array_equal(read_b[row], tr.read_bytes[t0:t1])
                assert np.array_equal(write_b[row], tr.write_bytes[t0:t1])
                assert np.array_equal(read_i[row], tr.read_iops[t0:t1])
                assert np.array_equal(write_i[row], tr.write_iops[t0:t1])

    def test_reloaded_lba_model_draws_identically(
        self, store, monolithic_traffic
    ):
        is_write = np.arange(64) % 3 == 0
        reloaded = store.traffic_batch(0)
        for a, b in zip(reloaded, monolithic_traffic):
            got = a.lba_model.draw_offsets(
                np.random.default_rng(5), is_write, 0.7
            )
            want = b.lba_model.draw_offsets(
                np.random.default_rng(5), is_write, 0.7
            )
            assert np.array_equal(got, want)

    def test_open_round_trips_plan(self, store):
        reopened = ShardStore.open(store.directory)
        assert reopened.plan == store.plan
        for got, want in zip(
            reopened.stacked_weights(), store.stacked_weights()
        ):
            assert np.array_equal(got, want)

    def test_open_missing_and_bad_schema(self, tmp_path, store):
        with pytest.raises(ConfigError, match="no shard store"):
            ShardStore.open(tmp_path / "nope")
        manifest = store.manifest_path.read_text().replace(
            '"schema_version": 1', '"schema_version": 99'
        )
        store.manifest_path.write_text(manifest)
        with pytest.raises(ConfigError, match="schema"):
            ShardStore.open(store.directory)

    def test_spill_rejects_wrong_batch_size(self, store, monolithic_traffic):
        with pytest.raises(ConfigError, match="expects"):
            store.spill_batch(0, monolithic_traffic[:1])


class TestStreamedTraffic:
    def test_len_iter_getitem_match_materialized(
        self, store, monolithic_traffic
    ):
        view = StreamedTraffic(store, cached_batches=2)
        assert len(view) == len(monolithic_traffic)
        for got, want in zip(view, monolithic_traffic):
            assert _traffic_equal(got, want)
        assert _traffic_equal(view[0], monolithic_traffic[0])
        assert _traffic_equal(view[-1], monolithic_traffic[-1])
        sliced = view[2:5]
        assert len(sliced) == 3
        assert _traffic_equal(sliced[0], monolithic_traffic[2])

    def test_cache_is_bounded(self, store):
        view = StreamedTraffic(store, cached_batches=1)
        for index in range(len(view)):
            view[index]
            assert len(view._cache) <= 1

    def test_index_errors(self, store):
        view = StreamedTraffic(store)
        with pytest.raises(IndexError):
            view[len(view)]
        with pytest.raises(IndexError):
            view[-len(view) - 1]


def test_purge_store(store):
    directory = store.directory
    assert any(directory.iterdir())
    purge_store(directory)
    assert not directory.exists()
    purge_store(directory)  # idempotent on a missing dir
