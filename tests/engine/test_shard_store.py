"""ShardStore spill/reload: bitwise round-trips and the lazy view.

The bitwise fixtures run against both series formats — the legacy npz
store and the raw ``.npy``/mmap store — which at float64 must reload
byte-identical series.  The float32 opt-in (raw-only, lossy cast) gets
its own explicit tests.
"""

import numpy as np
import pytest

from repro.engine.arena import Arena
from repro.engine.plan import plan_for
from repro.engine.shards import (
    SHARD_SCHEMA_VERSION,
    ShardStore,
    StreamedTraffic,
    purge_store,
)
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload import FleetConfig, WorkloadGenerator, build_fleet

FLEET = FleetConfig(
    dc_id=0, num_users=3, num_vms=8, num_compute_nodes=3, num_storage_nodes=2
)
DURATION = 45


@pytest.fixture(scope="module")
def monolithic_traffic():
    rngs = RngFactory(33)
    fleet = build_fleet(FLEET, rngs)
    return WorkloadGenerator(fleet, DURATION, rngs).generate_all()


def _build_store(
    directory, monolithic_traffic, series_format, series_dtype="float64"
):
    plan = plan_for(
        duration_seconds=DURATION,
        num_vds=len(monolithic_traffic),
        chunk_epochs=2,
        epoch_seconds=9,
        vd_batch_size=3,
    )
    rngs = RngFactory(33)
    fleet = build_fleet(FLEET, rngs)
    generator = WorkloadGenerator(fleet, DURATION, rngs)
    store = ShardStore(
        directory,
        plan,
        series_format=series_format,
        series_dtype=series_dtype,
    )
    qp_rw = np.zeros(len(fleet.queue_pairs))
    qp_ww = np.zeros(len(fleet.queue_pairs))
    seg_rw = np.zeros(len(fleet.segments))
    seg_ww = np.zeros(len(fleet.segments))
    for batch_index, (_, batch) in enumerate(
        generator.iter_batches(plan.vd_batch_size)
    ):
        store.spill_batch(batch_index, batch)
        for tr in batch:
            vd = fleet.vds[tr.vd_id]
            qs = slice(vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs)
            qp_rw[qs] = tr.qp_read_weights
            qp_ww[qs] = tr.qp_write_weights
            ss = slice(
                vd.first_segment_id, vd.first_segment_id + vd.num_segments
            )
            seg_rw[ss] = tr.segment_read_weights
            seg_ww[ss] = tr.segment_write_weights
    store.finalize((qp_rw, qp_ww, seg_rw, seg_ww))
    return store


@pytest.fixture(params=["npz", "raw"])
def store(tmp_path, monolithic_traffic, request):
    return _build_store(tmp_path / "store", monolithic_traffic, request.param)


def _traffic_equal(a, b) -> bool:
    if a.vd_id != b.vd_id:
        return False
    for field in (
        "read_bytes", "write_bytes", "read_iops", "write_iops",
        "hot_fraction_series", "qp_read_weights", "qp_write_weights",
        "segment_read_weights", "segment_write_weights",
    ):
        left, right = getattr(a, field), getattr(b, field)
        if left.dtype != right.dtype or not np.array_equal(left, right):
            return False
    return (
        a.mean_read_size_bytes == b.mean_read_size_bytes
        and a.mean_write_size_bytes == b.mean_write_size_bytes
    )


class TestRoundTrip:
    def test_materialize_is_bitwise_equal(self, store, monolithic_traffic):
        reloaded = store.materialize()
        assert len(reloaded) == len(monolithic_traffic)
        for a, b in zip(reloaded, monolithic_traffic):
            assert _traffic_equal(a, b)

    def test_series_for_shard_matches_slices(self, store, monolithic_traffic):
        for shard in range(store.plan.num_shards):
            t0, t1 = store.plan.shard_bounds(shard)
            read_b, write_b, read_i, write_i = store.series_for_shard(shard)
            for row, tr in enumerate(monolithic_traffic):
                assert np.array_equal(read_b[row], tr.read_bytes[t0:t1])
                assert np.array_equal(write_b[row], tr.write_bytes[t0:t1])
                assert np.array_equal(read_i[row], tr.read_iops[t0:t1])
                assert np.array_equal(write_i[row], tr.write_iops[t0:t1])

    def test_reloaded_lba_model_draws_identically(
        self, store, monolithic_traffic
    ):
        import copy

        is_write = np.arange(64) % 3 == 0
        reloaded = store.traffic_batch(0)
        for a, b in zip(reloaded, monolithic_traffic):
            # Draw from copies: draw_offsets advances the model's state,
            # and the monolithic fixture is shared across format params.
            got = copy.deepcopy(a.lba_model).draw_offsets(
                np.random.default_rng(5), is_write, 0.7
            )
            want = copy.deepcopy(b.lba_model).draw_offsets(
                np.random.default_rng(5), is_write, 0.7
            )
            assert np.array_equal(got, want)

    def test_open_round_trips_plan(self, store):
        reopened = ShardStore.open(store.directory)
        assert reopened.plan == store.plan
        for got, want in zip(
            reopened.stacked_weights(), store.stacked_weights()
        ):
            assert np.array_equal(got, want)

    def test_open_missing_and_bad_schema(self, tmp_path, store):
        with pytest.raises(ConfigError, match="no shard store"):
            ShardStore.open(tmp_path / "nope")
        manifest = store.manifest_path.read_text().replace(
            f'"schema_version": {SHARD_SCHEMA_VERSION}',
            '"schema_version": 99',
        )
        store.manifest_path.write_text(manifest)
        with pytest.raises(ConfigError, match="schema"):
            ShardStore.open(store.directory)

    def test_spill_rejects_wrong_batch_size(self, store, monolithic_traffic):
        with pytest.raises(ConfigError, match="expects"):
            store.spill_batch(0, monolithic_traffic[:1])


class TestStreamedTraffic:
    def test_len_iter_getitem_match_materialized(
        self, store, monolithic_traffic
    ):
        view = StreamedTraffic(store, cached_batches=2)
        assert len(view) == len(monolithic_traffic)
        for got, want in zip(view, monolithic_traffic):
            assert _traffic_equal(got, want)
        assert _traffic_equal(view[0], monolithic_traffic[0])
        assert _traffic_equal(view[-1], monolithic_traffic[-1])
        sliced = view[2:5]
        assert len(sliced) == 3
        assert _traffic_equal(sliced[0], monolithic_traffic[2])

    def test_cache_is_bounded(self, store):
        view = StreamedTraffic(store, cached_batches=1)
        for index in range(len(view)):
            view[index]
            assert len(view._cache) <= 1

    def test_index_errors(self, store):
        view = StreamedTraffic(store)
        with pytest.raises(IndexError):
            view[len(view)]
        with pytest.raises(IndexError):
            view[-len(view) - 1]


def test_purge_store(store):
    """Regression: cleanup leaves no orphans for either series format."""
    directory = store.directory
    assert any(directory.iterdir())
    purge_store(directory)
    assert not directory.exists()
    purge_store(directory)  # idempotent on a missing dir


class TestSeriesOptions:
    def test_unknown_format_and_dtype_rejected(self, tmp_path, store):
        with pytest.raises(ConfigError, match="series format"):
            ShardStore(tmp_path / "s", store.plan, series_format="zarr")
        with pytest.raises(ConfigError, match="series dtype"):
            ShardStore(tmp_path / "s", store.plan, series_dtype="float16")

    def test_float32_requires_raw(self, tmp_path, store):
        with pytest.raises(ConfigError, match="float32"):
            ShardStore(
                tmp_path / "s",
                store.plan,
                series_format="npz",
                series_dtype="float32",
            )

    def test_v1_manifest_reads_as_npz_float64(
        self, tmp_path, monolithic_traffic
    ):
        import json

        store = _build_store(tmp_path / "store", monolithic_traffic, "npz")
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema_version"] = 1
        del manifest["series_format"]
        del manifest["series_dtype"]
        store.manifest_path.write_text(json.dumps(manifest))
        reopened = ShardStore.open(store.directory)
        assert reopened.series_format == "npz"
        assert reopened.series_dtype == "float64"
        for a, b in zip(reopened.materialize(), monolithic_traffic):
            assert _traffic_equal(a, b)


class TestRawFormat:
    def test_open_autodetects_raw(self, tmp_path, monolithic_traffic):
        store = _build_store(tmp_path / "store", monolithic_traffic, "raw")
        reopened = ShardStore.open(store.directory)
        assert reopened.series_format == "raw"
        assert reopened.series_dtype == "float64"
        for a, b in zip(reopened.materialize(), monolithic_traffic):
            assert _traffic_equal(a, b)

    def test_series_for_shard_fills_a_reused_arena(
        self, tmp_path, monolithic_traffic
    ):
        store = _build_store(tmp_path / "store", monolithic_traffic, "raw")
        assert store.plan.num_batches > 1  # exercises the copy path
        arena = Arena()
        for shard in range(store.plan.num_shards):
            plain = store.series_for_shard(shard)
            pooled = store.series_for_shard(shard, arena=arena)
            for a, b in zip(plain, pooled):
                assert np.array_equal(a, b)
        # The arena holds one buffer per series field, reused across shards.
        assert arena.nbytes() > 0

    def test_single_batch_store_returns_memmap_views(
        self, tmp_path, monolithic_traffic
    ):
        plan = plan_for(
            duration_seconds=DURATION,
            num_vds=len(monolithic_traffic),
            chunk_epochs=2,
            epoch_seconds=9,
            vd_batch_size=len(monolithic_traffic),
        )
        store = ShardStore(tmp_path / "store", plan, series_format="raw")
        store.spill_batch(0, list(monolithic_traffic))
        zeros = np.zeros(1)
        store.finalize((zeros, zeros, zeros, zeros))
        read_b, _, _, _ = store.series_for_shard(0)
        assert isinstance(read_b.base, np.memmap)
        t0, t1 = plan.shard_bounds(0)
        assert np.array_equal(read_b[0], monolithic_traffic[0].read_bytes[t0:t1])

    def test_float32_round_trip_is_the_cast(
        self, tmp_path, monolithic_traffic
    ):
        store = _build_store(
            tmp_path / "store", monolithic_traffic, "raw", "float32"
        )
        reloaded = store.materialize()
        for a, b in zip(reloaded, monolithic_traffic):
            for field in (
                "read_bytes", "write_bytes", "read_iops", "write_iops",
                "hot_fraction_series",
            ):
                got = getattr(a, field)
                assert got.dtype == np.float32
                assert np.array_equal(
                    got, getattr(b, field).astype(np.float32)
                )
            # The static payload is dtype-agnostic and stays exact.
            assert np.array_equal(a.qp_read_weights, b.qp_read_weights)
