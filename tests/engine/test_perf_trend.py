"""The perf-trend narrator: before/after table over the headline figures."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # direct pytest invocation safety
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf_trend import (  # noqa: E402
    DEFAULT_BASELINE,
    DEFAULT_LIVE_BASELINE,
    TRENDS,
    main,
    render,
)


def _simulator(value, with_target=False):
    payload = {
        "simulator_pass1": {"fleet_seconds_per_second_fast": value},
        "cache_replay": {"ios_per_second_fast": value * 10},
    }
    if with_target:
        payload["simulator_pass1"]["target"] = {
            "metric": "fleet_seconds_per_second_fast",
            "value": 5_000_000,
            "unit": "fleet-seconds/s",
            "attainment": value / 5_000_000,
        }
    return payload


def _live(value):
    return {"live": {"events_per_sec": value}}


class TestRender:
    def test_full_table_with_deltas_and_targets(self):
        table = render(
            _simulator(1_000_000),
            _simulator(1_250_000, with_target=True),
            _live(2_000_000),
            _live(1_000_000),
        )
        assert "### Perf trend" in table
        assert "+25.0%" in table  # pass-1 got faster
        assert "-50.0%" in table  # live got slower
        assert "5,000,000" in table  # the recorded target
        assert "25.0%" in table  # attainment vs the 5M target
        for trend in TRENDS:
            assert trend.label in table

    def test_missing_artifacts_render_na_not_crash(self):
        table = render(None, None, None, None)
        assert table.count("n/a") >= len(TRENDS)

    def test_partial_artifacts(self):
        table = render(_simulator(1_000_000), None, None, _live(5))
        lines = [ln for ln in table.splitlines() if "live ingestion" in ln]
        assert "n/a" in lines[0]  # no live baseline => no delta


class TestCli:
    def test_main_appends_output_file(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_simulator(1_000_000)))
        cand.write_text(json.dumps(_simulator(2_000_000)))
        out = tmp_path / "summary.md"
        code = main(
            [
                "--baseline", str(base),
                "--candidate", str(cand),
                "--live-baseline", str(tmp_path / "missing.json"),
                "--live-candidate", str(tmp_path / "missing.json"),
                "--output", str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "+100.0%" in text
        assert capsys.readouterr().out == text

    def test_malformed_artifact_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SystemExit, match="not JSON"):
            main(["--baseline", str(bad)])

    def test_committed_baselines_exist(self):
        # The perf-trend CI job points at these by default.
        assert DEFAULT_BASELINE.exists()
        assert DEFAULT_LIVE_BASELINE.exists()
