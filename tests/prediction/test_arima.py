"""Tests for the from-scratch ARIMA predictor (P2)."""

import numpy as np
import pytest

from repro.prediction import ArimaPredictor
from repro.util import ConfigError
from repro.util.rng import spawn_rng


class TestArimaConstruction:
    def test_rejects_bad_order(self):
        with pytest.raises(ConfigError):
            ArimaPredictor(order=(0, 0, 0))
        with pytest.raises(ConfigError):
            ArimaPredictor(order=(1, 2, 0))
        with pytest.raises(ConfigError):
            ArimaPredictor(order=(-1, 0, 0))


class TestArimaForecasts:
    def test_persistence_fallback_on_short_history(self):
        model = ArimaPredictor(min_history=12)
        series = np.array([1.0, 2.0, 3.0])
        model.fit(series)
        assert model.predict(series) == pytest.approx(3.0)

    def test_learns_ar1(self):
        rng = spawn_rng(0, "arima")
        phi = 0.8
        x = np.zeros(300)
        for t in range(1, 300):
            x[t] = 5.0 + phi * (x[t - 1] - 5.0) + rng.normal(0, 0.1)
        model = ArimaPredictor(order=(1, 0, 0), auto_order=False)
        model.fit(x)
        prediction = model.predict(x)
        expected = 5.0 + phi * (x[-1] - 5.0)
        assert prediction == pytest.approx(expected, abs=0.3)

    def test_tracks_trend_with_differencing(self):
        series = np.arange(1.0, 60.0)  # perfectly linear
        model = ArimaPredictor(auto_order=True)
        model.fit(series)
        assert model.predict(series) == pytest.approx(60.0, rel=0.05)

    def test_non_negative_output(self):
        series = np.array([10.0, 8.0, 6.0, 4.0, 2.0, 1.0, 0.5] * 4)
        model = ArimaPredictor()
        model.fit(series)
        assert model.predict(series) >= 0.0

    def test_forecast_bounded_by_history_peak(self):
        rng = spawn_rng(1, "arima")
        series = np.abs(rng.normal(1.0, 0.5, 100))
        series[50] = 40.0  # one violent burst
        model = ArimaPredictor()
        model.fit(series)
        assert model.predict(series) <= 2.0 * series.max()

    def test_rejects_stationarity_violations(self):
        # A series engineered to destabilize the fit must not blow up the
        # forecast: the coefficient bound or persistence fallback catches it.
        series = np.array([0.5] * 30 + [50.0] + [0.6, 0.7])
        model = ArimaPredictor()
        model.fit(series)
        assert np.isfinite(model.predict(series))

    def test_deterministic(self):
        rng = spawn_rng(2, "arima")
        series = np.abs(rng.normal(2.0, 1.0, 80))
        a = ArimaPredictor()
        a.fit(series)
        b = ArimaPredictor()
        b.fit(series)
        assert a.predict(series) == b.predict(series)
