"""Tests for gradient-boosted trees and the underlying CART (P3)."""

import numpy as np
import pytest

from repro.prediction import GradientBoostedTreesPredictor
from repro.prediction.gbt import RegressionTree
from repro.util import ConfigError
from repro.util.rng import spawn_rng


class TestRegressionTree:
    def test_fits_step_function(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([1.0, 1.0, 1.0, 5.0, 5.0, 5.0])
        tree = RegressionTree(max_depth=1, min_samples_leaf=1).fit(x, y)
        assert tree.predict(np.array([[1.5]]))[0] == pytest.approx(1.0)
        assert tree.predict(np.array([[11.0]]))[0] == pytest.approx(5.0)

    def test_constant_target_single_leaf(self):
        x = np.arange(10.0).reshape(-1, 1)
        y = np.full(10, 3.0)
        tree = RegressionTree().fit(x, y)
        assert tree.predict(x).tolist() == [3.0] * 10

    def test_depth_limits_leaves(self):
        rng = spawn_rng(0, "tree")
        x = rng.random((100, 2))
        y = rng.random(100)
        shallow = RegressionTree(max_depth=1).fit(x, y)
        deep = RegressionTree(max_depth=4).fit(x, y)
        sse_shallow = ((shallow.predict(x) - y) ** 2).sum()
        sse_deep = ((deep.predict(x) - y) ** 2).sum()
        assert sse_deep <= sse_shallow

    def test_unfitted_raises(self):
        with pytest.raises(ConfigError):
            RegressionTree().predict(np.ones((1, 1)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            RegressionTree().fit(np.ones((3, 1)), np.ones(4))

    def test_min_samples_leaf_respected(self):
        x = np.arange(6.0).reshape(-1, 1)
        y = np.array([0.0, 0, 0, 10, 10, 10])
        tree = RegressionTree(max_depth=3, min_samples_leaf=3).fit(x, y)
        # With min leaf 3, only the single middle split is allowed.
        predictions = set(np.round(tree.predict(x), 6).tolist())
        assert len(predictions) <= 2


class TestGradientBoosting:
    def test_reduces_training_error_vs_mean(self):
        rng = spawn_rng(1, "gbt")
        series = np.sin(np.arange(200) / 6.0) * 3.0 + 5.0 + rng.normal(0, 0.1, 200)
        model = GradientBoostedTreesPredictor(num_lags=4, n_estimators=40)
        model.fit(series)
        prediction = model.predict(series)
        truth_next = np.sin(200 / 6.0) * 3.0 + 5.0
        mean_error = abs(series.mean() - truth_next)
        assert abs(prediction - truth_next) < mean_error

    def test_short_history_persistence(self):
        model = GradientBoostedTreesPredictor(num_lags=8)
        series = np.array([2.0, 4.0])
        model.fit(series)
        assert model.predict(series) == 4.0

    def test_constant_series(self):
        model = GradientBoostedTreesPredictor(num_lags=3)
        series = np.full(50, 6.0)
        model.fit(series)
        assert model.predict(series) == pytest.approx(6.0)

    def test_non_negative(self):
        model = GradientBoostedTreesPredictor(num_lags=3)
        series = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 0.0] * 5)
        model.fit(series)
        assert model.predict(series) >= 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            GradientBoostedTreesPredictor(num_lags=0)
        with pytest.raises(ConfigError):
            GradientBoostedTreesPredictor(learning_rate=0.0)
