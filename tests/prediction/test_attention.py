"""Tests for the self-attention forecaster, including a gradient check."""

import numpy as np
import pytest

from repro.prediction import AttentionForecaster
from repro.prediction.attention import AttentionConfig
from repro.util import ConfigError
from repro.util.rng import spawn_rng


def tiny_config(**overrides):
    defaults = dict(window=4, model_dim=6, hidden_dim=8, epochs=30, seed=3)
    defaults.update(overrides)
    return AttentionConfig(**defaults)


class TestConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            AttentionConfig(window=1)
        with pytest.raises(ConfigError):
            AttentionConfig(learning_rate=0.0)
        with pytest.raises(ConfigError):
            AttentionConfig(epochs=0)


class TestGradients:
    def test_backprop_matches_numerical_gradients(self):
        model = AttentionForecaster(tiny_config(epochs=1))
        rng = spawn_rng(0, "att")
        history = np.abs(rng.normal(1.0, 0.3, (3, 20)))
        model.fit(history)
        window = rng.random((4, 3))
        target = rng.random(3)
        __, grads = model.loss_and_grads(window, target)
        eps = 1e-6
        for key in ("We", "Wq", "Wk", "Wv", "W1", "b1", "W2", "b2", "Wo", "bo"):
            param = model._params[key]
            flat_index = 0
            index = np.unravel_index(flat_index, param.shape)
            original = param[index]
            param[index] = original + eps
            loss_plus, __ = model.loss_and_grads(window, target)
            param[index] = original - eps
            loss_minus, __ = model.loss_and_grads(window, target)
            param[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[key][index] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


class TestTraining:
    def test_learns_sinusoid(self):
        t = 60
        x = 1 + 0.5 * np.sin(np.arange(t) / 3.0)
        y = 1 + 0.5 * np.cos(np.arange(t) / 3.0)
        matrix = np.stack([x, y])
        model = AttentionForecaster(tiny_config(window=8, epochs=80))
        model.fit(matrix[:, :50])
        errors = []
        for step in range(50, 55):
            prediction = model.predict(matrix[:, :step])
            errors.append(np.abs(prediction - matrix[:, step]).max())
        assert max(errors) < 0.15

    def test_finetune_cheaper_than_full_fit(self):
        rng = spawn_rng(1, "att")
        matrix = np.abs(rng.normal(1.0, 0.3, (4, 60)))
        model = AttentionForecaster(tiny_config(epochs=40, finetune_epochs=2))
        model.fit(matrix[:, :40])
        t_full = model._adam_t
        model.fit(matrix[:, :41])
        # Fine-tuning takes far fewer steps than the initial training.
        assert model._adam_t - t_full < t_full / 4

    def test_predict_without_fit_is_persistence(self):
        model = AttentionForecaster(tiny_config())
        matrix = np.array([[1.0, 2.0, 3.0]])
        assert model.predict(matrix).tolist() == [3.0]

    def test_predict_pads_short_history(self):
        model = AttentionForecaster(tiny_config(window=8))
        rng = spawn_rng(2, "att")
        matrix = np.abs(rng.normal(1.0, 0.2, (2, 30)))
        model.fit(matrix)
        out = model.predict(matrix[:, :3])
        assert out.shape == (2,)
        assert np.isfinite(out).all()

    def test_output_non_negative(self):
        rng = spawn_rng(3, "att")
        matrix = np.abs(rng.normal(0.1, 0.5, (3, 40)))
        model = AttentionForecaster(tiny_config())
        model.fit(matrix)
        assert (model.predict(matrix) >= 0).all()

    def test_rejects_bad_history(self):
        model = AttentionForecaster(tiny_config())
        with pytest.raises(ConfigError):
            model.fit(np.ones(5))
