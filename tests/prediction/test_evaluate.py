"""Tests for the walk-forward evaluation harness."""

import numpy as np
import pytest

from repro.prediction import (
    EvaluationConfig,
    LinearFitPredictor,
    PerSeriesAdapter,
    evaluate_predictor,
    paper_prediction_suite,
)
from repro.util import ConfigError


class _Persistence(PerSeriesAdapter):
    pass


def persistence_adapter():
    from repro.prediction.base import Predictor

    class Persist(Predictor):
        name = "persist"

        def fit(self, history):
            self._validate(history)

        def predict(self, history):
            return float(self._validate(history)[-1])

    return PerSeriesAdapter(Persist, name="persist")


class TestEvaluate:
    def test_perfect_predictor_zero_mse(self):
        # A constant series is perfectly predicted by persistence.
        matrix = np.full((3, 30), 5.0)
        result = evaluate_predictor(
            persistence_adapter(), matrix, EvaluationConfig(warmup_periods=5)
        )
        assert result.mse == pytest.approx(0.0)
        assert result.num_predictions == 3 * 25

    def test_normalization_scales_series(self):
        # Two series differing only by scale give identical normalized MSE
        # contributions.
        base = np.abs(np.sin(np.arange(30.0))) + 1.0
        matrix = np.stack([base, base * 100.0])
        result = evaluate_predictor(
            persistence_adapter(), matrix, EvaluationConfig(warmup_periods=5)
        )
        single = evaluate_predictor(
            persistence_adapter(),
            base.reshape(1, -1),
            EvaluationConfig(warmup_periods=5),
        )
        assert result.mse == pytest.approx(single.mse)

    def test_retrain_cadence_recorded(self):
        matrix = np.abs(np.random.default_rng(0).normal(1, 0.1, (2, 30)))
        result = evaluate_predictor(
            PerSeriesAdapter(LinearFitPredictor, name="linear"),
            matrix,
            EvaluationConfig(warmup_periods=5, retrain_every=7),
        )
        assert result.retrain_every == 7

    def test_rejects_short_matrix(self):
        with pytest.raises(ConfigError):
            evaluate_predictor(
                persistence_adapter(),
                np.ones((2, 5)),
                EvaluationConfig(warmup_periods=10),
            )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            EvaluationConfig(warmup_periods=1)
        with pytest.raises(ConfigError):
            EvaluationConfig(retrain_every=0)


class TestSuite:
    def test_five_methods(self):
        suite = paper_prediction_suite(epoch_periods=10)
        assert list(suite) == [
            "P1_linear",
            "P2_arima",
            "P3_gbt",
            "P4_attention_epoch",
            "P5_attention_period",
        ]

    def test_cadences(self):
        suite = paper_prediction_suite(epoch_periods=10)
        assert suite["P1_linear"][1] == 1
        assert suite["P3_gbt"][1] == 10
        assert suite["P4_attention_epoch"][1] == 10
        assert suite["P5_attention_period"][1] == 1

    def test_factories_produce_fresh_models(self):
        suite = paper_prediction_suite()
        a = suite["P1_linear"][0]()
        b = suite["P1_linear"][0]()
        assert a is not b
