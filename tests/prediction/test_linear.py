"""Tests for the linear-fit predictor (P1)."""

import numpy as np
import pytest

from repro.prediction import LinearFitPredictor
from repro.util import ConfigError


class TestLinearFit:
    def test_extends_perfect_line(self):
        model = LinearFitPredictor(window=4)
        series = np.array([1.0, 2.0, 3.0, 4.0])
        model.fit(series)
        assert model.predict(series) == pytest.approx(5.0)

    def test_flat_series(self):
        model = LinearFitPredictor()
        series = np.full(10, 7.0)
        model.fit(series)
        assert model.predict(series) == pytest.approx(7.0)

    def test_clamps_negative_forecast(self):
        model = LinearFitPredictor(window=4)
        series = np.array([9.0, 6.0, 3.0, 0.5])
        model.fit(series)
        assert model.predict(series) == 0.0

    def test_no_clamp_option(self):
        model = LinearFitPredictor(window=4, clamp_non_negative=False)
        series = np.array([9.0, 6.0, 3.0, 0.5])
        model.fit(series)
        assert model.predict(series) < 0.0

    def test_short_history_persistence(self):
        model = LinearFitPredictor(window=4)
        model.fit(np.array([3.0]))
        assert model.predict(np.array([3.0])) == 3.0

    def test_uses_only_window(self):
        model = LinearFitPredictor(window=2)
        series = np.array([100.0, 100.0, 1.0, 2.0])
        model.fit(series)
        assert model.predict(series) == pytest.approx(3.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            LinearFitPredictor(window=1)

    def test_rejects_empty_history(self):
        with pytest.raises(ConfigError):
            LinearFitPredictor().predict(np.array([]))
