"""Tests for empirical CDFs, percentiles, and histograms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import (
    EmpiricalCdf,
    fraction_at_least,
    fraction_at_most,
    histogram,
    percentile_summary,
)
from repro.util import ConfigError

samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=100,
)


class TestEmpiricalCdf:
    def test_basic_probabilities(self):
        cdf = EmpiricalCdf.from_values([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(2.0) == pytest.approx(0.5)
        assert cdf(4.0) == pytest.approx(1.0)

    def test_median(self):
        cdf = EmpiricalCdf.from_values([1.0, 2.0, 3.0])
        assert cdf.median == pytest.approx(2.0)

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf.from_values([5.0, 1.0, 3.0])
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 5.0

    def test_quantile_rejects_out_of_range(self):
        cdf = EmpiricalCdf.from_values([1.0])
        with pytest.raises(ConfigError):
            cdf.quantile(1.5)

    def test_series_monotone(self):
        cdf = EmpiricalCdf.from_values([3.0, 1.0, 2.0, 2.0])
        xs, ys = cdf.series()
        assert (np.diff(xs) >= 0).all()
        assert (np.diff(ys) > 0).all()
        assert ys[-1] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            EmpiricalCdf.from_values([])

    @given(samples)
    def test_monotone_queries(self, values):
        cdf = EmpiricalCdf.from_values(values)
        lo, hi = min(values), max(values)
        assert cdf(lo - 1) <= cdf(lo) <= cdf(hi) <= cdf(hi + 1)


class TestPercentileSummary:
    def test_default_percentiles(self):
        summary = percentile_summary(list(range(101)))
        assert summary[0.0] == 0.0
        assert summary[50.0] == 50.0
        assert summary[99.0] == pytest.approx(99.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ConfigError):
            percentile_summary([1.0], percentiles=[101.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            percentile_summary([])


class TestFractions:
    def test_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == pytest.approx(0.5)

    def test_complementary(self):
        values = [1.0, 2.0, 3.0]
        # at_least(t) + at_most(t) >= 1 (both count exact hits).
        assert (
            fraction_at_least(values, 2.0) + fraction_at_most(values, 2.0)
        ) == pytest.approx(4.0 / 3.0)


class TestHistogram:
    def test_fractions_sum_to_one(self):
        fractions, edges = histogram([1.0, 2.0, 3.0, 4.0], bins=4)
        assert fractions.sum() == pytest.approx(1.0)
        assert len(edges) == 5

    def test_respects_range(self):
        fractions, edges = histogram(
            [0.5, 0.5, 2.5], bins=2, value_range=(0.0, 1.0)
        )
        assert edges[0] == 0.0
        assert edges[-1] == 1.0
        # The out-of-range value is excluded from the bins.
        assert fractions.sum() == pytest.approx(2.0 / 3.0)
