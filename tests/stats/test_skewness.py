"""Tests for CCR, P2A, and CoV — the paper's skewness metrics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import ccr, ccr_curve, cov, normalized_cov, p2a, top_share
from repro.util import ConfigError

positive_traffic = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestCcr:
    def test_uniform_traffic(self):
        # Top 20% of 10 equal entities carries exactly 20%.
        assert ccr([5.0] * 10, 0.2) == pytest.approx(0.2)

    def test_single_hot_entity(self):
        values = [0.0] * 99 + [100.0]
        assert ccr(values, 0.01) == pytest.approx(1.0)

    def test_at_least_one_entity_counted(self):
        # 1% of 10 entities rounds up to the single hottest entity.
        values = [1.0] * 9 + [91.0]
        assert ccr(values, 0.01) == pytest.approx(0.91)

    def test_full_fraction_is_one(self):
        assert ccr([1.0, 2.0, 3.0], 1.0) == pytest.approx(1.0)

    def test_zero_traffic(self):
        assert ccr([0.0, 0.0], 0.5) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            ccr([1.0], 0.0)
        with pytest.raises(ConfigError):
            ccr([1.0], 1.5)

    def test_rejects_negative_traffic(self):
        with pytest.raises(ConfigError):
            ccr([1.0, -1.0], 0.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            ccr([], 0.5)

    @given(positive_traffic)
    def test_monotone_in_fraction(self, values):
        assert ccr(values, 0.1) <= ccr(values, 0.5) + 1e-12
        assert ccr(values, 0.5) <= ccr(values, 1.0) + 1e-12

    @given(positive_traffic)
    def test_bounded(self, values):
        value = ccr(values, 0.3)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestCcrCurve:
    def test_matches_pointwise(self):
        values = [1.0, 5.0, 2.0, 8.0, 4.0]
        curve = ccr_curve(values, [0.2, 0.6, 1.0])
        for fraction, expected in curve.items():
            assert expected == pytest.approx(ccr(values, fraction))

    def test_zero_traffic(self):
        assert ccr_curve([0.0, 0.0], [0.5])[0.5] == 0.0


class TestTopShare:
    def test_basic(self):
        assert top_share([1.0, 3.0, 6.0]) == pytest.approx(0.6)

    def test_zero(self):
        assert top_share([0.0, 0.0]) == 0.0


class TestP2a:
    def test_flat_series(self):
        assert p2a([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_spike(self):
        # One spike of 100 over 100 zero seconds: mean 1, peak 100.
        series = [0.0] * 99 + [100.0]
        assert p2a(series) == pytest.approx(100.0)

    def test_all_zero(self):
        assert p2a([0.0, 0.0]) == 0.0

    @given(positive_traffic)
    def test_at_least_one_when_nonzero(self, values):
        if sum(values) > 0:
            assert p2a(values) >= 1.0 - 1e-12


class TestCov:
    def test_flat_is_zero(self):
        assert cov([2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_known_value(self):
        values = np.array([1.0, 3.0])
        expected = values.std() / values.mean()
        assert cov(values) == pytest.approx(expected)

    def test_all_zero(self):
        assert cov([0.0, 0.0]) == 0.0


class TestNormalizedCov:
    def test_perfect_skew_is_one(self):
        # All traffic on one of n entities is the maximal-skew case.
        for n in (2, 4, 10):
            values = [0.0] * (n - 1) + [10.0]
            assert normalized_cov(values) == pytest.approx(1.0)

    def test_uniform_is_zero(self):
        assert normalized_cov([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_single_value_is_zero(self):
        assert normalized_cov([42.0]) == 0.0

    def test_matches_manual_normalization(self):
        values = [1.0, 2.0, 3.0, 10.0]
        assert normalized_cov(values) == pytest.approx(
            cov(values) / math.sqrt(3)
        )

    @given(positive_traffic)
    def test_bounded_in_unit_interval(self, values):
        value = normalized_cov(values)
        assert -1e-9 <= value <= 1.0 + 1e-9
