"""Tests for trace-level IO characterization helpers."""

import numpy as np
import pytest

from repro.stats import (
    inter_arrival_cv,
    inter_arrival_cvs,
    io_size_summary,
    latency_breakdown,
)
from repro.util import ConfigError

from tests.trace.test_dataset import trace_dataset


class TestLatencyBreakdown:
    def test_components_and_total(self):
        breakdown = latency_breakdown(trace_dataset())
        assert set(breakdown) == {
            "compute",
            "frontend",
            "block_server",
            "backend",
            "chunk_server",
            "total",
        }
        assert breakdown["total"]["mean_us"] == pytest.approx(15.0)

    def test_shares_sum_to_one(self):
        breakdown = latency_breakdown(trace_dataset())
        component_share = sum(
            stats["share"]
            for name, stats in breakdown.items()
            if name != "total"
        )
        assert component_share == pytest.approx(1.0)

    def test_direction_filter(self):
        reads = latency_breakdown(trace_dataset(), "read")
        assert reads["total"]["mean_us"] == pytest.approx(15.0)

    def test_rejects_bad_direction(self):
        with pytest.raises(ConfigError):
            latency_breakdown(trace_dataset(), "up")

    def test_rejects_empty(self):
        traces = trace_dataset()
        empty = traces.where(np.zeros(len(traces), dtype=bool))
        with pytest.raises(ConfigError):
            latency_breakdown(empty)


class TestIoSizeSummary:
    def test_both_directions(self):
        summary = io_size_summary(trace_dataset())
        assert set(summary) == {"read", "write"}
        assert summary["read"]["median_bytes"] == 4096.0
        assert summary["read"]["count"] == 2.0

    def test_rejects_empty(self):
        traces = trace_dataset()
        empty = traces.where(np.zeros(len(traces), dtype=bool))
        with pytest.raises(ConfigError):
            io_size_summary(empty)


class TestInterArrival:
    def test_regular_arrivals_low_cv(self):
        traces = trace_dataset()  # timestamps roughly evenly spread
        value = inter_arrival_cv(traces, 0)
        assert value is not None
        assert value < 2.0

    def test_too_few_traces(self):
        traces = trace_dataset()
        assert inter_arrival_cv(traces.where(traces.trace_id < 2), 0) is None

    def test_unknown_vd(self):
        assert inter_arrival_cv(trace_dataset(), 99) is None

    def test_cvs_thresholded(self):
        traces = trace_dataset()
        assert inter_arrival_cvs(traces, min_traces=100) == []
        values = inter_arrival_cvs(traces, min_traces=3)
        assert len(values) == 2  # both VDs have 3 traces

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            inter_arrival_cvs(trace_dataset(), min_traces=2)
