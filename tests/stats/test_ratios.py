"""Tests for the normalized write-to-read ratio (Equation 2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import wr_ratio, wr_ratio_arrays
from repro.stats.ratios import DOMINANCE_THRESHOLD
from repro.util import ConfigError

traffic = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


class TestWrRatio:
    def test_pure_write(self):
        assert wr_ratio(10.0, 0.0) == pytest.approx(1.0)

    def test_pure_read(self):
        assert wr_ratio(0.0, 10.0) == pytest.approx(-1.0)

    def test_balanced(self):
        assert wr_ratio(5.0, 5.0) == pytest.approx(0.0)

    def test_double_write_hits_threshold(self):
        # W = 2R corresponds to wr_ratio = 1/3 exactly (footnote 4).
        assert wr_ratio(2.0, 1.0) == pytest.approx(DOMINANCE_THRESHOLD)

    def test_no_traffic(self):
        assert wr_ratio(0.0, 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            wr_ratio(-1.0, 1.0)

    @given(traffic, traffic)
    def test_bounded(self, w, r):
        assert -1.0 <= wr_ratio(w, r) <= 1.0

    @given(traffic, traffic)
    def test_antisymmetric(self, w, r):
        assert wr_ratio(w, r) == pytest.approx(-wr_ratio(r, w))


class TestWrRatioArrays:
    def test_matches_scalar(self):
        w = np.array([1.0, 0.0, 2.0, 0.0])
        r = np.array([0.0, 1.0, 1.0, 0.0])
        out = wr_ratio_arrays(w, r)
        for i in range(4):
            assert out[i] == pytest.approx(wr_ratio(w[i], r[i]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigError):
            wr_ratio_arrays([1.0], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            wr_ratio_arrays([-1.0], [1.0])
