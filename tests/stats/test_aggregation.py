"""Tests for group-by reductions."""

import numpy as np
import pytest

from repro.stats import group_reduce, group_sum
from repro.util import ConfigError


class TestGroupSum:
    def test_basic(self):
        out = group_sum(["a", "b", "a"], [1.0, 2.0, 3.0])
        assert out == {"a": 4.0, "b": 2.0}

    def test_integer_keys(self):
        out = group_sum([1, 2, 1, 2], [1, 1, 1, 1])
        assert out == {1: 2.0, 2: 2.0}

    def test_empty(self):
        assert group_sum([], []) == {}

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigError):
            group_sum(["a"], [1.0, 2.0])

    def test_total_preserved(self):
        keys = list(np.random.default_rng(0).integers(5, size=50))
        values = list(np.random.default_rng(1).random(50))
        out = group_sum(keys, values)
        assert sum(out.values()) == pytest.approx(sum(values))


class TestGroupReduce:
    def test_max_reducer(self):
        out = group_reduce(["x", "x", "y"], [1.0, 5.0, 2.0], np.max)
        assert out == {"x": 5.0, "y": 2.0}

    def test_mean_reducer(self):
        out = group_reduce([0, 0, 1], [2.0, 4.0, 9.0], np.mean)
        assert out[0] == pytest.approx(3.0)
        assert out[1] == pytest.approx(9.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigError):
            group_reduce([0], [1.0, 2.0], np.max)
