"""Property-based fault-plan invariants (seeded, via tests/strategies.py).

Three invariant families from the issue:

- **no IO is both completed and dropped** — per domain, delivered and
  dropped partition the offered mass;
- **conservation of IO count across redirect/retry** — redirecting,
  retrying, or queueing never creates or destroys IO mass;
- **monotone recovery times** — the recovery schedule of any plan is
  non-decreasing.
"""

import numpy as np
import pytest

from repro.cluster.simulator import EBSSimulator, SimulationConfig
from repro.faults.generate import random_fault_plan
from repro.faults.plan import FaultPlan
from repro.util.rng import RngFactory

from tests.faults.conftest import TINY_DURATION_S
from tests.strategies import (
    examples,
    fault_events,
    fault_plans,
    fault_plans_with_shape,
    plan_shapes,
    rng_for,
)

PLANS = examples(fault_plans, 20, seed=1)
SHAPES = examples(plan_shapes, 10, seed=2)
EVENT_BATCHES = [examples(fault_events, 6, seed=100 + i) for i in range(8)]


class TestPlanProperties:
    @pytest.mark.parametrize("plan", PLANS)
    def test_round_trips_through_json(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    @pytest.mark.parametrize("plan", PLANS)
    def test_recovery_times_are_monotone(self, plan):
        times = plan.recovery_times()
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    @pytest.mark.parametrize("plan", PLANS)
    def test_horizon_bounds_every_event(self, plan):
        horizon = plan.horizon_s()
        assert all(event.end_s <= horizon for event in plan.events)

    @pytest.mark.parametrize("events", EVENT_BATCHES)
    def test_event_order_never_matters(self, events):
        rng = rng_for(7)
        shuffled = list(events)
        rng.shuffle(shuffled)
        assert FaultPlan(events=tuple(events)) == FaultPlan(
            events=tuple(shuffled)
        )

    @pytest.mark.parametrize("plan", PLANS)
    def test_for_dc_partitions_scoped_events(self, plan):
        scoped_any = {
            event for dc in range(4) for event in plan.for_dc(dc).events
        }
        # Every event is either global or owned by some DC in range.
        assert scoped_any >= {
            event for event in plan.events if event.dc in (None, 0, 1, 2, 3)
        }


class TestGeneratorProperties:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_same_seed_same_plan(self, shape):
        assert random_fault_plan(11, shape) == random_fault_plan(11, shape)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_different_labels_are_independent_streams(self, shape):
        a = random_fault_plan(11, shape, num_events=6, label="a")
        b = random_fault_plan(11, shape, num_events=6, label="b")
        # Extremely unlikely to collide; equality would mean label is dead.
        assert a != b

    @pytest.mark.parametrize("shape", SHAPES)
    def test_windows_stay_inside_horizon(self, shape):
        plan = random_fault_plan(3, shape, num_events=8)
        for event in plan.events:
            assert 0 <= event.start_s < event.end_s <= shape.duration_seconds

    @pytest.mark.parametrize("shape", SHAPES)
    def test_never_crashes_every_block_server(self, shape):
        from repro.faults.plan import FaultKind

        plan = random_fault_plan(5, shape, num_events=30)
        crashed = set()
        per_node = shape.num_block_servers // shape.num_storage_nodes
        for event in plan.events:
            if event.kind is FaultKind.BS_CRASH:
                crashed.add(event.target)
            elif event.kind is FaultKind.CS_CRASH:
                crashed.update(
                    range(
                        event.target * per_node, (event.target + 1) * per_node
                    )
                )
        assert len(crashed) < shape.num_block_servers

    @pytest.mark.parametrize("shape", SHAPES)
    def test_policy_override_is_respected(self, shape):
        from repro.faults.plan import RedirectPolicy

        for policy in RedirectPolicy:
            assert random_fault_plan(2, shape, policy=policy).policy is policy


@pytest.fixture(scope="module")
def tiny_sim_config():
    return SimulationConfig(
        duration_seconds=TINY_DURATION_S, trace_sampling_rate=0.25
    )


def _simulate(tiny_fleet, config, plan):
    return EBSSimulator(
        tiny_fleet, config, RngFactory(31), fault_plan=plan
    ).run()


class TestSimulationConservation:
    """Simulation-backed invariants over seed-stable random plans."""

    @pytest.fixture(scope="class")
    def outcomes(self, tiny_fleet, tiny_shape, tiny_sim_config):
        plans = [
            strategy(tiny_shape)
            for strategy in [
                (lambda shape, i=i: fault_plans_with_shape(
                    rng_for(500 + i), shape
                ))
                for i in range(8)
            ]
        ]
        return [
            (plan, _simulate(tiny_fleet, tiny_sim_config, plan))
            for plan in plans
        ]

    def test_faults_attached_iff_plan_nonempty(
        self, tiny_fleet, tiny_sim_config, outcomes
    ):
        for plan, result in outcomes:
            assert (result.faults is not None) == (not plan.is_empty)
        empty = _simulate(tiny_fleet, tiny_sim_config, FaultPlan())
        assert empty.faults is None

    def test_no_io_both_delivered_and_dropped(self, outcomes):
        for _, result in outcomes:
            if result.faults is None:
                continue
            acct = result.faults.accounting
            assert acct.delivered_storage_ios >= 0
            assert acct.dropped_storage_ios >= 0
            assert (
                acct.delivered_storage_ios
                <= acct.offered_storage_ios + 1e-6
            )
            assert (
                acct.delivered_compute_ios
                <= acct.offered_compute_ios + 1e-6
            )

    def test_io_mass_is_conserved_across_redirect_and_retry(self, outcomes):
        for plan, result in outcomes:
            if result.faults is None:
                continue
            storage, compute = result.faults.conservation_residual()
            acct = result.faults.accounting
            assert storage <= 1e-6 * max(acct.offered_storage_ios, 1.0), plan
            assert compute <= 1e-6 * max(acct.offered_compute_ios, 1.0), plan

    def test_trace_rows_partition_into_kept_and_dropped(self, outcomes):
        for _, result in outcomes:
            if result.faults is None:
                continue
            stats = result.faults.trace_stats
            assert len(result.traces) == (
                stats["total_ios"] - stats["dropped_ios"]
            )

    def test_redirected_mass_is_never_dropped_mass(self, outcomes):
        from repro.faults.plan import RedirectPolicy

        for plan, result in outcomes:
            if result.faults is None:
                continue
            acct = result.faults.accounting
            if plan.policy is RedirectPolicy.REDIRECT:
                assert acct.queued_ios == 0.0
            else:
                assert acct.redirected_ios == 0.0
                assert acct.retried_ios == 0.0

    def test_replay_matches_plan_failure_state(self, outcomes):
        """After run(), cluster objects reflect the end-of-horizon state."""
        from repro.faults.plan import FaultKind

        for plan, result in outcomes:
            if result.faults is None:
                continue
            open_bs = set()
            for event in plan.events:
                if event.kind is not FaultKind.BS_CRASH:
                    continue
                if event.start_s < TINY_DURATION_S <= event.end_s:
                    open_bs.add(event.target)
            for bs in open_bs:
                assert result.storage.is_failed(bs)

    def test_window_stats_cover_every_event(self, outcomes):
        for plan, result in outcomes:
            if result.faults is None:
                continue
            in_horizon = [
                e for e in plan.events if e.start_s < TINY_DURATION_S
            ]
            assert len(result.faults.windows) == len(in_horizon)
            for window in result.faults.windows:
                assert window.ios_in_window >= 0
