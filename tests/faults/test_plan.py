"""Unit tests for the declarative fault-plan layer."""

import json

import pytest

from repro.faults.plan import (
    DEGRADE_COMPONENTS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
    merge_plans,
)
from repro.util.errors import ConfigError


def _bs_crash(start=10, end=20, target=0, dc=None):
    return FaultEvent(
        kind=FaultKind.BS_CRASH, start_s=start, end_s=end, target=target, dc=dc
    )


class TestFaultEventValidation:
    def test_accepts_string_kind(self):
        event = FaultEvent(kind="bs_crash", start_s=0, end_s=5, target=1)
        assert event.kind is FaultKind.BS_CRASH

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigError, match="start_s"):
            _bs_crash(start=-1, end=5)

    def test_rejects_empty_window(self):
        with pytest.raises(ConfigError, match="end_s"):
            _bs_crash(start=5, end=5)

    @pytest.mark.parametrize(
        "kind", [FaultKind.BS_CRASH, FaultKind.CS_CRASH, FaultKind.QP_STALL]
    )
    def test_targeted_kinds_need_target(self, kind):
        with pytest.raises(ConfigError, match="target"):
            FaultEvent(kind=kind, start_s=0, end_s=5)
        with pytest.raises(ConfigError, match="target"):
            FaultEvent(kind=kind, start_s=0, end_s=5, target=-1)

    def test_blackout_takes_no_target(self):
        with pytest.raises(ConfigError, match="no target"):
            FaultEvent(
                kind=FaultKind.MIGRATION_BLACKOUT, start_s=0, end_s=5, target=1
            )

    def test_degrade_component_defaults_to_all(self):
        event = FaultEvent(
            kind=FaultKind.DEGRADE, start_s=0, end_s=5, multiplier=2.0
        )
        assert event.component == "all"

    def test_degrade_rejects_unknown_component(self):
        with pytest.raises(ConfigError, match="component"):
            FaultEvent(
                kind=FaultKind.DEGRADE, start_s=0, end_s=5, component="gpu"
            )

    def test_degrade_rejects_deflation(self):
        with pytest.raises(ConfigError, match="multiplier"):
            FaultEvent(
                kind=FaultKind.DEGRADE, start_s=0, end_s=5, multiplier=0.5
            )

    def test_non_degrade_rejects_component(self):
        with pytest.raises(ConfigError, match="component"):
            FaultEvent(
                kind=FaultKind.BS_CRASH,
                start_s=0,
                end_s=5,
                target=1,
                component="frontend",
            )

    def test_half_open_window(self):
        event = _bs_crash(start=10, end=20)
        assert event.active_at(10)
        assert event.active_at(19)
        assert not event.active_at(20)
        assert not event.active_at(9)
        assert event.duration_s == 10


class TestFaultEventSerialization:
    def test_round_trip_all_kinds(self):
        events = [
            _bs_crash(dc=2),
            FaultEvent(kind=FaultKind.CS_CRASH, start_s=1, end_s=4, target=1),
            FaultEvent(kind=FaultKind.QP_STALL, start_s=2, end_s=9, target=7),
            FaultEvent(
                kind=FaultKind.DEGRADE,
                start_s=0,
                end_s=3,
                component="chunk_server",
                multiplier=4.5,
            ),
            FaultEvent(kind=FaultKind.MIGRATION_BLACKOUT, start_s=3, end_s=6),
        ]
        for event in events:
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ConfigError, match="object"):
            FaultEvent.from_dict(["bs_crash"])

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown"):
            FaultEvent.from_dict(
                {"kind": "bs_crash", "start_s": 0, "end_s": 5, "target": 1,
                 "oops": True}
            )

    def test_from_dict_rejects_missing_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            FaultEvent.from_dict({"start_s": 0, "end_s": 5})

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultEvent.from_dict({"kind": "meteor", "start_s": 0, "end_s": 5})

    def test_from_dict_rejects_missing_window(self):
        with pytest.raises(ConfigError, match="start_s"):
            FaultEvent.from_dict({"kind": "bs_crash", "target": 1, "end_s": 5})


class TestFaultPlan:
    def test_events_are_canonically_sorted(self):
        late = _bs_crash(start=50, end=60)
        early = _bs_crash(start=1, end=2)
        plan_a = FaultPlan(events=(late, early))
        plan_b = FaultPlan(events=(early, late))
        assert plan_a == plan_b
        assert plan_a.events[0] is early or plan_a.events[0] == early

    def test_policy_coerces_from_string(self):
        assert FaultPlan(policy="queue").policy is RedirectPolicy.QUEUE

    def test_rejects_negative_backoff(self):
        with pytest.raises(ConfigError, match="retry_backoff_us"):
            FaultPlan(retry_backoff_us=-1.0)

    def test_rejects_zero_redirect_attempts(self):
        with pytest.raises(ConfigError, match="max_redirect_attempts"):
            FaultPlan(max_redirect_attempts=0)

    def test_rejects_non_event_members(self):
        with pytest.raises(ConfigError, match="FaultEvent"):
            FaultPlan(events=({"kind": "bs_crash"},))

    def test_empty_plan_properties(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.horizon_s() == 0
        assert plan.recovery_times() == []

    def test_events_of_filters_kinds(self):
        plan = FaultPlan(
            events=(
                _bs_crash(),
                FaultEvent(
                    kind=FaultKind.QP_STALL, start_s=0, end_s=4, target=1
                ),
            )
        )
        assert len(plan.events_of(FaultKind.BS_CRASH)) == 1
        assert len(plan.events_of(FaultKind.BS_CRASH, FaultKind.QP_STALL)) == 2
        assert plan.events_of(FaultKind.DEGRADE) == []

    def test_for_dc_keeps_global_and_matching_events(self):
        plan = FaultPlan(
            events=(_bs_crash(dc=None), _bs_crash(dc=0), _bs_crash(dc=1))
        )
        scoped = plan.for_dc(0)
        assert len(scoped) == 2
        assert all(event.dc in (None, 0) for event in scoped.events)
        assert scoped.policy is plan.policy

    def test_horizon_is_last_event_end(self):
        plan = FaultPlan(events=(_bs_crash(start=0, end=9), _bs_crash(3, 77)))
        assert plan.horizon_s() == 77


class TestPlanSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            events=(
                _bs_crash(dc=1),
                FaultEvent(
                    kind=FaultKind.DEGRADE,
                    start_s=2,
                    end_s=8,
                    component="backend",
                    multiplier=3.0,
                ),
            ),
            policy=RedirectPolicy.QUEUE,
            retry_backoff_us=123.0,
            max_redirect_attempts=2,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan(events=(_bs_crash(),), policy=RedirectPolicy.QUEUE)
        path = plan.save(tmp_path / "nested" / "plan.json")
        assert path.exists()
        assert FaultPlan.load(path) == plan

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="no such fault plan"):
            FaultPlan.load(tmp_path / "absent.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            FaultPlan.load(path)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown fault plan"):
            FaultPlan.from_dict({"events": [], "frequency": 3})

    def test_from_dict_rejects_bad_policy(self):
        with pytest.raises(ConfigError, match="policy"):
            FaultPlan.from_dict({"policy": "retry-forever"})

    def test_from_dict_rejects_non_list_events(self):
        with pytest.raises(ConfigError, match="list"):
            FaultPlan.from_dict({"events": {"kind": "bs_crash"}})

    def test_json_is_order_independent(self):
        a = FaultPlan(events=(_bs_crash(1, 2), _bs_crash(5, 9, target=3)))
        b = FaultPlan(events=(_bs_crash(5, 9, target=3), _bs_crash(1, 2)))
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())


class TestMergePlans:
    def test_empty_iterable_gives_empty_plan(self):
        assert merge_plans([]).is_empty

    def test_union_of_events_policy_from_head(self):
        head = FaultPlan(
            events=(_bs_crash(1, 2),),
            policy=RedirectPolicy.QUEUE,
            retry_backoff_us=42.0,
        )
        tail = FaultPlan(events=(_bs_crash(5, 9),))
        merged = merge_plans([head, tail])
        assert len(merged) == 2
        assert merged.policy is RedirectPolicy.QUEUE
        assert merged.retry_backoff_us == 42.0

    def test_degrade_components_match_latency_model(self):
        from repro.cluster.latency import LatencyModel

        assert set(LatencyModel.COMPONENTS) <= set(DEGRADE_COMPONENTS)
