"""Fixtures for the fault-injection suite: a tiny fleet and its shape."""

from __future__ import annotations

import pytest

from repro.faults.generate import PlanShape
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet

#: Short horizon keeps the simulation-backed property tests fast.
TINY_DURATION_S = 48


@pytest.fixture(scope="session")
def tiny_fleet():
    config = FleetConfig(
        dc_id=0,
        num_users=3,
        num_vms=8,
        num_compute_nodes=3,
        num_storage_nodes=2,
    )
    return build_fleet(config, RngFactory(4242))


@pytest.fixture(scope="session")
def tiny_shape(tiny_fleet) -> PlanShape:
    return PlanShape.of_fleet(tiny_fleet, TINY_DURATION_S)
