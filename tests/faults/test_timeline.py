"""Unit tests for the compiled fault timeline (epochs, maps, drains)."""

import numpy as np
import pytest

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, RedirectPolicy
from repro.faults.timeline import FaultTimeline
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet

T = 40


@pytest.fixture(scope="module")
def wide_fleet():
    """4 BlockServers (2 per storage node) so redirect chains have hops."""
    config = FleetConfig(
        dc_id=0,
        num_users=2,
        num_vms=4,
        num_compute_nodes=2,
        num_storage_nodes=2,
        block_servers_per_node=2,
    )
    return build_fleet(config, RngFactory(99))


def _timeline(fleet, *events, policy=RedirectPolicy.REDIRECT, **kwargs):
    plan = FaultPlan(events=tuple(events), policy=policy, **kwargs)
    return FaultTimeline(plan, fleet, T)


def _crash(target, start, end):
    return FaultEvent(
        kind=FaultKind.BS_CRASH, start_s=start, end_s=end, target=target
    )


class TestValidationAndClipping:
    def test_rejects_non_positive_duration(self, wide_fleet):
        with pytest.raises(ConfigError, match="duration"):
            FaultTimeline(FaultPlan(), wide_fleet, 0)

    def test_rejects_bs_target_out_of_range(self, wide_fleet):
        with pytest.raises(ConfigError, match="bs_crash target"):
            _timeline(wide_fleet, _crash(99, 0, 5))

    def test_rejects_cs_target_out_of_range(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.CS_CRASH, start_s=0, end_s=5, target=7
        )
        with pytest.raises(ConfigError, match="cs_crash target"):
            _timeline(wide_fleet, event)

    def test_rejects_qp_target_out_of_range(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.QP_STALL,
            start_s=0,
            end_s=5,
            target=len(wide_fleet.queue_pairs),
        )
        with pytest.raises(ConfigError, match="qp_stall target"):
            _timeline(wide_fleet, event)

    def test_event_past_horizon_is_ignored(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, T + 5, T + 9))
        assert timeline.events == []
        assert not timeline.has_churn

    def test_event_end_clips_to_horizon(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, T - 3, T + 50))
        assert timeline.bs_down_at(0, T - 1)
        assert not timeline.bs_down_at(0, T - 4)


class TestMasksAndEpochs:
    def test_bs_crash_window_is_half_open(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(1, 10, 20))
        assert not timeline.bs_down_at(1, 9)
        assert timeline.bs_down_at(1, 10)
        assert timeline.bs_down_at(1, 19)
        assert not timeline.bs_down_at(1, 20)
        assert not timeline.bs_down_at(0, 15)

    def test_cs_crash_downs_all_node_block_servers(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.CS_CRASH, start_s=5, end_s=9, target=1
        )
        timeline = _timeline(wide_fleet, event)
        # Node 1 hosts BSs 2 and 3 (2 per node).
        assert timeline.bs_down_at(2, 5) and timeline.bs_down_at(3, 5)
        assert not timeline.bs_down_at(0, 5)
        assert not timeline.bs_down_at(1, 5)

    def test_epoch_index_is_constant_between_boundaries(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, 10, 20), _crash(1, 15, 25))
        assert list(timeline.epoch_starts) == [0, 10, 15, 20, 25, T]
        index = timeline.epoch_index
        for epoch in range(timeline.num_epochs):
            lo = timeline.epoch_starts[epoch]
            hi = timeline.epoch_starts[epoch + 1]
            assert (index[lo:hi] == epoch).all()

    def test_epoch_masks_match_second_masks(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, 10, 20), _crash(1, 15, 25))
        for epoch in range(timeline.num_epochs):
            start = int(timeline.epoch_starts[epoch])
            for bs in range(timeline.num_bs):
                assert timeline.bs_down_ep[bs, epoch] == timeline.bs_down_at(
                    bs, start
                )

    def test_degrade_does_not_cut_epochs(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.DEGRADE,
            start_s=3,
            end_s=30,
            component="frontend",
            multiplier=2.0,
        )
        timeline = _timeline(wide_fleet, event)
        assert timeline.num_epochs == 1
        assert timeline.has_degrade and not timeline.has_churn

    def test_overlapping_degrades_multiply(self, wide_fleet):
        a = FaultEvent(
            kind=FaultKind.DEGRADE, start_s=0, end_s=20,
            component="backend", multiplier=2.0,
        )
        b = FaultEvent(
            kind=FaultKind.DEGRADE, start_s=10, end_s=30,
            component="backend", multiplier=3.0,
        )
        timeline = _timeline(wide_fleet, a, b)
        series = timeline.multiplier_series("backend")
        assert series[5] == 2.0
        assert series[15] == 6.0
        assert series[25] == 3.0
        assert series[35] == 1.0
        assert timeline.multiplier_series("frontend") is None

    def test_degrade_all_touches_every_component(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.DEGRADE, start_s=0, end_s=5,
            component="all", multiplier=4.0,
        )
        timeline = _timeline(wide_fleet, event)
        for component in (
            "compute", "frontend", "block_server", "backend", "chunk_server"
        ):
            assert timeline.multiplier_series(component)[0] == 4.0


class TestRedirectMap:
    def test_single_crash_redirects_to_next_bs(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, 10, 20))
        epoch = int(timeline.epoch_index[15])
        assert timeline.redirect_map[0, epoch] == 1
        assert timeline.redirect_attempts[0, epoch] == 1
        healthy_epoch = int(timeline.epoch_index[5])
        assert timeline.redirect_map[0, healthy_epoch] == 0

    def test_chain_skips_down_replicas(self, wide_fleet):
        timeline = _timeline(
            wide_fleet, _crash(0, 10, 20), _crash(1, 10, 20)
        )
        epoch = int(timeline.epoch_index[15])
        assert timeline.redirect_map[0, epoch] == 2
        assert timeline.redirect_attempts[0, epoch] == 2

    def test_attempt_budget_exhausted_means_drop(self, wide_fleet):
        timeline = _timeline(
            wide_fleet,
            _crash(0, 10, 20),
            _crash(1, 10, 20),
            max_redirect_attempts=1,
        )
        epoch = int(timeline.epoch_index[15])
        assert timeline.redirect_map[0, epoch] == -1

    def test_all_down_means_drop(self, wide_fleet):
        events = [_crash(bs, 10, 20) for bs in range(4)]
        timeline = _timeline(wide_fleet, *events)
        epoch = int(timeline.epoch_index[15])
        assert (timeline.redirect_map[:, epoch] == -1).all()


class TestDrainLookups:
    def test_bs_drain_is_first_post_recovery_second(self, wide_fleet):
        timeline = _timeline(
            wide_fleet, _crash(2, 10, 20), policy=RedirectPolicy.QUEUE
        )
        drain = timeline.bs_drain_seconds(2)
        assert drain[5] == 5                 # serving: drains immediately
        assert (drain[10:20] == 20).all()    # held until recovery
        assert drain[20] == 20

    def test_unrecovered_window_never_drains(self, wide_fleet):
        timeline = _timeline(
            wide_fleet, _crash(2, 30, T), policy=RedirectPolicy.QUEUE
        )
        assert (timeline.bs_drain_seconds(2)[30:] == -1).all()

    def test_adjacent_windows_merge_for_draining(self, wide_fleet):
        timeline = _timeline(
            wide_fleet,
            _crash(1, 5, 10),
            _crash(1, 10, 15),
            policy=RedirectPolicy.QUEUE,
        )
        assert (timeline.bs_drain_seconds(1)[5:15] == 15).all()

    def test_qp_drain(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.QP_STALL, start_s=4, end_s=8, target=0
        )
        timeline = _timeline(wide_fleet, event, policy=RedirectPolicy.QUEUE)
        drain = timeline.qp_drain_seconds(0)
        assert (drain[4:8] == 8).all()
        assert drain[3] == 3


class TestBlackoutAndSchedule:
    def test_blackout_periods(self, wide_fleet):
        event = FaultEvent(
            kind=FaultKind.MIGRATION_BLACKOUT, start_s=12, end_s=22
        )
        timeline = _timeline(wide_fleet, event)
        mask = timeline.blackout_periods(10, 4)
        assert list(mask) == [False, True, True, False]
        assert timeline.has_any_effect and not timeline.has_churn

    def test_blackout_periods_rejects_bad_period(self, wide_fleet):
        with pytest.raises(ConfigError, match="period_seconds"):
            _timeline(wide_fleet).blackout_periods(0, 4)

    def test_failure_schedule_is_chronological(self, wide_fleet):
        timeline = _timeline(
            wide_fleet, _crash(1, 10, 20), _crash(0, 5, T + 10)
        )
        schedule = timeline.failure_schedule()
        seconds = [entry[0] for entry in schedule]
        assert seconds == sorted(seconds)
        # The clipped-window crash never recovers inside the horizon.
        actions = [(s, a, tgt) for s, a, _, tgt in schedule]
        assert (5, "fail", 0) in actions
        assert (10, "fail", 1) in actions
        assert (20, "recover", 1) in actions
        assert all(
            not (action == "recover" and target == 0)
            for _, action, target in actions
        )

    def test_empty_plan_has_no_effect(self, wide_fleet):
        timeline = _timeline(wide_fleet)
        assert not timeline.has_any_effect
        assert timeline.num_epochs == 1
        assert (timeline.epoch_index == 0).all()


class TestTraceStorageFaults:
    def test_redirect_rewrites_targets_and_counts_retries(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, 10, 20))
        bs_ids = np.array([0, 0, 1, 0], dtype=np.int64)
        seconds = np.array([15, 5, 15, 12], dtype=np.int64)
        out_bs, out_sec, keep, retries, stats = timeline.trace_storage_faults(
            bs_ids, seconds
        )
        assert list(out_bs) == [1, 0, 1, 1]
        assert list(out_sec) == [15, 5, 15, 12]
        assert keep.all()
        assert list(retries) == [1, 0, 0, 1]
        assert stats["redirected_ios"] == 2 and stats["retries"] == 2
        # Inputs are never mutated.
        assert list(bs_ids) == [0, 0, 1, 0]

    def test_queue_moves_seconds_to_drain(self, wide_fleet):
        timeline = _timeline(
            wide_fleet,
            _crash(0, 10, 20),
            _crash(1, 30, T),
            policy=RedirectPolicy.QUEUE,
        )
        bs_ids = np.array([0, 1], dtype=np.int64)
        seconds = np.array([15, 35], dtype=np.int64)
        out_bs, out_sec, keep, retries, stats = timeline.trace_storage_faults(
            bs_ids, seconds
        )
        assert out_sec[0] == 20          # drains at recovery
        assert not keep[1]               # never recovers: dropped
        assert retries is None
        assert stats["queued_ios"] == 1 and stats["dropped_ios"] == 1

    def test_alive_mask_prevents_double_processing(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, 10, 20))
        bs_ids = np.array([0], dtype=np.int64)
        seconds = np.array([15], dtype=np.int64)
        alive = np.array([False])
        _, _, keep, retries, stats = timeline.trace_storage_faults(
            bs_ids, seconds, alive=alive
        )
        assert keep is None and retries is None
        assert stats["redirected_ios"] == 0

    def test_untouched_when_no_overlap(self, wide_fleet):
        timeline = _timeline(wide_fleet, _crash(0, 10, 20))
        bs_ids = np.array([1, 2], dtype=np.int64)
        seconds = np.array([15, 15], dtype=np.int64)
        out_bs, out_sec, keep, retries, _ = timeline.trace_storage_faults(
            bs_ids, seconds
        )
        assert out_bs is bs_ids and out_sec is seconds
        assert keep is None and retries is None
