"""Tests for the hotspot LBA model (§7 access patterns)."""

import numpy as np
import pytest

from repro.util import ConfigError
from repro.util.rng import spawn_rng
from repro.util.units import GiB, MiB
from repro.workload import HotspotLbaModel, LbaModelConfig
from repro.workload.lba import PAGE_BYTES


def make_model(seed=0, **overrides) -> HotspotLbaModel:
    defaults = dict(
        capacity_bytes=4 * GiB,
        hot_block_bytes=64 * MiB,
        hot_access_fraction=0.4,
        hot_write_bias=0.3,
        sequential_fraction=0.3,
    )
    defaults.update(overrides)
    return HotspotLbaModel(LbaModelConfig(**defaults), spawn_rng(seed, "lba"))


class TestLbaModelConfig:
    def test_rejects_hot_block_bigger_than_capacity(self):
        with pytest.raises(ConfigError):
            LbaModelConfig(
                capacity_bytes=MiB,
                hot_block_bytes=2 * MiB,
                hot_access_fraction=0.5,
                hot_write_bias=0.1,
                sequential_fraction=0.5,
            )

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigError):
            LbaModelConfig(
                capacity_bytes=GiB,
                hot_block_bytes=MiB,
                hot_access_fraction=1.0,
                hot_write_bias=0.1,
                sequential_fraction=0.5,
            )


class TestOffsets:
    def test_offsets_page_aligned_and_in_range(self):
        model = make_model()
        is_write = np.array([True, False] * 500)
        offsets = model.draw_offsets(spawn_rng(1, "io"), is_write)
        assert (offsets % PAGE_BYTES == 0).all()
        assert (offsets >= 0).all()
        assert (offsets < 4 * GiB).all()

    def test_empty_batch(self):
        model = make_model()
        offsets = model.draw_offsets(spawn_rng(1, "io"), np.array([], dtype=bool))
        assert offsets.size == 0

    def test_hot_block_attracts_accesses(self):
        model = make_model(hot_access_fraction=0.6)
        is_write = np.ones(4000, dtype=bool)
        offsets = model.draw_offsets(spawn_rng(2, "io"), is_write)
        lo, hi = model.hot_range_bytes
        in_hot = ((offsets >= lo) & (offsets < hi)).mean()
        # Hot fraction for writes is boosted by the write bias.
        assert in_hot > 0.5

    def test_write_bias_makes_hot_block_write_dominant(self):
        model = make_model(hot_write_bias=0.5, hot_access_fraction=0.3)
        rng = spawn_rng(3, "io")
        is_write = rng.random(20000) < 0.5
        offsets = model.draw_offsets(spawn_rng(4, "io"), is_write)
        lo, hi = model.hot_range_bytes
        in_hot = (offsets >= lo) & (offsets < hi)
        writes_in_hot = (is_write & in_hot).sum()
        reads_in_hot = (~is_write & in_hot).sum()
        assert writes_in_hot > reads_in_hot

    def test_hot_writes_mix_appends_and_rewrites(self):
        model = make_model(hot_access_fraction=0.9, hot_write_bias=0.0)
        is_write = np.ones(2000, dtype=bool)
        # Force all IOs hot by passing hot_fraction=1.0.
        offsets = model.draw_offsets(spawn_rng(5, "io"), is_write, hot_fraction=1.0)
        lo, hi = model.hot_range_bytes
        assert ((offsets >= lo) & (offsets < hi)).all()
        # Rewrites of popular pages create reuse: fewer distinct pages than IOs.
        assert np.unique(offsets).size < offsets.size

    def test_popular_pages_stable_across_calls(self):
        # The popularity ranking must be a property of the model, not of a
        # single call, or sampled traces would show no reuse.
        model = make_model(hot_access_fraction=0.9)
        is_write = np.ones(3000, dtype=bool)
        a = model.draw_offsets(spawn_rng(6, "io"), is_write, hot_fraction=1.0)
        b = model.draw_offsets(spawn_rng(7, "io"), is_write, hot_fraction=1.0)
        top_a = set(np.unique(a[:1500]).tolist())
        overlap = np.isin(b, list(top_a)).mean()
        assert overlap > 0.2


class TestHotFractionSeries:
    def test_bounded(self):
        model = make_model()
        series = model.hot_fraction_series(spawn_rng(6, "hf"), 2000)
        assert (series >= 0).all()
        assert (series <= 1).all()

    def test_mean_near_configured(self):
        model = make_model(hot_access_fraction=0.4)
        series = model.hot_fraction_series(spawn_rng(7, "hf"), 20000)
        assert series.mean() == pytest.approx(0.4, abs=0.12)

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigError):
            make_model().hot_fraction_series(spawn_rng(0, "hf"), 0)


class TestSegmentWeights:
    def test_sums_to_one(self):
        model = make_model(capacity_bytes=8 * GiB)
        weights = model.segment_weights(GiB, spawn_rng(8, "sw"))
        assert weights.size == 8
        assert weights.sum() == pytest.approx(1.0)

    def test_hot_segment_gets_hot_share(self):
        model = make_model(capacity_bytes=8 * GiB, hot_access_fraction=0.7)
        weights = model.segment_weights(GiB, spawn_rng(9, "sw"))
        lo, __ = model.hot_range_bytes
        hot_segment = lo // GiB
        assert weights[hot_segment] >= 0.7 - 0.05

    def test_single_segment_vd(self):
        model = make_model(capacity_bytes=GiB)
        weights = model.segment_weights(32 * GiB, spawn_rng(0, "sw"))
        assert weights.tolist() == [1.0]

    def test_rejects_bad_segment_size(self):
        with pytest.raises(ConfigError):
            make_model().segment_weights(0, spawn_rng(0, "sw"))


class TestHotProbability:
    def test_write_boost_read_discount(self):
        model = make_model(hot_write_bias=0.4)
        probs = model.hot_probability(np.array([True, False]), 0.5)
        assert probs[0] == pytest.approx(0.7)
        assert probs[1] == pytest.approx(0.3)

    def test_clipped_to_one(self):
        model = make_model(hot_write_bias=0.5)
        probs = model.hot_probability(np.array([True]), 0.9)
        assert probs[0] == 1.0
