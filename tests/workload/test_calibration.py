"""Tests for the workload calibration guard."""

import numpy as np
import pytest

from repro.util import ConfigError
from repro.util.rng import RngFactory
from repro.workload import FleetConfig, WorkloadGenerator, build_fleet
from repro.workload.calibration import (
    CalibrationTargets,
    calibrate,
)


class TestTargets:
    def test_rejects_bad_band(self):
        with pytest.raises(ConfigError):
            CalibrationTargets(hot_fraction_band=(0.5, 0.2))

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            CalibrationTargets(min_write_to_read_ratio=0.0)


class TestCalibrate:
    def test_rejects_empty_traffic(self, small_fleet):
        with pytest.raises(ConfigError):
            calibrate(small_fleet, [])

    def test_report_renders(self, small_fleet, small_traffic):
        report = calibrate(small_fleet, small_traffic)
        text = report.render()
        assert "write/read traffic ratio" in text
        assert "CoV vm->vd" in text

    def test_generator_passes_averaged_calibration(self):
        """The regression guard: the default generator keeps the paper's
        headline shapes, averaged over several seeds (single small fleets
        are noisy by design)."""
        ratios, failures = [], []
        for seed in range(5):
            config = FleetConfig(
                num_users=10,
                num_vms=40,
                num_compute_nodes=10,
                num_storage_nodes=6,
            )
            fleet = build_fleet(config, RngFactory(100 + seed))
            traffic = WorkloadGenerator(
                fleet, 300, RngFactory(100 + seed)
            ).generate_all()
            report = calibrate(
                fleet,
                traffic,
                CalibrationTargets(
                    # A single 40-VM fleet can be dominated by one
                    # read-monster draw, so the per-seed ratio band is
                    # loose; the cross-seed median below is the real check.
                    min_write_to_read_ratio=0.1,
                    min_vm_ccr20=0.4,
                    min_read_p2a_ratio=0.5,
                    min_vm2vd_cov=0.4,
                ),
            )
            ratios.append(report.write_to_read_ratio)
            failures.extend(report.failures)
        assert not failures, failures
        # The typical fleet is write-dominant-ish; only monster-read
        # outlier fleets fall well below parity.
        assert np.median(ratios) > 0.5

    def test_detects_flat_fleet(self, small_fleet, small_traffic):
        # Absurd targets must fail: guards that cannot fail are not guards.
        report = calibrate(
            small_fleet,
            small_traffic,
            CalibrationTargets(min_vm_ccr20=0.999),
        )
        assert not report.ok
        assert any("CCR20" in failure for failure in report.failures)
