"""Tests for the ON/OFF burst model and diurnal profile."""

import numpy as np
import pytest

from repro.util import ConfigError
from repro.util.rng import spawn_rng
from repro.workload import BurstConfig, OnOffBurstModel, diurnal_profile


class TestBurstConfig:
    def test_mean_off_from_duty_cycle(self):
        config = BurstConfig(duty_cycle=0.25, mean_on_seconds=30.0)
        assert config.mean_off_seconds == pytest.approx(90.0)

    def test_always_on(self):
        config = BurstConfig(duty_cycle=1.0)
        assert config.mean_off_seconds == 0.0

    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigError):
            BurstConfig(duty_cycle=0.0)
        with pytest.raises(ConfigError):
            BurstConfig(duty_cycle=1.5)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ConfigError):
            BurstConfig(amplitude_max=0.5)


class TestOnOffBurstModel:
    def test_mean_normalized(self):
        model = OnOffBurstModel(BurstConfig(duty_cycle=0.3))
        series = model.series(spawn_rng(1, "b"), 5000)
        assert series.mean() == pytest.approx(1.0)

    def test_non_negative(self):
        model = OnOffBurstModel(BurstConfig(duty_cycle=0.1, base_fraction=0.0))
        series = model.series(spawn_rng(2, "b"), 2000)
        assert (series >= 0).all()

    def test_always_on_is_flat(self):
        model = OnOffBurstModel(BurstConfig(duty_cycle=1.0))
        series = model.series(spawn_rng(3, "b"), 100)
        assert np.allclose(series, 1.0)

    def test_low_duty_cycle_is_bursty(self):
        rare = OnOffBurstModel(
            BurstConfig(duty_cycle=0.02, amplitude_alpha=0.9, base_fraction=0.0)
        ).series(spawn_rng(4, "b"), 5000)
        common = OnOffBurstModel(
            BurstConfig(duty_cycle=0.8, amplitude_alpha=2.0, base_fraction=0.3)
        ).series(spawn_rng(4, "b"), 5000)
        # P2A of the rare-burst series far exceeds the steady one.
        assert rare.max() > 3 * common.max()

    def test_length(self):
        model = OnOffBurstModel(BurstConfig())
        assert model.series(spawn_rng(0, "b"), 123).shape == (123,)

    def test_rejects_bad_length(self):
        model = OnOffBurstModel(BurstConfig())
        with pytest.raises(ConfigError):
            model.series(spawn_rng(0, "b"), 0)

    def test_deterministic_given_rng(self):
        model = OnOffBurstModel(BurstConfig(duty_cycle=0.2))
        a = model.series(spawn_rng(5, "b"), 500)
        b = model.series(spawn_rng(5, "b"), 500)
        assert (a == b).all()


class TestDiurnalProfile:
    def test_mean_one(self):
        profile = diurnal_profile(86400, amplitude=0.3)
        assert profile.mean() == pytest.approx(1.0, abs=1e-6)

    def test_zero_amplitude_flat(self):
        profile = diurnal_profile(100, amplitude=0.0)
        assert np.allclose(profile, 1.0)

    def test_peak_location(self):
        profile = diurnal_profile(1000, peak_at_fraction=0.5, amplitude=0.3)
        assert abs(int(np.argmax(profile)) - 500) <= 1

    def test_positive(self):
        profile = diurnal_profile(500, amplitude=0.9)
        assert (profile > 0).all()

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            diurnal_profile(0)
        with pytest.raises(ConfigError):
            diurnal_profile(10, amplitude=1.0)
        with pytest.raises(ConfigError):
            diurnal_profile(10, peak_at_fraction=2.0)
