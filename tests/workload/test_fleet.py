"""Tests for fleet construction."""

import pytest

from repro.util import ConfigError
from repro.util.rng import RngFactory
from repro.util.units import GiB
from repro.workload import APPLICATION_PROFILES, FleetConfig, build_fleet


class TestFleetConfig:
    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ConfigError):
            FleetConfig(num_users=0)
        with pytest.raises(ConfigError):
            FleetConfig(num_vms=0)

    def test_rejects_unknown_app(self):
        with pytest.raises(ConfigError):
            FleetConfig(app_weights={"Mainframe": 1.0})

    def test_rejects_zero_weights(self):
        with pytest.raises(ConfigError):
            FleetConfig(app_weights={"Database": 0.0})

    def test_num_block_servers(self):
        config = FleetConfig(num_storage_nodes=4, block_servers_per_node=2)
        assert config.num_block_servers == 8


class TestBuildFleet:
    def test_deterministic(self, small_fleet_config):
        a = build_fleet(small_fleet_config, RngFactory(1))
        b = build_fleet(small_fleet_config, RngFactory(1))
        assert [vm.application for vm in a.vms] == [
            vm.application for vm in b.vms
        ]
        assert [vd.capacity_bytes for vd in a.vds] == [
            vd.capacity_bytes for vd in b.vds
        ]

    def test_vm_count(self, small_fleet):
        assert len(small_fleet.vms) == small_fleet.config.num_vms

    def test_ids_are_dense(self, small_fleet):
        assert [vm.vm_id for vm in small_fleet.vms] == list(
            range(len(small_fleet.vms))
        )
        assert [vd.vd_id for vd in small_fleet.vds] == list(
            range(len(small_fleet.vds))
        )
        assert [qp.qp_id for qp in small_fleet.queue_pairs] == list(
            range(len(small_fleet.queue_pairs))
        )
        assert [seg.segment_id for seg in small_fleet.segments] == list(
            range(len(small_fleet.segments))
        )

    def test_every_vm_has_a_vd(self, small_fleet):
        vm_ids_with_vds = {vd.vm_id for vd in small_fleet.vds}
        assert vm_ids_with_vds == {vm.vm_id for vm in small_fleet.vms}

    def test_qp_ranges_consistent(self, small_fleet):
        for vd in small_fleet.vds:
            qps = [
                qp for qp in small_fleet.queue_pairs if qp.vd_id == vd.vd_id
            ]
            assert len(qps) == vd.num_queue_pairs
            assert [qp.qp_id for qp in qps] == list(vd.qp_ids)

    def test_segments_cover_capacity(self, small_fleet):
        seg_bytes = small_fleet.config.segment_bytes
        for vd in small_fleet.vds:
            assert vd.num_segments == -(-vd.capacity_bytes // seg_bytes)
            segments = [
                s for s in small_fleet.segments if s.vd_id == vd.vd_id
            ]
            assert len(segments) == vd.num_segments

    def test_vd_segments_spread_over_block_servers(self, small_fleet):
        num_bs = small_fleet.config.num_block_servers
        for vd in small_fleet.vds:
            segments = [
                s for s in small_fleet.segments if s.vd_id == vd.vd_id
            ]
            bs_ids = [s.block_server_id for s in segments]
            # Round-robin: no BS holds two segments of one VD until all
            # BSs hold one.
            if len(segments) <= num_bs:
                assert len(set(bs_ids)) == len(segments)

    def test_applications_valid(self, small_fleet):
        for vm in small_fleet.vms:
            assert vm.application in APPLICATION_PROFILES

    def test_placement_in_range(self, small_fleet):
        for vm in small_fleet.vms:
            assert 0 <= vm.compute_node_id < small_fleet.config.num_compute_nodes

    def test_bare_metal_nodes_host_single_vm(self):
        config = FleetConfig(
            num_users=5,
            num_vms=30,
            num_compute_nodes=10,
            bare_metal_fraction=0.3,
            num_storage_nodes=4,
        )
        fleet = build_fleet(config, RngFactory(3))
        # With 10 nodes and 30% bare metal, 3 nodes are bare-metal; they
        # receive the first VMs and nothing else.
        counts = {}
        for vm in fleet.vms:
            counts[vm.compute_node_id] = counts.get(vm.compute_node_id, 0) + 1
        singles = [node for node, count in counts.items() if count == 1]
        assert len(singles) >= 3

    def test_specs_exported(self, small_fleet):
        spec = small_fleet.vd_spec(0)
        assert spec.capacity_bytes == small_fleet.vds[0].capacity_bytes
        vm_spec = small_fleet.vm_spec(0)
        assert vm_spec.application == small_fleet.vms[0].application

    def test_wt_helpers(self, small_fleet):
        per = small_fleet.config.workers_per_node
        assert list(small_fleet.wt_ids_of_node(0)) == list(range(per))
        assert small_fleet.node_of_wt(per) == 1
        assert small_fleet.num_wts == per * small_fleet.config.num_compute_nodes

    def test_caps_monotone_with_capacity(self, small_fleet):
        by_capacity = sorted(
            small_fleet.vds, key=lambda vd: vd.capacity_bytes
        )
        caps = [vd.throughput_cap_bps for vd in by_capacity]
        assert all(a <= b + 1e-9 for a, b in zip(caps, caps[1:]))
