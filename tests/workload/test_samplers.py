"""Tests for heavy-tailed sampling primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import ConfigError
from repro.util.rng import spawn_rng
from repro.workload import bounded_pareto, lognormal_heavy, skewed_weights, zipf_weights


class TestZipfWeights:
    def test_sums_to_one(self):
        assert zipf_weights(10, 1.1).sum() == pytest.approx(1.0)

    def test_alpha_zero_uniform(self):
        weights = zipf_weights(5, 0.0)
        assert np.allclose(weights, 0.2)

    def test_decreasing(self):
        weights = zipf_weights(20, 1.0)
        assert (np.diff(weights) < 0).all()

    def test_higher_alpha_more_concentrated(self):
        low = zipf_weights(100, 0.5)
        high = zipf_weights(100, 2.0)
        assert high[0] > low[0]

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigError):
            zipf_weights(5, -1.0)


class TestBoundedPareto:
    def test_within_bounds(self):
        rng = spawn_rng(1, "bp")
        draws = bounded_pareto(rng, 1.2, 1.0, 100.0, size=2000)
        assert draws.min() >= 1.0
        assert draws.max() <= 100.0

    def test_heavier_tail_for_smaller_alpha(self):
        rng1 = spawn_rng(1, "bp")
        rng2 = spawn_rng(1, "bp")
        heavy = bounded_pareto(rng1, 0.8, 1.0, 1000.0, size=5000)
        light = bounded_pareto(rng2, 2.5, 1.0, 1000.0, size=5000)
        assert np.mean(heavy) > np.mean(light)

    def test_scalar_draw(self):
        value = bounded_pareto(spawn_rng(0, "bp"), 1.0, 2.0, 4.0)
        assert 2.0 <= float(value) <= 4.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            bounded_pareto(spawn_rng(0, "bp"), 1.0, 5.0, 2.0)
        with pytest.raises(ConfigError):
            bounded_pareto(spawn_rng(0, "bp"), 0.0, 1.0, 2.0)

    @settings(max_examples=25)
    @given(
        alpha=st.floats(min_value=0.3, max_value=3.0),
        upper=st.floats(min_value=2.0, max_value=1e6),
    )
    def test_bounds_hold_for_any_params(self, alpha, upper):
        draws = bounded_pareto(spawn_rng(3, "bp"), alpha, 1.0, upper, size=100)
        assert ((draws >= 1.0) & (draws <= upper)).all()


class TestLognormalHeavy:
    def test_median_parameterization(self):
        rng = spawn_rng(5, "ln")
        draws = lognormal_heavy(rng, 100.0, 1.0, size=20001)
        assert np.median(draws) == pytest.approx(100.0, rel=0.1)

    def test_zero_sigma_is_constant(self):
        draws = lognormal_heavy(spawn_rng(0, "ln"), 42.0, 0.0, size=10)
        assert np.allclose(draws, 42.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            lognormal_heavy(spawn_rng(0, "ln"), 0.0, 1.0)
        with pytest.raises(ConfigError):
            lognormal_heavy(spawn_rng(0, "ln"), 1.0, -1.0)


class TestSkewedWeights:
    def test_sums_to_one(self):
        weights = skewed_weights(spawn_rng(0, "w"), 8, 0.3)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= 0).all()

    def test_single_element(self):
        assert skewed_weights(spawn_rng(0, "w"), 1, 0.1).tolist() == [1.0]

    def test_small_concentration_more_skewed(self):
        rng = spawn_rng(9, "w")
        tight = [skewed_weights(rng, 8, 0.05).max() for __ in range(50)]
        loose = [skewed_weights(rng, 8, 50.0).max() for __ in range(50)]
        assert np.mean(tight) > np.mean(loose)

    def test_tiny_concentration_survives_underflow(self):
        # Extremely small concentrations can underflow the Dirichlet draw;
        # the fallback must still return a valid weight vector.
        for trial in range(20):
            weights = skewed_weights(spawn_rng(trial, "w"), 4, 1e-8)
            assert weights.sum() == pytest.approx(1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            skewed_weights(spawn_rng(0, "w"), 0, 1.0)
        with pytest.raises(ConfigError):
            skewed_weights(spawn_rng(0, "w"), 3, 0.0)
