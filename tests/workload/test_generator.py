"""Tests for per-VD traffic generation."""

import numpy as np
import pytest

from repro.util import ConfigError
from repro.util.rng import RngFactory
from repro.workload import WorkloadGenerator


class TestWorkloadGenerator:
    def test_rejects_bad_duration(self, small_fleet, rngs):
        with pytest.raises(ConfigError):
            WorkloadGenerator(small_fleet, 0, rngs)

    def test_covers_all_vds(self, small_fleet, small_traffic):
        assert len(small_traffic) == len(small_fleet.vds)

    def test_series_shapes(self, small_generator, small_traffic):
        t = small_generator.duration_seconds
        for traffic in small_traffic:
            assert traffic.read_bytes.shape == (t,)
            assert traffic.write_bytes.shape == (t,)
            assert traffic.read_iops.shape == (t,)
            assert traffic.write_iops.shape == (t,)

    def test_non_negative(self, small_traffic):
        for traffic in small_traffic:
            assert (traffic.read_bytes >= 0).all()
            assert (traffic.write_bytes >= 0).all()

    def test_weights_normalized(self, small_fleet, small_traffic):
        for traffic in small_traffic:
            vd = small_fleet.vds[traffic.vd_id]
            assert traffic.qp_read_weights.shape == (vd.num_queue_pairs,)
            assert traffic.qp_write_weights.shape == (vd.num_queue_pairs,)
            assert traffic.qp_read_weights.sum() == pytest.approx(1.0)
            assert traffic.qp_write_weights.sum() == pytest.approx(1.0)
            assert traffic.segment_read_weights.shape == (vd.num_segments,)
            assert traffic.segment_read_weights.sum() == pytest.approx(1.0)
            assert traffic.segment_write_weights.sum() == pytest.approx(1.0)

    def test_iops_consistent_with_bytes(self, small_traffic):
        for traffic in small_traffic:
            expected = traffic.read_bytes / traffic.mean_read_size_bytes
            assert np.allclose(traffic.read_iops, expected)

    def test_cached(self, small_generator):
        a = small_generator.generate_vd(0)
        b = small_generator.generate_vd(0)
        assert a is b

    def test_deterministic_across_instances(self, small_fleet, rngs):
        a = WorkloadGenerator(small_fleet, 120, rngs).generate_vd(1)
        b = WorkloadGenerator(small_fleet, 120, rngs).generate_vd(1)
        assert (a.read_bytes == b.read_bytes).all()
        assert (a.qp_write_weights == b.qp_write_weights).all()

    def test_hot_fraction_series_bounded(self, small_traffic):
        for traffic in small_traffic:
            assert (traffic.hot_fraction_series >= 0).all()
            assert (traffic.hot_fraction_series <= 1).all()


class TestFleetLevelShape:
    """The generator must reproduce the paper's headline shapes."""

    def test_write_dominant_in_total(self, small_fleet, rngs):
        # Aggregate write traffic exceeds read (Table 2: 21.7 vs 6.5 PiB).
        # One small fleet draw is noisy, so average over several seeds.
        from repro.workload import build_fleet

        reads, writes = 0.0, 0.0
        for seed in range(4):
            fleet = build_fleet(small_fleet.config, RngFactory(seed))
            gen = WorkloadGenerator(fleet, 120, RngFactory(seed))
            for traffic in gen.generate_all():
                reads += traffic.read_bytes.sum()
                writes += traffic.write_bytes.sum()
        assert writes > reads * 0.8

    def test_read_skew_exceeds_write_skew(self, small_fleet, small_traffic):
        from repro.stats import ccr

        vm_read, vm_write = {}, {}
        for traffic in small_traffic:
            vm = small_fleet.vds[traffic.vd_id].vm_id
            vm_read[vm] = vm_read.get(vm, 0.0) + traffic.read_bytes.sum()
            vm_write[vm] = vm_write.get(vm, 0.0) + traffic.write_bytes.sum()
        read_ccr = ccr(list(vm_read.values()), 0.2)
        write_ccr = ccr(list(vm_write.values()), 0.2)
        # Both highly skewed; read at least comparable to write.
        assert read_ccr > 0.5
        assert write_ccr > 0.4
