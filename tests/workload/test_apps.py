"""Tests for the application profiles (Table 5 categories)."""

import pytest

from repro.util import ConfigError
from repro.workload import APPLICATION_PROFILES, application_names, profile_for


EXPECTED = {"BigData", "WebApp", "Middleware", "FileSystem", "Database", "Docker"}


class TestProfiles:
    def test_six_categories(self):
        assert set(APPLICATION_PROFILES) == EXPECTED

    def test_names_sorted_and_stable(self):
        assert application_names() == tuple(sorted(EXPECTED))

    def test_lookup(self):
        assert profile_for("Database").name == "Database"

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            profile_for("Spreadsheet")

    def test_bigdata_least_skewed_docker_most(self):
        # Table 4: BigData has the lowest 1%-CCR, Docker the highest; in
        # the generator this is controlled by the intensity sigma.
        sigmas = {
            name: profile.intensity_sigma
            for name, profile in APPLICATION_PROFILES.items()
        }
        assert sigmas["BigData"] == min(sigmas.values())
        assert sigmas["Docker"] == max(sigmas.values())

    def test_read_skew_extra_positive(self):
        # Observation 2: read skew exceeds write skew in every category.
        for profile in APPLICATION_PROFILES.values():
            assert profile.read_sigma_extra > 0

    def test_population_weights_normalizable(self):
        total = sum(p.population_weight for p in APPLICATION_PROFILES.values())
        assert total > 0

    def test_vd_ranges_valid(self):
        for profile in APPLICATION_PROFILES.values():
            lo, hi = profile.vd_count_range
            assert 1 <= lo <= hi

    def test_capacity_choices_positive(self):
        for profile in APPLICATION_PROFILES.values():
            assert all(c > 0 for c in profile.capacity_gib_choices)
