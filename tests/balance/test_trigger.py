"""Fixed-trigger planner, shared policies, and the head-to-head bar.

The acceptance criterion lives here: at every tested fleet scale the
greedy plan's final badness (and BS-load CoV) is <= the fixed-trigger
plan's on the same snapshot.
"""

import numpy as np
import pytest

from repro.balance import (
    BalanceConfig,
    MoveKind,
    StateShape,
    TriggerConfig,
    choose_shed_segments,
    dimension_covs,
    fixed_trigger_plan,
    plan_moves,
    random_cluster_state,
    wt_swap_decision,
)
from repro.util.errors import ConfigError

#: Growing fleet scales for the head-to-head (the sweep experiment runs
#: the same comparison against simulated DCs; this is the fast pin).
SCALES = [
    StateShape(num_compute_nodes=4, num_block_servers=6, num_vds=16),
    StateShape(),  # 8 nodes / 12 BS / 32 VDs
    StateShape.medium(),  # 16 nodes / 24 BS / 96 VDs
]


class TestWtSwapDecision:
    def test_fires_above_the_trigger(self):
        assert wt_swap_decision(np.array([10.0, 2.0, 5.0]), 1.2) == (0, 1)

    def test_quiet_below_the_trigger(self):
        assert wt_swap_decision(np.array([5.0, 5.0, 5.1]), 1.2) is None

    def test_idle_coldest_always_fires(self):
        assert wt_swap_decision(np.array([1.0, 0.0]), 100.0) == (0, 1)

    def test_degenerate_vectors_never_fire(self):
        assert wt_swap_decision(np.zeros(0), 1.2) is None
        assert wt_swap_decision(np.zeros(4), 1.2) is None


class TestChooseShedSegments:
    def test_hottest_admissible_first(self):
        chosen = choose_shed_segments(
            [10, 11, 12], np.array([1.0, 5.0, 3.0]), 100.0, np.inf, 8
        )
        assert chosen == [11, 12, 10]

    def test_ceiling_skips_whales(self):
        chosen = choose_shed_segments(
            [10, 11, 12], np.array([1.0, 50.0, 3.0]), 3.5, 10.0, 8
        )
        assert chosen == [12, 10]

    def test_stops_at_the_shed_target(self):
        chosen = choose_shed_segments(
            [0, 1, 2], np.array([4.0, 5.0, 3.0]), 5.0, np.inf, 8
        )
        assert chosen == [1]

    def test_max_segments_caps_the_pick(self):
        chosen = choose_shed_segments(
            [0, 1, 2], np.array([4.0, 5.0, 3.0]), 100.0, np.inf, 2
        )
        assert chosen == [1, 0]

    def test_zero_traffic_never_sheds(self):
        assert choose_shed_segments([0, 1], np.zeros(2), 1.0, np.inf, 8) == []


class TestTriggerConfig:
    def test_round_trip(self):
        config = TriggerConfig(trigger_ratio=1.5, max_segments_per_migration=3)
        assert TriggerConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ConfigError, match="trigger_ratio"):
            TriggerConfig(trigger_ratio=1.0)
        with pytest.raises(ConfigError, match="shed_fraction"):
            TriggerConfig(shed_fraction=0.0)


class TestFixedTriggerPlan:
    def test_plan_is_deterministic_and_applies_cleanly(self):
        state = random_cluster_state(19)
        first = fixed_trigger_plan(state)
        second = fixed_trigger_plan(state)
        assert first.to_json() == second.to_json()
        applied = first.apply_to(state.copy())  # exact score re-verification
        from repro.balance import badness

        assert badness(applied, first.weights) == first.final_score

    def test_family_switches_suppress_moves(self):
        state = random_cluster_state(19)
        plan = fixed_trigger_plan(state, TriggerConfig(no_qp_rebinds=True))
        kinds = {p.move.kind for p in plan.moves}
        assert MoveKind.QP_REBIND not in kinds
        plan = fixed_trigger_plan(state, TriggerConfig(no_segment_moves=True))
        kinds = {p.move.kind for p in plan.moves}
        assert MoveKind.SEGMENT_MIGRATE not in kinds

    def test_swaps_cannot_reduce_wt_cov_on_a_snapshot(self):
        # The paper's §4.3 point: a swap permutes WT loads, leaving the
        # multiset — hence the CoV — unchanged.
        state = random_cluster_state(19)
        plan = fixed_trigger_plan(
            state, TriggerConfig(no_segment_moves=True)
        )
        applied = plan.apply_to(state.copy())
        before = np.sort(state.wt_utilization())
        after = np.sort(applied.wt_utilization())
        assert np.array_equal(before, after)


class TestHeadToHead:
    @pytest.mark.parametrize(
        "shape", SCALES, ids=["small", "default", "medium"]
    )
    def test_greedy_meets_or_beats_the_trigger_at_every_scale(self, shape):
        state = random_cluster_state(41, shape)
        greedy = plan_moves(state, BalanceConfig(max_moves=4096))
        trigger = fixed_trigger_plan(state, TriggerConfig())
        assert greedy.final_score <= trigger.final_score
        greedy_covs = dimension_covs(greedy.apply_to(state.copy()))
        trigger_covs = dimension_covs(trigger.apply_to(state.copy()))
        assert greedy_covs["bs"] <= trigger_covs["bs"]
