"""The ``ebs-repro balance`` command: plan, apply, and score modes.

Everything runs through the fast ``--state FILE`` path (a serialized
:func:`random_cluster_state`), which is also what the CI smoke job does —
no study build, sub-second per invocation.
"""

import json

import pytest

from repro.balance import ClusterState, MovePlan, random_cluster_state
from repro.cli import build_parser, main


@pytest.fixture()
def state_file(tmp_path):
    path = tmp_path / "state.json"
    random_cluster_state(7).save(path)
    return str(path)


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["balance", "plan"])
        assert args.mode == "plan"
        assert args.planner == "greedy"
        assert args.scale == "small" and args.seed == 7

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["balance", "optimize"])


class TestPlanMode:
    def test_plan_writes_a_loadable_deterministic_plan(
        self, state_file, tmp_path, capsys
    ):
        out = tmp_path / "plan.json"
        argv = [
            "balance", "plan", "--state", state_file,
            "--max-moves", "4096", "-o", str(out),
        ]
        assert main(argv) == 0
        assert "planner greedy" in capsys.readouterr().out
        first = out.read_text()
        plan = MovePlan.from_json(first)
        assert plan.final_score < plan.initial_score
        # Byte-identical on a re-run: the determinism acceptance bar.
        assert main(argv) == 0
        assert out.read_text() == first

    def test_fixed_trigger_planner(self, state_file, capsys):
        code = main([
            "balance", "plan", "--state", state_file,
            "--planner", "fixed-trigger",
        ])
        assert code == 0
        assert "planner fixed_trigger" in capsys.readouterr().out

    def test_fixed_trigger_rejects_greedy_only_flags(self, state_file, capsys):
        code = main([
            "balance", "plan", "--state", state_file,
            "--planner", "fixed-trigger", "--exclude-qps", "1,2",
        ])
        assert code == 1
        assert "greedy planner" in capsys.readouterr().err

    def test_family_flags_reach_the_planner(self, state_file, tmp_path):
        out = tmp_path / "plan.json"
        assert main([
            "balance", "plan", "--state", state_file,
            "--no-segment-moves", "--no-qp-rebinds", "-o", str(out),
        ]) == 0
        plan = MovePlan.from_json(out.read_text())
        kinds = {p.move.kind.value for p in plan.moves}
        assert kinds <= {"vd_rehome"}

    def test_bad_weights_fail_cleanly(self, state_file, capsys):
        assert main([
            "balance", "plan", "--state", state_file, "--weights", "1:2",
        ]) == 1
        assert "NODE:WT:BS" in capsys.readouterr().err

    def test_blackout_fault_plan_suppresses_segment_moves(
        self, state_file, tmp_path, capsys
    ):
        fault_plan = tmp_path / "faults.json"
        fault_plan.write_text(json.dumps({
            "policy": "redirect",
            "events": [
                {"kind": "migration_blackout", "start_s": 0, "end_s": 60},
            ],
        }))
        out = tmp_path / "plan.json"
        assert main([
            "balance", "plan", "--state", state_file,
            "--fault-plan", str(fault_plan), "-o", str(out),
        ]) == 0
        assert "suppressing segment moves" in capsys.readouterr().err
        plan = MovePlan.from_json(out.read_text())
        assert all(p.move.kind.value != "segment_migrate" for p in plan.moves)


class TestApplyMode:
    def test_apply_verifies_and_replans_empty(self, state_file, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert main([
            "balance", "plan", "--state", state_file,
            "--max-moves", "4096", "-o", str(plan_path),
        ]) == 0
        capsys.readouterr()
        applied_path = tmp_path / "applied.json"
        assert main([
            "balance", "apply", "--state", state_file,
            "--plan", str(plan_path), "-o", str(applied_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "applied" in out
        # A full greedy plan leaves nothing on the table.
        assert "replan with embedded config: 0 move(s)" in out
        applied = ClusterState.load(applied_path)
        assert applied.num_qps == ClusterState.load(state_file).num_qps

    def test_apply_requires_a_plan(self, state_file, capsys):
        assert main(["balance", "apply", "--state", state_file]) == 1
        assert "--plan" in capsys.readouterr().err

    def test_apply_refuses_a_foreign_state(self, state_file, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert main([
            "balance", "plan", "--state", state_file, "-o", str(plan_path),
        ]) == 0
        other = tmp_path / "other.json"
        random_cluster_state(8).save(other)
        capsys.readouterr()
        assert main([
            "balance", "apply", "--state", str(other),
            "--plan", str(plan_path),
        ]) == 1
        assert "different state" in capsys.readouterr().err


class TestScoreMode:
    def test_score_reports_badness_and_covs(self, state_file, tmp_path, capsys):
        out = tmp_path / "score.json"
        assert main([
            "balance", "score", "--state", state_file, "-o", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "badness" in text and "bs" in text
        payload = json.loads(out.read_text())
        assert set(payload) >= {"badness", "dimension_covs", "state_digest"}
        assert payload["state_digest"] == ClusterState.load(state_file).digest()

    def test_save_state_round_trips(self, state_file, tmp_path):
        saved = tmp_path / "copy.json"
        assert main([
            "balance", "score", "--state", state_file,
            "--save-state", str(saved),
        ]) == 0
        assert saved.read_text() == open(state_file).read()

    def test_missing_state_file_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "balance", "score", "--state", str(tmp_path / "nope.json"),
        ]) == 1
        assert "cannot read cluster state" in capsys.readouterr().err
