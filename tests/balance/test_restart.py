"""Differential and idempotence properties: restart stability.

A plan is a pure function of ``(state, config)`` and every recorded
score is an exact recompute, so:

- re-planning an already plan-applied cluster emits an empty plan
  (when the original plan terminated at the min-gain floor);
- truncating a plan at *any* prefix, applying it, and re-planning
  reproduces exactly the remaining suffix — a killed balancer resumes
  onto the same final move sequence.
"""

import pytest

from repro.balance import BalanceConfig, MovePlan, plan_moves
from repro.util.errors import BalanceError

from tests.strategies import cluster_states, examples, rng_for

STATES = examples(cluster_states, 8, seed=5)

#: High enough that every STATES plan terminates at the min-gain floor
#: rather than the cap (asserted below) — idempotence needs a full
#: descent.
FULL = BalanceConfig(max_moves=4096)


class TestIdempotence:
    @pytest.mark.parametrize("state", STATES)
    def test_replanning_an_applied_cluster_is_empty(self, state):
        plan = plan_moves(state, FULL)
        assert plan.num_moves < FULL.max_moves  # terminated at the floor
        applied = plan.apply_to(state.copy())
        again = plan_moves(applied, FULL)
        assert again.is_empty
        assert again.initial_score == plan.final_score

    def test_replanning_a_balanced_cluster_is_empty(self):
        state = cluster_states(rng_for(23))
        balanced = plan_moves(state, FULL).apply_to(state.copy())
        assert plan_moves(balanced, FULL).is_empty


class TestRestartStability:
    @pytest.mark.parametrize("state", STATES)
    def test_any_prefix_resumes_onto_the_same_suffix(self, state):
        plan = plan_moves(state, FULL)
        if plan.is_empty:
            pytest.skip("empty plan has no prefixes to resume from")
        cuts = sorted({0, 1, plan.num_moves // 2, plan.num_moves - 1})
        for cut in cuts:
            prefix = plan.truncate(cut)
            partial = prefix.apply_to(state.copy())
            resumed = plan_moves(partial, FULL)
            assert [p.move for p in resumed.moves] == [
                p.move for p in plan.moves[cut:]
            ]
            assert [p.score_after for p in resumed.moves] == [
                p.score_after for p in plan.moves[cut:]
            ]
            assert resumed.final_score == plan.final_score

    def test_truncate_bounds(self):
        state = cluster_states(rng_for(29))
        plan = plan_moves(state, FULL)
        assert plan.truncate(0).is_empty
        assert plan.truncate(plan.num_moves).to_json() == plan.to_json()
        with pytest.raises(BalanceError, match="truncate"):
            plan.truncate(plan.num_moves + 1)

    def test_apply_refuses_a_foreign_state(self):
        first = cluster_states(rng_for(31))
        second = cluster_states(rng_for(32))
        plan = plan_moves(first, FULL)
        with pytest.raises(BalanceError, match="different state"):
            plan.apply_to(second.copy())

    def test_plan_survives_disk_round_trip_and_still_applies(self, tmp_path):
        state = cluster_states(rng_for(37))
        plan = plan_moves(state, FULL)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = MovePlan.load(path)
        assert loaded.to_json() == plan.to_json()
        applied = loaded.apply_to(state.copy())
        from repro.balance import badness

        assert badness(applied, loaded.weights) == plan.final_score
