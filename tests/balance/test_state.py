"""ClusterState validation, utilization accounting, and serialization."""

import numpy as np
import pytest

from repro.balance import ClusterState, qp_ids_of_vd, segment_ids_of_bs
from repro.balance.state import state_summary
from repro.util.errors import BalanceError


def tiny_state(**overrides) -> ClusterState:
    """2 nodes x 2 WTs, 3 QPs over 2 VDs, 4 segments over 2 BS."""
    fields = dict(
        workers_per_node=2,
        num_compute_nodes=2,
        num_block_servers=2,
        qp_node=np.array([0, 0, 1], dtype=np.int64),
        qp_wt=np.array([0, 1, 2], dtype=np.int64),
        qp_vd=np.array([0, 0, 1], dtype=np.int64),
        qp_traffic=np.array([4.0, 1.0, 2.0]),
        seg_bs=np.array([0, 0, 1, 1], dtype=np.int64),
        seg_vd=np.array([0, 0, 1, 1], dtype=np.int64),
        seg_traffic=np.array([3.0, 1.0, 2.0, 2.0]),
    )
    fields.update(overrides)
    return ClusterState(**fields)


class TestValidate:
    def test_tiny_state_is_valid(self):
        tiny_state().validate()

    def test_storage_only_state_is_valid(self):
        empty = np.zeros(0, dtype=np.int64)
        state = tiny_state(
            num_compute_nodes=0,
            qp_node=empty,
            qp_wt=empty.copy(),
            qp_vd=empty.copy(),
            qp_traffic=np.zeros(0),
        )
        state.validate()
        assert state.num_qps == 0 and state.num_segments == 4

    def test_wt_off_its_node_rejected(self):
        state = tiny_state(qp_wt=np.array([0, 1, 0], dtype=np.int64))
        with pytest.raises(BalanceError, match="not on the QP's node"):
            state.validate()

    def test_vd_spanning_nodes_rejected(self):
        state = tiny_state(
            qp_node=np.array([0, 1, 1], dtype=np.int64),
            qp_wt=np.array([0, 2, 3], dtype=np.int64),
        )
        with pytest.raises(BalanceError, match="span multiple nodes"):
            state.validate()

    def test_seg_bs_out_of_range_rejected(self):
        state = tiny_state(seg_bs=np.array([0, 0, 1, 2], dtype=np.int64))
        with pytest.raises(BalanceError, match="seg_bs out of range"):
            state.validate()

    def test_negative_traffic_rejected(self):
        state = tiny_state(seg_traffic=np.array([3.0, -1.0, 2.0, 2.0]))
        with pytest.raises(BalanceError, match="seg_traffic"):
            state.validate()

    def test_nan_traffic_rejected(self):
        state = tiny_state(qp_traffic=np.array([4.0, np.nan, 2.0]))
        with pytest.raises(BalanceError, match="qp_traffic"):
            state.validate()


class TestUtilization:
    def test_vectors_accumulate_by_binding(self):
        state = tiny_state()
        assert state.node_utilization().tolist() == [5.0, 2.0]
        assert state.wt_utilization().tolist() == [4.0, 1.0, 2.0, 0.0]
        assert state.bs_utilization().tolist() == [4.0, 4.0]

    def test_lookup_helpers(self):
        state = tiny_state()
        assert qp_ids_of_vd(state, 0).tolist() == [0, 1]
        assert qp_ids_of_vd(state, 9).tolist() == []
        assert segment_ids_of_bs(state, 1).tolist() == [2, 3]

    def test_summary_shape(self):
        summary = state_summary(tiny_state())
        assert summary["num_qps"] == 3
        assert summary["num_wts"] == 4
        assert summary["bs_utilization"] == {
            "min": 4.0, "mean": 4.0, "max": 4.0,
        }


class TestSerialization:
    def test_json_round_trips_byte_identically(self):
        state = tiny_state()
        text = state.to_json()
        assert ClusterState.from_json(text).to_json() == text

    def test_digest_tracks_content(self):
        state = tiny_state()
        other = tiny_state(qp_traffic=np.array([4.0, 1.0, 2.5]))
        assert state.digest() == tiny_state().digest()
        assert state.digest() != other.digest()

    def test_save_load(self, tmp_path):
        path = tmp_path / "state.json"
        state = tiny_state()
        state.save(path)
        loaded = ClusterState.load(path)
        assert loaded.to_json() == state.to_json()

    def test_schema_version_checked(self):
        payload = tiny_state().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(BalanceError, match="schema"):
            ClusterState.from_dict(payload)

    def test_copy_is_deep(self):
        state = tiny_state()
        clone = state.copy()
        clone.qp_wt[0] = 1
        assert state.qp_wt[0] == 0
