"""Replica-aware balance planning and state serialization.

The balancer's fault-domain rule under redundancy: a planned
``segment_migrate`` may never land the primary on a BlockServer that
already holds another copy of the segment.  The serialized layout is
versioned so that width-1 states keep emitting historical version-1
payloads byte-for-byte (the pinned golden digests in
``test_golden.py`` prove it), while replica-bearing states round-trip
through version 2.
"""

import json

import numpy as np
import pytest

from repro.balance import (
    BalanceConfig,
    ClusterState,
    Move,
    MoveKind,
    apply_move,
    plan_moves,
)
from repro.balance.state import STATE_SCHEMA_VERSION
from repro.cluster.redundancy import ring_table
from repro.util.errors import BalanceError

from tests.strategies import cluster_states, examples

STATES = examples(cluster_states, 10, seed=21)


def _with_replicas(state, width=3):
    """Ring-expand the state's primaries into a replica table."""
    wide = min(width, state.num_block_servers)
    clone = state.copy()
    clone.seg_replicas = ring_table(
        state.seg_bs, wide, state.num_block_servers
    )
    clone.validate()
    return clone


def _replica_states(width=3):
    return [
        _with_replicas(s, width) for s in STATES if s.num_block_servers >= 2
    ]


class TestReplicaAwarePlanning:
    @pytest.mark.parametrize("state", _replica_states())
    def test_planned_migrations_never_co_locate(self, state):
        plan = plan_moves(state, BalanceConfig())
        for planned in plan.moves:
            if planned.move.kind is not MoveKind.SEGMENT_MIGRATE:
                continue
            seg = planned.move.entity
            others = {int(bs) for bs in state.seg_replicas[seg, 1:]}
            assert planned.move.dest not in others

    @pytest.mark.parametrize("state", _replica_states())
    def test_applying_the_plan_keeps_the_state_valid(self, state):
        plan = plan_moves(state, BalanceConfig())
        applied = plan.apply_to(state.copy())
        applied.validate()
        # Column 0 stayed in sync with the primary mapping.
        np.testing.assert_array_equal(
            applied.seg_replicas[:, 0], applied.seg_bs
        )

    def test_apply_move_rejects_co_locating_migrate(self):
        state = _with_replicas(
            next(s for s in STATES if s.num_block_servers >= 3 and s.num_segments)
        )
        seg = 0
        blocked = int(state.seg_replicas[seg, 1])
        with pytest.raises(BalanceError, match="co-locate"):
            apply_move(
                state,
                Move(kind=MoveKind.SEGMENT_MIGRATE, entity=seg, dest=blocked),
            )
        # The rejected move must not have mutated the state.
        state.validate()
        np.testing.assert_array_equal(state.seg_replicas[:, 0], state.seg_bs)

    def test_apply_move_updates_the_replica_table(self):
        state = _with_replicas(
            next(s for s in STATES if s.num_block_servers >= 4 and s.num_segments)
        )
        seg = 0
        taken = {int(bs) for bs in state.seg_replicas[seg]}
        dest = next(
            bs for bs in range(state.num_block_servers) if bs not in taken
        )
        undo = apply_move(
            state, Move(kind=MoveKind.SEGMENT_MIGRATE, entity=seg, dest=dest)
        )
        assert int(state.seg_bs[seg]) == dest
        assert int(state.seg_replicas[seg, 0]) == dest
        state.validate()
        apply_move(state, undo)
        state.validate()


class TestValidation:
    def test_column_zero_must_match_primaries(self):
        state = _with_replicas(STATES[0])
        state.seg_replicas = state.seg_replicas.copy()
        if not state.num_segments:
            pytest.skip("degenerate example")
        state.seg_replicas[0, 0] = (state.seg_bs[0] + 1) % state.num_block_servers
        with pytest.raises(BalanceError, match="column 0"):
            state.validate()

    def test_co_located_rows_rejected(self):
        state = next(
            s for s in STATES if s.num_block_servers >= 3 and s.num_segments
        )
        wide = _with_replicas(state, width=2)
        wide.seg_replicas[0, 1] = wide.seg_replicas[0, 0]
        with pytest.raises(BalanceError, match="co-locates"):
            wide.validate()

    def test_out_of_range_rejected(self):
        state = _with_replicas(STATES[0], width=2)
        if not state.num_segments:
            pytest.skip("degenerate example")
        state.seg_replicas[0, 1] = state.num_block_servers
        with pytest.raises(BalanceError, match="out of range"):
            state.validate()


class TestSerialization:
    def test_width1_states_still_emit_version_1(self):
        state = STATES[0]
        payload = state.to_dict()
        assert payload["schema_version"] == 1
        assert "seg_replicas" not in payload

    def test_replica_states_emit_the_current_version(self):
        state = _with_replicas(STATES[0])
        payload = state.to_dict()
        assert payload["schema_version"] == STATE_SCHEMA_VERSION
        assert payload["seg_replicas"] == [
            [int(v) for v in row] for row in state.seg_replicas
        ]

    @pytest.mark.parametrize("state", _replica_states()[:4])
    def test_replica_states_round_trip(self, state):
        text = state.to_json()
        back = ClusterState.from_json(text)
        assert back.to_json() == text
        np.testing.assert_array_equal(back.seg_replicas, state.seg_replicas)
        assert back.digest() == state.digest()

    def test_version_1_payloads_still_load(self):
        state = STATES[0]
        payload = state.to_dict()
        assert payload["schema_version"] == 1
        back = ClusterState.from_dict(payload)
        assert back.seg_replicas is None
        assert back.digest() == state.digest()

    def test_unknown_versions_rejected(self):
        payload = STATES[0].to_dict()
        payload["schema_version"] = 3
        with pytest.raises(BalanceError, match="schema"):
            ClusterState.from_dict(json.loads(json.dumps(payload)))

    def test_replicas_change_the_digest(self):
        state = next(s for s in STATES if s.num_block_servers >= 3)
        assert _with_replicas(state).digest() != state.digest()
