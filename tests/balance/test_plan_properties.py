"""Property-based MovePlan invariants (seeded, via tests/strategies.py).

The four invariant families from the issue:

- **score strictly decreases** — every planned move's canonical gain is
  positive and at least ``min_gain``;
- **min-gain respected** — raising the threshold can only shorten a plan;
- **exclusions honored** — pinned entities never appear in a plan and
  disabled families emit no moves;
- **bit-identical serialization** — plan JSON round-trips byte-for-byte
  and the same (state, config) always yields the same bytes.
"""

import numpy as np
import pytest

from repro.balance import (
    BalanceConfig,
    ClusterState,
    MoveKind,
    MovePlan,
    badness,
    plan_moves,
)

from tests.strategies import cluster_states, examples, rng_for

STATES = examples(cluster_states, 12, seed=3)


def _ids(plan, kind):
    return [p.move.entity for p in plan.moves if p.move.kind is kind]


class TestDescentProperties:
    @pytest.mark.parametrize("state", STATES)
    def test_score_strictly_decreases_per_move(self, state):
        config = BalanceConfig()
        plan = plan_moves(state, config)
        score = plan.initial_score
        for planned in plan.moves:
            assert planned.score_after < score
            assert planned.gain >= config.min_gain
            # The recorded trajectory is internally consistent, exactly.
            assert score - planned.gain == planned.score_after
            score = planned.score_after
        assert plan.final_score == score

    @pytest.mark.parametrize("state", STATES)
    def test_recorded_scores_match_fresh_recomputes(self, state):
        plan = plan_moves(state)
        work = state.copy()
        assert badness(work, plan.weights) == plan.initial_score
        for planned in plan.moves:
            from repro.balance import apply_move

            apply_move(work, planned.move)
            assert badness(work, plan.weights) == planned.score_after

    @pytest.mark.parametrize("state", STATES)
    def test_raising_min_gain_never_lengthens_the_plan(self, state):
        loose = plan_moves(state, BalanceConfig(min_gain=1e-6))
        tight = plan_moves(state, BalanceConfig(min_gain=1e-3))
        assert tight.num_moves <= loose.num_moves
        assert all(p.gain >= 1e-3 for p in tight.moves)

    @pytest.mark.parametrize("state", STATES)
    def test_max_moves_is_a_hard_cap(self, state):
        plan = plan_moves(state, BalanceConfig(max_moves=3))
        assert plan.num_moves <= 3

    @pytest.mark.parametrize("state", STATES[:6])
    def test_apply_to_reproduces_the_final_score(self, state):
        plan = plan_moves(state)
        applied = plan.apply_to(state.copy())
        assert badness(applied, plan.weights) == plan.final_score


class TestExclusionProperties:
    @pytest.mark.parametrize("state", STATES)
    def test_family_switches_disable_their_moves(self, state):
        plan = plan_moves(
            state,
            BalanceConfig(no_qp_rebinds=True, no_segment_moves=True),
        )
        kinds = {p.move.kind for p in plan.moves}
        assert kinds <= {MoveKind.VD_REHOME}

    @pytest.mark.parametrize("state", STATES)
    def test_pinned_entities_never_move(self, state):
        rng = rng_for(99)
        exclude_qps = frozenset(
            int(q) for q in rng.integers(0, max(state.num_qps, 1), size=5)
        )
        exclude_vds = frozenset(
            int(v) for v in rng.integers(0, int(state.qp_vd.max()) + 1, size=3)
        ) if state.num_qps else frozenset()
        exclude_segments = frozenset(
            int(s) for s in rng.integers(0, max(state.num_segments, 1), size=5)
        )
        plan = plan_moves(
            state,
            BalanceConfig(
                exclude_qps=exclude_qps,
                exclude_vds=exclude_vds,
                exclude_segments=exclude_segments,
            ),
        )
        assert not set(_ids(plan, MoveKind.QP_REBIND)) & exclude_qps
        assert not set(_ids(plan, MoveKind.VD_REHOME)) & exclude_vds
        assert not set(_ids(plan, MoveKind.SEGMENT_MIGRATE)) & exclude_segments
        # A pinned QP also pins its VD (hbal semantics).
        pinned_vds = {int(state.qp_vd[q]) for q in exclude_qps
                      if q < state.num_qps}
        assert not set(_ids(plan, MoveKind.VD_REHOME)) & pinned_vds

    @pytest.mark.parametrize("state", STATES[:6])
    def test_vetoed_destinations_never_receive(self, state):
        exclude_bs = frozenset({0})
        plan = plan_moves(state, BalanceConfig(exclude_bs=exclude_bs))
        dests = [
            p.move.dest
            for p in plan.moves
            if p.move.kind is MoveKind.SEGMENT_MIGRATE
        ]
        assert 0 not in dests

    def test_all_excluded_emits_an_empty_plan(self):
        state = cluster_states(rng_for(17))
        plan = plan_moves(
            state,
            BalanceConfig(
                no_qp_rebinds=True,
                no_vd_rehomes=True,
                no_segment_moves=True,
            ),
        )
        assert plan.is_empty
        assert plan.final_score == plan.initial_score


class TestSerializationProperties:
    @pytest.mark.parametrize("state", STATES)
    def test_plan_json_round_trips_byte_identically(self, state):
        plan = plan_moves(state)
        text = plan.to_json()
        assert MovePlan.from_json(text).to_json() == text

    @pytest.mark.parametrize("state", STATES[:6])
    def test_same_inputs_same_bytes(self, state):
        first = plan_moves(state, BalanceConfig())
        second = plan_moves(
            ClusterState.from_json(state.to_json()), BalanceConfig()
        )
        assert first.to_json() == second.to_json()
        assert first.digest() == second.digest()

    @pytest.mark.parametrize("state", STATES[:6])
    def test_embedded_config_round_trips(self, state):
        config = BalanceConfig(
            min_gain=1e-5, max_moves=16, exclude_qps=frozenset({1, 2})
        )
        plan = plan_moves(state, config)
        assert BalanceConfig.from_dict(plan.config) == config
