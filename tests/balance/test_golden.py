"""Pinned golden digests: catch silent descent-order regressions.

The greedy planner's output is a pure function of ``(state, config)``;
these sha256 pins freeze one nontrivial trajectory.  If a change to the
candidate ranking, tie-breaking, or serialization alters any byte of the
plan, this fails — which is the point.  Update the pins only for an
*intentional* planner change, and say so in the commit.
"""

from repro.balance import BalanceConfig, plan_moves, random_cluster_state

GOLDEN_SEED = 11
GOLDEN_STATE_DIGEST = (
    "122b0e035ee5a26616860e2f83382503f1a10a8d27166dd8d7af093271a07af5"
)
GOLDEN_PLAN_DIGEST = (
    "411697b60c6795a3e9a53cc81c9299b40eb539b6b13c7e8c5072e5d1ea0fe910"
)
GOLDEN_NUM_MOVES = 58


def test_generator_digest_is_pinned():
    assert random_cluster_state(GOLDEN_SEED).digest() == GOLDEN_STATE_DIGEST


def test_plan_digest_is_pinned():
    state = random_cluster_state(GOLDEN_SEED)
    plan = plan_moves(state, BalanceConfig(max_moves=4096))
    assert plan.num_moves == GOLDEN_NUM_MOVES
    assert plan.digest() == GOLDEN_PLAN_DIGEST


def test_generator_seeds_are_independent():
    a = random_cluster_state(GOLDEN_SEED)
    b = random_cluster_state(GOLDEN_SEED + 1)
    assert a.digest() != b.digest()


def test_generator_labels_are_independent_streams():
    a = random_cluster_state(GOLDEN_SEED, label="a")
    b = random_cluster_state(GOLDEN_SEED, label="b")
    assert a.digest() != b.digest()
