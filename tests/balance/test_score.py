"""Badness score and weight validation."""

import numpy as np
import pytest

from repro.balance import ScoreWeights, badness, dimension_covs, safe_normalized_cov
from repro.stats.skewness import normalized_cov
from repro.util.errors import ConfigError

from tests.balance.test_state import tiny_state


class TestSafeNormalizedCov:
    def test_degenerate_cases_score_zero(self):
        assert safe_normalized_cov(np.zeros(0)) == 0.0
        assert safe_normalized_cov(np.array([7.0])) == 0.0
        assert safe_normalized_cov(np.zeros(5)) == 0.0

    def test_matches_normalized_cov_on_real_vectors(self):
        vector = np.array([1.0, 2.0, 3.0, 10.0])
        assert safe_normalized_cov(vector) == normalized_cov(vector)

    def test_uniform_vector_scores_zero(self):
        assert safe_normalized_cov(np.full(6, 3.5)) == pytest.approx(0.0)

    def test_one_hot_vector_scores_one(self):
        vector = np.zeros(8)
        vector[3] = 42.0
        assert safe_normalized_cov(vector) == pytest.approx(1.0)


class TestScoreWeights:
    def test_defaults_are_uniform(self):
        weights = ScoreWeights()
        assert weights.total == 3.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError, match="finite and >= 0"):
            ScoreWeights(wt=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigError, match="not all be zero"):
            ScoreWeights(node=0.0, wt=0.0, bs=0.0)

    def test_round_trip(self):
        weights = ScoreWeights(node=1.0, wt=0.5, bs=2.0)
        assert ScoreWeights.from_dict(weights.to_dict()) == weights

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown score weights"):
            ScoreWeights.from_dict({"node": 1.0, "gpu": 1.0})


class TestBadness:
    def test_badness_is_weighted_average_of_covs(self):
        state = tiny_state()
        covs = dimension_covs(state)
        weights = ScoreWeights(node=2.0, wt=1.0, bs=1.0)
        expected = (
            2.0 * covs["node"] + covs["wt"] + covs["bs"]
        ) / 4.0
        assert badness(state, weights) == expected

    def test_zero_weight_ignores_a_dimension(self):
        state = tiny_state()
        weights = ScoreWeights(node=0.0, wt=0.0, bs=1.0)
        assert badness(state, weights) == dimension_covs(state)["bs"]

    def test_storage_only_state_scores_bs_dimension_only(self):
        empty = np.zeros(0, dtype=np.int64)
        state = tiny_state(
            num_compute_nodes=0,
            qp_node=empty,
            qp_wt=empty.copy(),
            qp_vd=empty.copy(),
            qp_traffic=np.zeros(0),
        )
        covs = dimension_covs(state)
        assert covs["node"] == 0.0 and covs["wt"] == 0.0
        assert badness(state) == covs["bs"] / 3.0
