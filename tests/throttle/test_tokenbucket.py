"""Tests for token-bucket cap enforcement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.throttle import (
    ShapedTraffic,
    TokenBucket,
    TokenBucketConfig,
    shape_vd_traffic,
)
from repro.util import ConfigError

offered_series = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=100,
)


class TestConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            TokenBucketConfig(rate_per_second=0.0)
        with pytest.raises(ConfigError):
            TokenBucketConfig(rate_per_second=10.0, burst_seconds=-1.0)

    def test_depth(self):
        assert TokenBucketConfig(10.0, burst_seconds=2.0).depth == 20.0


class TestTokenBucket:
    def test_under_rate_passes_through(self):
        bucket = TokenBucket(TokenBucketConfig(10.0))
        shaped = bucket.shape(np.full(20, 5.0))
        assert np.allclose(shaped.delivered, 5.0)
        assert shaped.throttled_seconds == 0

    def test_burst_absorbed_by_bucket(self):
        bucket = TokenBucket(TokenBucketConfig(10.0, burst_seconds=2.0))
        # A single-second burst of 25 fits the 20-deep bucket + 10 refill.
        shaped = bucket.shape(np.array([0.0, 25.0, 0.0]))
        assert shaped.delivered[1] == pytest.approx(25.0)
        assert shaped.throttled_seconds == 0

    def test_sustained_overload_queues(self):
        bucket = TokenBucket(TokenBucketConfig(10.0, burst_seconds=0.0))
        shaped = bucket.shape(np.full(10, 15.0))
        assert np.allclose(shaped.delivered, 10.0)
        assert shaped.throttled.all()
        assert shaped.backlog[-1] == pytest.approx(50.0)

    def test_backlog_drains_after_burst(self):
        bucket = TokenBucket(TokenBucketConfig(10.0, burst_seconds=0.0))
        offered = np.array([40.0, 0.0, 0.0, 0.0, 0.0])
        shaped = bucket.shape(offered)
        assert shaped.backlog[0] == pytest.approx(30.0)
        assert shaped.backlog[-1] == pytest.approx(0.0)
        # Everything offered is eventually delivered.
        assert shaped.delivered.sum() == pytest.approx(40.0)

    def test_queue_delay(self):
        shaped = ShapedTraffic(
            delivered=np.array([10.0]),
            backlog=np.array([30.0]),
            throttled=np.array([True]),
        )
        assert shaped.queue_delay_seconds(10.0)[0] == pytest.approx(3.0)
        with pytest.raises(ConfigError):
            shaped.queue_delay_seconds(0.0)

    def test_rejects_negative_offered(self):
        bucket = TokenBucket(TokenBucketConfig(10.0))
        with pytest.raises(ConfigError):
            bucket.step(-1.0)

    @settings(max_examples=50)
    @given(offered=offered_series, rate=st.floats(1.0, 100.0))
    def test_conservation(self, offered, rate):
        # Property: delivered + final backlog == total offered, and the
        # delivered rate never exceeds rate + bucket depth in one second.
        shaped = shape_vd_traffic(np.asarray(offered), rate, burst_seconds=1.0)
        assert shaped.delivered.sum() + shaped.backlog[-1] == pytest.approx(
            float(np.sum(offered)), rel=1e-9, abs=1e-6
        )
        assert (shaped.delivered <= 2.0 * rate + 1e-6).all()
        assert (shaped.backlog >= 0).all()

    def test_reset_restores_fresh_state(self):
        bucket = TokenBucket(TokenBucketConfig(10.0, burst_seconds=2.0))
        bucket.step(100.0)
        assert bucket.backlog > 0.0
        bucket.reset()
        assert bucket.tokens == pytest.approx(20.0)
        assert bucket.backlog == pytest.approx(0.0)

    def test_shape_twice_yields_identical_results(self):
        # Regression: shape() used to continue from whatever token and
        # backlog state the previous call left behind, so a second call
        # on the same bucket produced different series.
        bucket = TokenBucket(TokenBucketConfig(10.0, burst_seconds=1.0))
        offered = np.array([40.0, 5.0, 0.0, 12.0])
        first = bucket.shape(offered)
        second = bucket.shape(offered)
        np.testing.assert_array_equal(first.delivered, second.delivered)
        np.testing.assert_array_equal(first.backlog, second.backlog)
        np.testing.assert_array_equal(first.throttled, second.throttled)

    def test_shape_after_step_matches_fresh_bucket(self):
        # Regression companion: manual step() calls must not leak into a
        # subsequent shape().
        config = TokenBucketConfig(10.0, burst_seconds=0.0)
        dirty = TokenBucket(config)
        dirty.step(100.0)
        offered = np.array([5.0, 25.0, 0.0])
        shaped = dirty.shape(offered)
        fresh = TokenBucket(config).shape(offered)
        np.testing.assert_array_equal(shaped.delivered, fresh.delivered)
        np.testing.assert_array_equal(shaped.backlog, fresh.backlog)

    def test_drained_backlog_second_counts_as_throttled(self):
        # Regression: a second that starts with a carried-in backlog and
        # fully drains it used to be reported as un-throttled, although
        # the queued IOs waited into (and through part of) that second.
        shaped = shape_vd_traffic(
            np.array([15.0, 0.0]), 10.0, burst_seconds=0.0
        )
        assert shaped.backlog[1] == pytest.approx(0.0)
        assert bool(shaped.throttled[0]) is True
        assert bool(shaped.throttled[1]) is True
        assert shaped.throttled_seconds == 2

    def test_shape_on_generated_traffic(self, small_traffic):
        vd = small_traffic[0]
        offered = vd.read_bytes + vd.write_bytes
        cap = float(offered.mean()) * 2.0 + 1.0
        shaped = shape_vd_traffic(offered, cap)
        assert shaped.delivered.shape == offered.shape
        assert (shaped.delivered <= offered.sum()).all()
