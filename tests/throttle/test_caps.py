"""Tests for cap construction."""

import numpy as np
import pytest

from repro.throttle import CapSet, calibrated_caps, caps_from_specs
from repro.util import ConfigError
from repro.util.rng import RngFactory


class TestCapSet:
    def test_aligned_arrays_required(self):
        with pytest.raises(ConfigError):
            CapSet(throughput_bps=np.ones(3), iops=np.ones(2))

    def test_positive_required(self):
        with pytest.raises(ConfigError):
            CapSet(throughput_bps=np.array([0.0]), iops=np.array([1.0]))

    def test_for_vd(self):
        caps = CapSet(
            throughput_bps=np.array([10.0, 20.0]), iops=np.array([1.0, 2.0])
        )
        assert caps.for_vd(1) == (20.0, 2.0)
        assert caps.num_vds == 2


class TestCapsFromSpecs:
    def test_matches_fleet(self, small_fleet):
        caps = caps_from_specs(small_fleet)
        assert caps.num_vds == len(small_fleet.vds)
        for vd in small_fleet.vds[:10]:
            assert caps.throughput_bps[vd.vd_id] == vd.throughput_cap_bps
            assert caps.iops[vd.vd_id] == vd.iops_cap


class TestCalibratedCaps:
    def test_caps_exceed_mean_load(self, small_traffic, rngs):
        caps = calibrated_caps(small_traffic, rngs.child("caps"))
        for index, traffic in enumerate(small_traffic):
            mean = (traffic.read_bytes + traffic.write_bytes).mean()
            assert caps.throughput_bps[index] >= mean

    def test_floor_applies_to_idle_vds(self, small_traffic, rngs):
        caps = calibrated_caps(
            small_traffic, rngs.child("caps"), floor_bps=12345.0
        )
        assert caps.throughput_bps.min() >= 12345.0

    def test_deterministic(self, small_traffic, rngs):
        a = calibrated_caps(small_traffic, rngs.child("caps"))
        b = calibrated_caps(small_traffic, rngs.child("caps"))
        assert (a.throughput_bps == b.throughput_bps).all()

    def test_rejects_headroom_at_most_one(self, small_traffic, rngs):
        with pytest.raises(ConfigError):
            calibrated_caps(small_traffic, rngs, headroom_median=1.0)
