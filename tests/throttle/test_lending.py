"""Tests for the Algorithm 2 limited-lending simulation."""

import numpy as np
import pytest

from repro.throttle import LendingConfig, lending_gain, simulate_lending
from repro.throttle.metrics import ThrottleGroup
from repro.util import ConfigError


def group_from(write_rows, caps, t=None):
    write = np.asarray(write_rows, dtype=float)
    zeros = np.zeros_like(write)
    return ThrottleGroup(
        label="g",
        members=list(range(write.shape[0])),
        read_bytes=zeros,
        write_bytes=write,
        read_iops=zeros,
        write_iops=write / 10.0,
        cap_bps=np.asarray(caps, dtype=float),
        cap_iops=np.asarray(caps, dtype=float) / 10.0,
    )


class TestLendingConfig:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            LendingConfig(lending_rate=0.0)
        with pytest.raises(ConfigError):
            LendingConfig(lending_rate=1.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            LendingConfig(period_seconds=0)


class TestLendingGain:
    def test_positive_when_lending_helps(self):
        assert lending_gain(10, 5) == pytest.approx(1.0 / 3.0)

    def test_negative_when_lending_hurts(self):
        assert lending_gain(5, 10) == pytest.approx(-1.0 / 3.0)

    def test_zero_when_never_throttled(self):
        assert lending_gain(0, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            lending_gain(-1, 0)


class TestSimulateLending:
    def test_lending_removes_throttle(self):
        # Member 0 bursts to 20 over a cap of 10; member 1 idles with a
        # cap of 30.  Lending 0.8 of the available resource lifts member
        # 0's cap enough to clear the burst.
        group = group_from(
            [[5, 20, 20, 5], [1, 1, 1, 1]], caps=[10.0, 30.0]
        )
        outcome = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.8, period_seconds=4)
        )
        assert outcome.throttled_seconds_without == 2
        # The first throttled second still counts (lending reacts at the
        # throttle), but the second one is absorbed by the lent cap.
        assert outcome.throttled_seconds_with < 2
        assert outcome.gain > 0

    def test_lender_can_get_throttled(self):
        # Member 1 lends at t=1 then bursts at t=2 into its reduced cap:
        # lending creates a throttle that would not have existed.
        group = group_from(
            [[5, 20, 5, 5], [1, 1, 28, 1]], caps=[10.0, 30.0]
        )
        outcome = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.8, period_seconds=4)
        )
        assert outcome.throttled_seconds_with > outcome.throttled_seconds_without
        assert outcome.gain < 0

    def test_caps_reset_each_period(self):
        group = group_from(
            [[20, 5, 20, 5], [1, 1, 1, 1]], caps=[10.0, 30.0]
        )
        short = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.8, period_seconds=2)
        )
        # Both bursts are the first throttle of their period, so both get
        # lending applied; without-lending count is unchanged.
        assert short.throttled_seconds_without == 2

    def test_no_throttle_noop(self):
        group = group_from([[1, 1, 1, 1], [1, 1, 1, 1]], caps=[10.0, 10.0])
        outcome = simulate_lending(group, "throughput")
        assert outcome.throttled_seconds_without == 0
        assert outcome.throttled_seconds_with == 0
        assert outcome.gain == 0.0

    def test_saturated_group_cannot_lend(self):
        group = group_from(
            [[20, 20, 20, 20], [30, 30, 30, 30]], caps=[10.0, 30.0]
        )
        outcome = simulate_lending(group, "throughput")
        # No available resource: with-lending equals without.
        assert (
            outcome.throttled_seconds_with
            == outcome.throttled_seconds_without
        )
