"""Tests for the Algorithm 2 limited-lending simulation."""

import numpy as np
import pytest

from repro.throttle import LendingConfig, lending_gain, simulate_lending
from repro.throttle.metrics import ThrottleGroup
from repro.util import ConfigError


def group_from(write_rows, caps, t=None):
    write = np.asarray(write_rows, dtype=float)
    zeros = np.zeros_like(write)
    return ThrottleGroup(
        label="g",
        members=list(range(write.shape[0])),
        read_bytes=zeros,
        write_bytes=write,
        read_iops=zeros,
        write_iops=write / 10.0,
        cap_bps=np.asarray(caps, dtype=float),
        cap_iops=np.asarray(caps, dtype=float) / 10.0,
    )


class TestLendingConfig:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            LendingConfig(lending_rate=0.0)
        with pytest.raises(ConfigError):
            LendingConfig(lending_rate=1.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            LendingConfig(period_seconds=0)


class TestLendingGain:
    def test_positive_when_lending_helps(self):
        assert lending_gain(10, 5) == pytest.approx(1.0 / 3.0)

    def test_negative_when_lending_hurts(self):
        assert lending_gain(5, 10) == pytest.approx(-1.0 / 3.0)

    def test_zero_when_never_throttled(self):
        assert lending_gain(0, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            lending_gain(-1, 0)


class TestSimulateLending:
    def test_lending_removes_throttle(self):
        # Member 0 bursts to 20 over a cap of 10; member 1 idles with a
        # cap of 30.  Lending 0.8 of the available resource lifts member
        # 0's cap enough to clear the burst.
        group = group_from(
            [[5, 20, 20, 5], [1, 1, 1, 1]], caps=[10.0, 30.0]
        )
        outcome = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.8, period_seconds=4)
        )
        assert outcome.throttled_seconds_without == 2
        # The first throttled second still counts (lending reacts at the
        # throttle), but the second one is absorbed by the lent cap.
        assert outcome.throttled_seconds_with < 2
        assert outcome.gain > 0

    def test_lender_can_get_throttled(self):
        # Member 1 lends at t=1 then bursts at t=2 into its reduced cap:
        # lending creates a throttle that would not have existed.
        group = group_from(
            [[5, 20, 5, 5], [1, 1, 28, 1]], caps=[10.0, 30.0]
        )
        outcome = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.8, period_seconds=4)
        )
        assert outcome.throttled_seconds_with > outcome.throttled_seconds_without
        assert outcome.gain < 0

    def test_caps_reset_each_period(self):
        group = group_from(
            [[20, 5, 20, 5], [1, 1, 1, 1]], caps=[10.0, 30.0]
        )
        short = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.8, period_seconds=2)
        )
        # Both bursts are the first throttle of their period, so both get
        # lending applied; without-lending count is unchanged.
        assert short.throttled_seconds_without == 2

    def test_no_throttle_noop(self):
        group = group_from([[1, 1, 1, 1], [1, 1, 1, 1]], caps=[10.0, 10.0])
        outcome = simulate_lending(group, "throughput")
        assert outcome.throttled_seconds_without == 0
        assert outcome.throttled_seconds_with == 0
        assert outcome.gain == 0.0

    def test_saturated_group_cannot_lend(self):
        group = group_from(
            [[20, 20, 20, 20], [30, 30, 30, 30]], caps=[10.0, 30.0]
        )
        outcome = simulate_lending(group, "throughput")
        # No available resource: with-lending equals without.
        assert (
            outcome.throttled_seconds_with
            == outcome.throttled_seconds_without
        )


#: rate=0.5 makes every lend adjustment exact in binary floating point,
#: so the probes below can sit exactly at the adjusted caps.
HALF = LendingConfig(lending_rate=0.5, period_seconds=4)


def _with(rows, caps, config=HALF):
    return simulate_lending(
        group_from(rows, caps), "throughput", config
    ).throttled_seconds_with


class TestLendingConservation:
    """Pin the audited lend-step invariants (cap mass is conserved).

    The suspected bug was that the lending path double-counts returned
    tokens when a lender is itself throttled in the same tick.  The audit
    shows the implementation is correct: at the (single) lend of a period
    the caps still equal the subscribed caps, so throttled members are
    clipped to their caps in ``measured`` and contribute nothing to AR —
    AR is exactly the summed headroom of the *unthrottled* members, and
    the total boost ``p * AR`` equals the total reclaimed mass.  The
    ``over``/``~over`` masks are complementary, so no member both
    receives and returns tokens in one tick.  These tests pin each piece
    behaviorally: if any implementation change creates or destroys cap
    mass at the lend, a probe second flips its throttle verdict.

    All scenarios use caps/usages whose lend arithmetic is exact under
    ``lending_rate=0.5``, so the ``usage >= cap`` boundary is sharp.
    """

    def test_lent_amount_is_exactly_p_times_available_resource(self):
        # t=0: member 0 bursts (over), member 1 idles at 10 under cap 30.
        # AR = (10+30) - (10+10) = 20, boost = 0.5*20 = 10 -> cap0 = 20.
        assert _with([[20, 19, 0, 0], [10, 0, 0, 0]], [10.0, 30.0]) == 1
        assert _with([[20, 20, 0, 0], [10, 0, 0, 0]], [10.0, 30.0]) == 2

    def test_reclaimed_amount_equals_lent_amount(self):
        # Same lend as above on the lender's side: member 1 gives up
        # 0.5 * headroom = 0.5*20 = 10 -> cap1 = 20, i.e. exactly the
        # boost member 0 received.  Cap mass is conserved.
        assert _with([[20, 0, 0, 0], [10, 0, 19, 0]], [10.0, 30.0]) == 1
        assert _with([[20, 0, 0, 0], [10, 0, 20, 0]], [10.0, 30.0]) == 2

    def test_borrower_over_cap_in_lend_tick_keeps_its_full_boost(self):
        # Regression for the suspected double-count.  Member 0 is over
        # cap in the very tick the lend happens; after the boost it has
        # positive headroom (55 - 12).  A buggy reclaim that ignored the
        # ``over`` mask would take tokens straight back from it
        # (cap0 = 55 - 0.5*43 = 33.5).  Pin that its cap is exactly
        # 10 + 0.5*90 = 55.
        assert _with([[12, 54, 0, 0], [10, 0, 0, 0]], [10.0, 100.0]) == 1
        assert _with([[12, 55, 0, 0], [10, 0, 0, 0]], [10.0, 100.0]) == 2

    def test_member_exactly_at_cap_borrows_and_never_lends(self):
        # usage == cap counts as throttled (>=), overshoot is zero, so
        # the equal-split branch gives the whole lendable pool to the
        # at-cap member: AR = (10+30) - (10+6) = 24, cap0 = 10+12 = 22.
        # The lender's cap drops to 30 - 0.5*24 = 18 — still exactly the
        # lent mass, even though the borrower's overshoot was zero.
        assert _with([[10, 21, 0, 0], [6, 0, 17, 0]], [10.0, 30.0]) == 1
        assert _with([[10, 22, 0, 0], [6, 0, 18, 0]], [10.0, 30.0]) == 3

    def test_only_one_lend_per_period(self):
        # After the t=0 lend (caps -> [20, 20]) member 0 sits exactly at
        # its boosted cap.  A second lend at t=1 would raise it again and
        # un-throttle t=2; pinning 3 throttled seconds proves the period
        # lends exactly once.
        assert _with([[20, 20, 20, 0], [10, 1, 1, 0]], [10.0, 30.0]) == 3

    def test_zero_ar_second_consumes_the_period_lend(self):
        # t=0 is fully saturated (AR == 0): nothing can be lent, and the
        # attempt still consumes the period's single lend — the freed
        # headroom at t=1 is NOT lent retroactively.
        rows = [[20, 20, 20, 5], [30, 1, 1, 1]]
        outcome = simulate_lending(
            group_from(rows, [10.0, 30.0]), "throughput", HALF
        )
        assert outcome.throttled_seconds_without == 4
        assert outcome.throttled_seconds_with == 4
        assert outcome.gain == 0.0

    def test_idle_lender_retains_one_minus_p_of_its_cap(self):
        # A fully idle lender's cap after the lend is (1-p)*cap + p*0:
        # 30 - 0.5*30 = 15.  In particular the 1e-9 floor never binds —
        # reclaim cannot push a cap to (or below) zero.
        assert _with([[20, 0, 0, 0], [0, 14, 0, 0]], [10.0, 30.0]) == 1
        assert _with([[20, 0, 0, 0], [0, 15, 0, 0]], [10.0, 30.0]) == 2
