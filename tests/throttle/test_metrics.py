"""Tests for throttle groups and the §5 metrics."""

import numpy as np
import pytest

from repro.throttle import (
    ThrottleGroup,
    build_node_groups,
    build_vm_groups,
    calibrated_caps,
    rar_during_throttle,
    reduction_rates,
    throttle_seconds,
    wr_ratio_under_throttle,
)
from repro.util import ConfigError


def make_group(
    read=((0.0, 0.0, 0.0, 0.0),),
    write=((5.0, 20.0, 5.0, 5.0),),
    cap_bps=(10.0,),
    cap_iops=(100.0,),
):
    read = np.asarray(read, dtype=float)
    write = np.asarray(write, dtype=float)
    return ThrottleGroup(
        label="test",
        members=list(range(read.shape[0])),
        read_bytes=read,
        write_bytes=write,
        read_iops=read / 10.0,
        write_iops=write / 10.0,
        cap_bps=np.asarray(cap_bps, dtype=float),
        cap_iops=np.asarray(cap_iops, dtype=float),
    )


class TestThrottleGroup:
    def test_throttled_detection(self):
        group = make_group()
        throttled = group.throttled("throughput")
        assert throttled.tolist() == [[False, True, False, False]]

    def test_usage_resources(self):
        group = make_group()
        assert group.usage("throughput")[0, 1] == pytest.approx(20.0)
        assert group.usage("iops")[0, 1] == pytest.approx(2.0)

    def test_rejects_bad_resource(self):
        with pytest.raises(ConfigError):
            make_group().usage("bandwidth")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigError):
            make_group(cap_bps=(10.0, 20.0))

    def test_throttle_seconds(self):
        assert throttle_seconds(make_group(), "throughput") == 1


class TestGroupBuilders:
    def test_vm_groups_only_multi_vd(self, small_fleet, small_traffic, rngs):
        caps = calibrated_caps(small_traffic, rngs.child("caps"))
        groups = build_vm_groups(small_fleet, small_traffic, caps)
        for group in groups:
            assert group.num_members >= 2
            vm_ids = {small_fleet.vds[vd].vm_id for vd in group.members}
            assert len(vm_ids) == 1

    def test_node_groups_are_co_located_tenants(
        self, small_fleet, small_traffic, rngs
    ):
        caps = calibrated_caps(small_traffic, rngs.child("caps"))
        groups = build_node_groups(small_fleet, small_traffic, caps)
        for group in groups:
            assert group.num_members >= 2
            nodes = {
                small_fleet.vms[vm].compute_node_id for vm in group.members
            }
            users = {small_fleet.vms[vm].user_id for vm in group.members}
            assert len(nodes) == 1
            assert len(users) == 1

    def test_node_group_caps_sum_vd_caps(
        self, small_fleet, small_traffic, rngs
    ):
        caps = calibrated_caps(small_traffic, rngs.child("caps"))
        groups = build_node_groups(small_fleet, small_traffic, caps)
        for group in groups[:3]:
            for member_index, vm_id in enumerate(group.members):
                vd_ids = [
                    vd.vd_id for vd in small_fleet.vds_of_vm(vm_id)
                ]
                expected = float(caps.throughput_bps[vd_ids].sum())
                assert group.cap_bps[member_index] == pytest.approx(expected)


class TestRar:
    def test_no_throttle_no_samples(self):
        group = make_group(write=((1.0, 1.0, 1.0, 1.0),))
        assert rar_during_throttle(group, "throughput") == []

    def test_two_members_shared_pool(self):
        # Member 0 throttles at t=1 while member 1 idles: RAR is high.
        # Measured traffic is clipped at the cap (the throttled member
        # delivers exactly its cap of 10, not its offered 20).
        group = make_group(
            read=((0, 0, 0, 0), (0, 0, 0, 0)),
            write=((5, 20, 5, 5), (1, 1, 1, 1)),
            cap_bps=(10.0, 30.0),
            cap_iops=(100.0, 100.0),
        )
        samples = rar_during_throttle(group, "throughput")
        assert len(samples) == 1
        assert samples[0] == pytest.approx((40 - 11) / 40)

    def test_saturated_group_has_zero_rar(self):
        # A single member running at its cap leaves nothing to lend.
        group = make_group(write=((50.0, 50.0, 50.0, 50.0),), cap_bps=(10.0,))
        samples = rar_during_throttle(group, "throughput")
        assert all(s == 0.0 for s in samples)


class TestWrRatioUnderThrottle:
    def test_write_only_throttle(self):
        ratios = wr_ratio_under_throttle(make_group(), "throughput")
        assert ratios == [pytest.approx(1.0)]

    def test_read_heavy(self):
        group = make_group(
            read=((30.0, 0.0, 0.0, 0.0),), write=((0.0, 0.0, 0.0, 0.0),)
        )
        ratios = wr_ratio_under_throttle(group, "throughput")
        assert ratios == [pytest.approx(-1.0)]


class TestReductionRates:
    def test_lending_shortens(self):
        group = make_group(
            read=((0, 0, 0, 0), (0, 0, 0, 0)),
            write=((5, 20, 5, 5), (1, 1, 1, 1)),
            cap_bps=(10.0, 30.0),
            cap_iops=(100.0, 100.0),
        )
        rates = reduction_rates(group, "throughput", 0.5)
        assert len(rates) == 1
        # Measured traffic: the throttled member delivers its cap (10) and
        # AR comes from the measured totals.
        ar = 40 - 11
        assert rates[0] == pytest.approx(10 / (10 + 0.5 * ar), rel=1e-6)

    def test_monotone_in_p(self):
        group = make_group(
            read=((0, 0, 0, 0), (0, 0, 0, 0)),
            write=((5, 20, 5, 5), (1, 1, 1, 1)),
            cap_bps=(10.0, 30.0),
            cap_iops=(100.0, 100.0),
        )
        low = reduction_rates(group, "throughput", 0.2)[0]
        high = reduction_rates(group, "throughput", 0.8)[0]
        assert high < low

    def test_rejects_bad_p(self):
        with pytest.raises(ConfigError):
            reduction_rates(make_group(), "throughput", 1.0)
