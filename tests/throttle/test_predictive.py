"""Tests for prediction-guarded lending (§5.3)."""

import numpy as np
import pytest

from repro.throttle import (
    LendingConfig,
    PredictiveLendingConfig,
    simulate_lending,
    simulate_predictive_lending,
)
from repro.throttle.metrics import ThrottleGroup
from repro.util import ConfigError

from tests.throttle.test_lending import group_from


class TestConfig:
    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigError):
            PredictiveLendingConfig(forecast_margin=0.5)

    def test_rejects_bad_history(self):
        with pytest.raises(ConfigError):
            PredictiveLendingConfig(history_seconds=1)


class TestPredictiveLending:
    def test_still_lends_to_relieve_throttle(self):
        group = group_from(
            [[5, 20, 20, 5], [1, 1, 1, 1]], caps=[10.0, 30.0]
        )
        outcome = simulate_predictive_lending(
            group,
            "throughput",
            PredictiveLendingConfig(
                base=LendingConfig(lending_rate=0.8, period_seconds=4)
            ),
        )
        assert outcome.throttled_seconds_with < outcome.throttled_seconds_without

    def test_guard_protects_ramping_lender(self):
        # Member 1 ramps steadily toward its cap; plain lending reclaims
        # its headroom and throttles it, the predictive guard sees the
        # ramp (a perfect linear trend) and reclaims nothing.
        ramp = [10.0, 14.0, 18.0, 22.0, 26.0, 29.0]
        burst = [5.0, 20.0, 5.0, 5.0, 5.0, 5.0]
        group = group_from([burst, ramp], caps=[10.0, 30.0])
        plain = simulate_lending(
            group, "throughput", LendingConfig(lending_rate=0.9, period_seconds=6)
        )
        guarded = simulate_predictive_lending(
            group,
            "throughput",
            PredictiveLendingConfig(
                base=LendingConfig(lending_rate=0.9, period_seconds=6),
                history_seconds=4,
            ),
        )
        assert guarded.throttled_seconds_with <= plain.throttled_seconds_with

    def test_no_throttle_noop(self):
        group = group_from([[1, 1, 1, 1], [1, 1, 1, 1]], caps=[10.0, 10.0])
        outcome = simulate_predictive_lending(group, "throughput")
        assert outcome.throttled_seconds_with == 0
        assert outcome.gain == 0.0

    def test_rejects_bad_resource(self):
        group = group_from([[1, 1], [1, 1]], caps=[10.0, 10.0])
        with pytest.raises(ConfigError):
            simulate_predictive_lending(group, "bandwidth")

    def test_no_worse_than_plain_on_average(self, small_fleet, small_traffic, rngs):
        from repro.throttle import build_vm_groups, calibrated_caps

        caps = calibrated_caps(small_traffic, rngs.child("caps"))
        groups = build_vm_groups(small_fleet, small_traffic, caps)
        plain_gains, guarded_gains = [], []
        for group in groups:
            plain = simulate_lending(
                group, "throughput", LendingConfig(lending_rate=0.8)
            )
            guarded = simulate_predictive_lending(
                group,
                "throughput",
                PredictiveLendingConfig(base=LendingConfig(lending_rate=0.8)),
            )
            if plain.throttled_seconds_without > 0:
                plain_gains.append(plain.gain)
                guarded_gains.append(guarded.gain)
        if plain_gains:
            # The guard may lend less (smaller gains) but must not create
            # materially more negative outcomes than plain lending.
            plain_neg = np.mean(np.asarray(plain_gains) < 0)
            guarded_neg = np.mean(np.asarray(guarded_gains) < 0)
            assert guarded_neg <= plain_neg + 0.1
