"""Tests for FIFO, LRU, and frozen cache policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import FifoCache, FrozenCache, LruCache
from repro.util import ConfigError

access_sequences = st.lists(st.integers(0, 30), min_size=1, max_size=300)


class TestFifo:
    def test_hit_after_admit(self):
        cache = FifoCache(4)
        assert cache.access(1) is False
        assert cache.access(1) is True

    def test_evicts_oldest(self):
        cache = FifoCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert 1 not in cache
        assert 2 in cache
        assert 3 in cache

    def test_hits_do_not_refresh_order(self):
        cache = FifoCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # hit; 1 remains oldest
        cache.access(3)  # evicts 1, not 2
        assert 1 not in cache
        assert 2 in cache

    def test_never_exceeds_capacity(self):
        cache = FifoCache(3)
        for page in range(100):
            cache.access(page)
            cache.check_invariants()
        assert len(cache) == 3

    @settings(max_examples=50)
    @given(access_sequences)
    def test_stats_consistent(self, pages):
        cache = FifoCache(8)
        for page in pages:
            cache.access(page)
        assert cache.stats.accesses == len(pages)
        assert 0.0 <= cache.stats.hit_ratio <= 1.0
        cache.check_invariants()


class TestLru:
    def test_hits_promote(self):
        cache = LruCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # promotes 1
        cache.access(3)  # evicts 2
        assert 1 in cache
        assert 2 not in cache

    def test_never_exceeds_capacity(self):
        cache = LruCache(5)
        for page in range(200):
            cache.access(page % 17)
        cache.check_invariants()

    @settings(max_examples=50)
    @given(access_sequences)
    def test_lru_at_least_as_good_on_reuse_heavy(self, pages):
        # LRU's inclusion property vs FIFO doesn't universally hold, but
        # both must report identical totals and valid ratios.
        fifo, lru = FifoCache(8), LruCache(8)
        for page in pages:
            fifo.access(page)
            lru.access(page)
        assert fifo.stats.accesses == lru.stats.accesses

    @settings(max_examples=30)
    @given(access_sequences)
    def test_infinite_capacity_identical(self, pages):
        # With capacity above the universe size, FIFO == LRU exactly.
        fifo, lru = FifoCache(1000), LruCache(1000)
        hits_f = [fifo.access(p) for p in pages]
        hits_l = [lru.access(p) for p in pages]
        assert hits_f == hits_l


class TestFrozen:
    def test_fixed_residency(self):
        cache = FrozenCache(capacity_pages=4, start_page=10)
        assert cache.access(10) is True
        assert cache.access(13) is True
        assert cache.access(14) is False
        assert cache.access(9) is False
        # A miss never admits: still a miss on repeat.
        assert cache.access(14) is False

    def test_for_byte_range(self):
        cache = FrozenCache.for_byte_range(8192, 8192, page_bytes=4096)
        assert cache.start_page == 2
        assert cache.capacity_pages == 2
        assert 2 in cache and 3 in cache and 4 not in cache

    def test_for_byte_range_partial_pages(self):
        cache = FrozenCache.for_byte_range(100, 5000, page_bytes=4096)
        # Covers pages 0 and 1 (range 100..5100 touches both).
        assert cache.start_page == 0
        assert cache.capacity_pages == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            FrozenCache(0, 0)
        with pytest.raises(ConfigError):
            FrozenCache(1, -1)
        with pytest.raises(ConfigError):
            FrozenCache.for_byte_range(0, 0)

    @settings(max_examples=50)
    @given(access_sequences)
    def test_hit_iff_in_range(self, pages):
        cache = FrozenCache(capacity_pages=10, start_page=5)
        for page in pages:
            expected = 5 <= page < 15
            assert cache.access(page) is expected


class TestStats:
    def test_reset(self):
        cache = FifoCache(2)
        cache.access(1)
        cache.access(1)
        cache.stats.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.hit_ratio == 0.0

    def test_negative_page_rejected(self):
        with pytest.raises(ConfigError):
            FifoCache(2).access(-1)
