"""Tests for hottest-block analysis (Fig 6 metrics)."""

import numpy as np
import pytest

from repro.cache import HottestBlock, hot_rate, hottest_block, hottest_block_wr_ratio
from repro.trace.dataset import TraceDataset
from repro.util import ConfigError
from repro.util.units import MiB


def traces_with_hotspot(
    n_hot=60, n_cold=40, hot_block=2, block_bytes=MiB, vd_id=0, write_hot=True
):
    """Synthetic trace: n_hot IOs inside block ``hot_block``, rest spread."""
    n = n_hot + n_cold
    offsets = np.concatenate(
        [
            np.full(n_hot, hot_block * block_bytes + 4096),
            (np.arange(n_cold) % 10 + 10) * block_bytes,
        ]
    )
    ops = np.concatenate(
        [
            np.full(n_hot, 1 if write_hot else 0),
            np.zeros(n_cold, dtype=int),
        ]
    )
    return TraceDataset(
        sampling_rate=1.0,
        trace_id=np.arange(n),
        op=ops,
        size_bytes=np.full(n, 4096),
        offset_bytes=offsets.astype(np.int64),
        user_id=np.zeros(n, dtype=int),
        vm_id=np.zeros(n, dtype=int),
        vd_id=np.full(n, vd_id),
        qp_id=np.zeros(n, dtype=int),
        wt_id=np.zeros(n, dtype=int),
        compute_node_id=np.zeros(n, dtype=int),
        segment_id=np.zeros(n, dtype=int),
        block_server_id=np.zeros(n, dtype=int),
        storage_node_id=np.zeros(n, dtype=int),
        timestamp=np.linspace(0, 99, n),
        lat_compute_us=np.ones(n),
        lat_frontend_us=np.ones(n),
        lat_block_server_us=np.ones(n),
        lat_backend_us=np.ones(n),
        lat_chunk_server_us=np.ones(n),
    )


class TestHottestBlock:
    def test_finds_hot_block(self):
        traces = traces_with_hotspot()
        block = hottest_block(traces, 0, MiB, capacity_bytes=100 * MiB)
        assert block.block_index == 2
        assert block.access_rate == pytest.approx(0.6)
        assert block.num_accesses == 60
        assert block.lba_share == pytest.approx(0.01)

    def test_block_byte_range(self):
        block = HottestBlock(
            vd_id=0, block_bytes=MiB, block_index=3,
            access_rate=0.5, lba_share=0.01, num_accesses=10,
        )
        assert block.start_byte == 3 * MiB
        assert block.end_byte == 4 * MiB

    def test_none_for_untraced_vd(self):
        traces = traces_with_hotspot(vd_id=5)
        assert hottest_block(traces, 0, MiB, MiB) is None

    def test_lba_share_clamped(self):
        traces = traces_with_hotspot()
        block = hottest_block(traces, 0, 100 * MiB, capacity_bytes=MiB)
        assert block.lba_share == 1.0

    def test_rejects_bad_args(self):
        traces = traces_with_hotspot()
        with pytest.raises(ConfigError):
            hottest_block(traces, 0, 0, MiB)
        with pytest.raises(ConfigError):
            hottest_block(traces, 0, MiB, 0)


class TestWrRatio:
    def test_write_hot_block(self):
        traces = traces_with_hotspot(write_hot=True)
        block = hottest_block(traces, 0, MiB, 100 * MiB)
        assert hottest_block_wr_ratio(traces, block) == pytest.approx(1.0)

    def test_read_hot_block(self):
        traces = traces_with_hotspot(write_hot=False)
        block = hottest_block(traces, 0, MiB, 100 * MiB)
        assert hottest_block_wr_ratio(traces, block) == pytest.approx(-1.0)


class TestHotRate:
    def test_uniform_hotness_near_one(self):
        # The hot block is hot in every window; its rate always exceeds
        # its long-run average minus sampling noise.
        traces = traces_with_hotspot(n_hot=80, n_cold=20)
        block = hottest_block(traces, 0, MiB, 100 * MiB)
        rate = hot_rate(traces, block, window_seconds=25.0)
        assert rate is not None
        assert 0.0 <= rate <= 1.0

    def test_rejects_bad_window(self):
        traces = traces_with_hotspot()
        block = hottest_block(traces, 0, MiB, 100 * MiB)
        with pytest.raises(ConfigError):
            hot_rate(traces, block, window_seconds=0.0)

    def test_none_without_traces(self):
        traces = traces_with_hotspot()
        block = hottest_block(traces, 0, MiB, 100 * MiB)
        empty = traces.where(np.zeros(len(traces), dtype=bool))
        assert hot_rate(empty, block) is None
