"""Pins the array-based replay fast paths to the scalar reference.

Every fast path in :mod:`repro.cache.fastreplay` must produce hit/miss
counts identical to feeding the same page stream through
:meth:`Cache.access` one access at a time — across policies, capacities
(including eviction-forcing ones), and access patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import FifoCache, FrozenCache, LruCache
from repro.cache.fastreplay import (
    PAGE_BYTES,
    _fifo_hits_fixpoint,
    _fifo_hits_loop,
    _lru_hits_loop,
    fifo_hit_count,
    frozen_hit_count,
    lru_hit_count,
    pages_in_time_order,
    prepare_pages,
    replay_many,
    replay_pages_fast,
    replay_trace_fast,
)
from repro.cache.simulate import (
    replay_trace,
    simulate_vd_cache,
    simulate_vd_caches,
)
from repro.trace.dataset import TraceDataset
from repro.util import ConfigError
from repro.util.units import MiB

from tests.cache.test_hotspot import traces_with_hotspot


def scalar_hits(cache, pages) -> int:
    """Ground truth: one Cache.access call per page."""
    for page in pages:
        cache.access(int(page), False)
    return cache.stats.hits


def traces_from_pages(pages, timestamps=None) -> TraceDataset:
    """A minimal single-VD trace touching ``pages`` in order."""
    pages = np.asarray(pages, dtype=np.int64)
    n = pages.size
    if timestamps is None:
        timestamps = np.arange(n, dtype=float)
    zeros = np.zeros(n, dtype=np.int64)
    return TraceDataset(
        sampling_rate=1.0,
        trace_id=np.arange(n),
        op=zeros,
        size_bytes=np.full(n, 4096),
        offset_bytes=pages * PAGE_BYTES,
        user_id=zeros,
        vm_id=zeros,
        vd_id=zeros,
        qp_id=zeros,
        wt_id=zeros,
        compute_node_id=zeros,
        segment_id=zeros,
        block_server_id=zeros,
        storage_node_id=zeros,
        timestamp=np.asarray(timestamps, dtype=float),
        lat_compute_us=np.ones(n),
        lat_frontend_us=np.ones(n),
        lat_block_server_us=np.ones(n),
        lat_backend_us=np.ones(n),
        lat_chunk_server_us=np.ones(n),
    )


def _patterned_stream(rng, kind: int, n: int, universe: int) -> np.ndarray:
    if kind == 0:      # uniform random
        return rng.integers(0, universe, size=n)
    if kind == 1:      # zipf-skewed (hotspot-heavy, like the paper traces)
        return np.minimum(rng.zipf(1.3, size=n) - 1, universe)
    if kind == 2:      # pure scan (FIFO/LRU worst case)
        return np.arange(n) % (universe + 1)
    return (np.arange(n) % (universe + 1)) + rng.integers(0, 3, size=n)


class TestPreparePages:
    def test_hand_example(self):
        prep = prepare_pages(np.array([5, 5, 7, 5, 9, 7]))
        assert prep.dup_hits == 1             # the immediate 5,5 repeat
        np.testing.assert_array_equal(prep.stream, [5, 7, 5, 9, 7])
        assert prep.distinct == 3
        np.testing.assert_array_equal(prep.prev, [-1, -1, 0, -1, 1])
        np.testing.assert_array_equal(prep.dense, [0, 1, 0, 2, 1])
        assert prep.accesses == 6

    def test_empty(self):
        prep = prepare_pages(np.zeros(0, dtype=np.int64))
        assert prep.accesses == 0
        assert prep.distinct == 0
        assert prep.dup_hits == 0

    def test_all_duplicates_compress_to_one(self):
        prep = prepare_pages(np.full(50, 3))
        assert prep.stream.size == 1
        assert prep.dup_hits == 49
        assert prep.distinct == 1


class TestPagesInTimeOrder:
    def test_sorts_by_timestamp(self):
        traces = traces_from_pages([1, 2, 3], timestamps=[3.0, 1.0, 2.0])
        np.testing.assert_array_equal(pages_in_time_order(traces), [2, 3, 1])

    def test_already_sorted_passthrough(self):
        traces = traces_from_pages([4, 5, 6])
        np.testing.assert_array_equal(pages_in_time_order(traces), [4, 5, 6])


class TestFrozenFast:
    def test_matches_scalar(self):
        rng = np.random.default_rng(0)
        pages = rng.integers(0, 40, size=500)
        for start, cap in [(0, 10), (5, 3), (39, 1), (100, 4)]:
            fast = frozen_hit_count(pages, start, cap)
            ref = scalar_hits(FrozenCache(cap, start_page=start), pages)
            assert fast == ref

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            frozen_hit_count(np.array([1]), 0, 0)


class TestFifoEquivalence:
    @pytest.mark.parametrize("kind", [0, 1, 2, 3])
    def test_matches_scalar_across_capacities(self, kind):
        rng = np.random.default_rng(kind)
        for universe in (3, 17, 60):
            pages = _patterned_stream(rng, kind, 800, universe)
            prep = prepare_pages(pages)
            for cap in (1, 2, universe // 2 + 1, universe, universe + 7):
                fast = fifo_hit_count(pages, cap, prep)
                ref = scalar_hits(FifoCache(cap), pages)
                assert fast == ref, (kind, universe, cap)

    def test_no_eviction_boundary(self):
        # distinct == capacity: the shortcut applies; == capacity + 1: it
        # must not.
        pages = np.tile(np.arange(8), 5)
        assert fifo_hit_count(pages, 8) == scalar_hits(FifoCache(8), pages)
        assert fifo_hit_count(pages, 7) == scalar_hits(FifoCache(7), pages)

    def test_fixpoint_agrees_with_loop(self):
        # Large capacity (>= 256) with mild churn routes to the chunked
        # fixpoint; its result must equal the admission-counter loop.
        rng = np.random.default_rng(3)
        pages = rng.integers(0, 400, size=6000)
        prep = prepare_pages(pages)
        for cap in (256, 300, 399):
            assert prep.distinct <= 2 * cap  # fixpoint-eligible regime
            via_fixpoint = _fifo_hits_fixpoint(prep, cap)
            via_loop = _fifo_hits_loop(prep, cap)
            if via_fixpoint is not None:
                assert via_fixpoint == via_loop
            assert fifo_hit_count(pages, cap, prep) == via_loop

    def test_churn_heavy_stream_still_exact(self):
        # distinct far above capacity: routed to the loop; exactness is
        # what matters here.
        rng = np.random.default_rng(4)
        pages = rng.integers(0, 4000, size=9000)
        cap = 300
        assert fifo_hit_count(pages, cap) == scalar_hits(
            FifoCache(cap), pages
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            fifo_hit_count(np.array([1]), 0)


class TestLruEquivalence:
    @pytest.mark.parametrize("kind", [0, 1, 2, 3])
    def test_matches_scalar_across_capacities(self, kind):
        rng = np.random.default_rng(10 + kind)
        for universe in (3, 17, 60):
            pages = _patterned_stream(rng, kind, 800, universe)
            prep = prepare_pages(pages)
            for cap in (1, 2, universe // 2 + 1, universe, universe + 7):
                fast = lru_hit_count(pages, cap, prep)
                ref = scalar_hits(LruCache(cap), pages)
                assert fast == ref, (kind, universe, cap)

    def test_suspect_with_duplicate_heavy_window_hits(self):
        # Gap exceeds the capacity but the reuse window holds one distinct
        # page repeated: stack distance 1 -> the re-access must hit.  This
        # exercises the suspect-counting path, not just the gap shortcut.
        cap = 4
        window = [7, 8] * (3 * cap)   # long window, only 2 distinct pages
        pages = np.array([42] + window + [42])
        fast = lru_hit_count(pages, cap)
        ref = scalar_hits(LruCache(cap), pages)
        assert fast == ref
        # The final 42 access is a hit despite its gap of len(window) + 1.
        assert fast == ref == len(pages) - 3

    def test_sure_miss_prefilter_window(self):
        # The reuse window is packed with first occurrences: at least
        # ``capacity`` distinct new pages guarantee the eviction.
        cap = 4
        pages = np.concatenate([[99], np.arange(cap), [99]])
        fast = lru_hit_count(pages, cap)
        ref = scalar_hits(LruCache(cap), pages)
        assert fast == ref == 0

    def test_large_stream_with_suspects_matches_loop(self):
        rng = np.random.default_rng(5)
        pages = np.minimum(rng.zipf(1.2, size=30000) - 1, 5000)
        prep = prepare_pages(pages)
        for cap in (512, 2048):
            fast = lru_hit_count(pages, cap, prep)
            assert fast == _lru_hits_loop(prep, cap)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            lru_hit_count(np.array([1]), 0)


@settings(max_examples=60, deadline=None)
@given(
    pages=st.lists(st.integers(0, 12), min_size=1, max_size=120),
    capacity=st.integers(1, 15),
)
def test_property_fast_equals_scalar(pages, capacity):
    pages = np.asarray(pages, dtype=np.int64)
    prep = prepare_pages(pages)
    assert fifo_hit_count(pages, capacity, prep) == scalar_hits(
        FifoCache(capacity), pages
    )
    assert lru_hit_count(pages, capacity, prep) == scalar_hits(
        LruCache(capacity), pages
    )


class TestReplayFast:
    def test_replay_trace_fast_matches_reference(self):
        rng = np.random.default_rng(6)
        pages = rng.integers(0, 50, size=700)
        traces = traces_from_pages(pages, timestamps=rng.random(700) * 60)
        for make in (lambda: FifoCache(16), lambda: LruCache(16),
                     lambda: FrozenCache(16, start_page=8)):
            slow_cache, fast_cache = make(), make()
            slow = replay_trace(slow_cache, traces)
            fast = replay_trace_fast(fast_cache, traces)
            assert fast == slow
            assert fast_cache.stats.hits == slow_cache.stats.hits
            assert fast_cache.stats.misses == slow_cache.stats.misses

    def test_unknown_cache_type_falls_back(self):
        class TaggedLru(LruCache):
            pass

        assert replay_pages_fast(TaggedLru(4), np.array([1, 2, 1])) is None
        # replay_trace_fast must still produce the right answer via the
        # scalar fallback.
        traces = traces_from_pages([1, 2, 1, 3, 1])
        cache = TaggedLru(2)
        ratio = replay_trace_fast(cache, traces)
        ref = replay_trace(LruCache(2), traces)
        assert ratio == ref

    def test_replay_many_shares_preparation(self):
        rng = np.random.default_rng(8)
        pages = rng.integers(0, 30, size=400)
        traces = traces_from_pages(pages)
        prepared = prepare_pages(pages_in_time_order(traces))
        caches = {
            "fifo": FifoCache(8),
            "lru": LruCache(8),
            "frozen": FrozenCache(8, start_page=4),
        }
        ratios = replay_many(caches, traces, prepared)
        for name, cache in caches.items():
            ref_cache = type(cache)(8, start_page=4) if name == "frozen" \
                else type(cache)(8)
            assert ratios[name] == replay_trace(ref_cache, traces)
            assert cache.stats.hits == ref_cache.stats.hits

    def test_replay_many_empty_trace(self):
        traces = traces_from_pages([]).where(np.zeros(0, dtype=bool))
        ratios = replay_many({"fifo": FifoCache(4)}, traces)
        assert ratios == {"fifo": 0.0}


class TestSimulateFastSlowParity:
    def test_simulate_vd_cache_fast_equals_slow(self):
        traces = traces_with_hotspot(n_hot=80, n_cold=60)
        fast = simulate_vd_cache(traces, 0, MiB, 100 * MiB, fast=True)
        slow = simulate_vd_cache(traces, 0, MiB, 100 * MiB, fast=False)
        assert fast == slow

    def test_simulate_vd_caches_matches_single_size_calls(self):
        traces = traces_with_hotspot(n_hot=80, n_cold=60)
        sizes = (MiB, 4 * MiB)
        combined = simulate_vd_caches(traces, 0, sizes, 100 * MiB)
        for block_bytes in sizes:
            single = simulate_vd_cache(traces, 0, block_bytes, 100 * MiB)
            assert combined[block_bytes] == single

    def test_none_for_untraced_vd(self):
        traces = traces_with_hotspot()
        assert simulate_vd_caches(traces, 99, (MiB,), 100 * MiB) is None
