"""Tests for trace-driven cache simulation and the placement study."""

import numpy as np
import pytest

from repro.cache import (
    CachePlacementConfig,
    FifoCache,
    cacheable_vd_counts,
    latency_gain,
    simulate_vd_cache,
)
from repro.cache.placement import find_cacheable_blocks
from repro.cache.simulate import replay_trace
from repro.cluster import EBSSimulator, LatencyModel, SimulationConfig
from repro.util import ConfigError
from repro.util.rng import RngFactory, spawn_rng
from repro.util.units import MiB

from tests.cache.test_hotspot import traces_with_hotspot


@pytest.fixture(scope="module")
def sim(small_fleet):
    config = SimulationConfig(
        duration_seconds=150, trace_sampling_rate=1.0 / 5.0
    )
    return EBSSimulator(small_fleet, config, RngFactory(21)).run()


class TestReplayTrace:
    def test_empty_trace(self):
        traces = traces_with_hotspot().where(
            np.zeros(100, dtype=bool)
        )
        assert replay_trace(FifoCache(4), traces) == 0.0

    def test_replays_in_time_order(self):
        traces = traces_with_hotspot(n_hot=50, n_cold=0)
        ratio = replay_trace(FifoCache(1024), traces)
        # All hot IOs share one page: everything after the first hits.
        assert ratio == pytest.approx(49 / 50)


class TestSimulateVdCache:
    def test_returns_three_policies(self):
        traces = traces_with_hotspot()
        out = simulate_vd_cache(traces, 0, MiB, 100 * MiB)
        assert set(out) == {"fifo", "lru", "frozen"}
        for value in out.values():
            assert 0.0 <= value <= 1.0

    def test_none_for_untraced_vd(self):
        traces = traces_with_hotspot()
        assert simulate_vd_cache(traces, 99, MiB, 100 * MiB) is None

    def test_frozen_anchored_at_hot_block(self):
        traces = traces_with_hotspot(n_hot=90, n_cold=10)
        out = simulate_vd_cache(traces, 0, MiB, 100 * MiB)
        # 90% of accesses land in the frozen range.
        assert out["frozen"] == pytest.approx(0.9)


class TestPlacement:
    def test_find_cacheable_blocks(self, sim):
        config = CachePlacementConfig(
            block_bytes=512 * MiB, access_rate_threshold=0.25
        )
        blocks = find_cacheable_blocks(sim.traces, sim.fleet, config)
        for vd_id, block in blocks.items():
            assert block.access_rate >= 0.25
            assert block.vd_id == vd_id

    def test_latency_gain_bounds(self, sim):
        model = LatencyModel()
        config = CachePlacementConfig(block_bytes=512 * MiB)
        for location in ("compute_node", "block_server"):
            gains = latency_gain(
                sim.traces,
                sim.fleet,
                location,
                model,
                spawn_rng(1, "lg"),
                config,
                direction="write",
            )
            if gains is not None:
                for value in gains.values():
                    assert 0.0 < value <= 1.5

    def test_cn_gain_beats_bs_gain_at_median(self, sim):
        model = LatencyModel()
        config = CachePlacementConfig(block_bytes=2048 * MiB)
        cn = latency_gain(
            sim.traces, sim.fleet, "compute_node", model,
            spawn_rng(2, "lg"), config, direction="write",
        )
        bs = latency_gain(
            sim.traces, sim.fleet, "block_server", model,
            spawn_rng(2, "lg"), config, direction="write",
        )
        if cn is not None and bs is not None:
            assert cn[50.0] <= bs[50.0] + 0.05

    def test_cacheable_counts_cover_all_nodes(self, sim):
        config = CachePlacementConfig(block_bytes=512 * MiB)
        placement = sim.storage.placement.primary_mapping()
        cn = cacheable_vd_counts(
            sim.traces, sim.fleet, "compute_node", placement, config
        )
        bs = cacheable_vd_counts(
            sim.traces, sim.fleet, "block_server", placement, config
        )
        assert len(cn) == sim.fleet.config.num_compute_nodes
        assert len(bs) == sim.fleet.config.num_block_servers
        # Same cacheable VDs counted in both views.
        assert sum(cn) == sum(bs)

    def test_rejects_bad_location(self, sim):
        with pytest.raises(ConfigError):
            cacheable_vd_counts(
                sim.traces, sim.fleet, "switch",
                sim.storage.placement.primary_mapping(),
            )

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CachePlacementConfig(block_bytes=0)
        with pytest.raises(ConfigError):
            CachePlacementConfig(access_rate_threshold=1.0)
