"""Tests for the hybrid CN+BS cache deployment (§7.3.3)."""

import numpy as np
import pytest

from repro.cache import (
    CachePlacementConfig,
    HybridCacheConfig,
    latency_gain,
    latency_gain_hybrid,
)
from repro.cache.hybrid import _tier_ranges
from repro.cache.hotspot import HottestBlock
from repro.cluster import EBSSimulator, LatencyModel, SimulationConfig
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory, spawn_rng
from repro.util.units import MiB


@pytest.fixture(scope="module")
def sim(small_fleet):
    config = SimulationConfig(
        duration_seconds=150, trace_sampling_rate=1.0 / 5.0
    )
    return EBSSimulator(small_fleet, config, RngFactory(41)).run()


def block():
    return HottestBlock(
        vd_id=0,
        block_bytes=100 * MiB,
        block_index=2,
        access_rate=0.5,
        lba_share=0.01,
        num_accesses=100,
    )


class TestTierRanges:
    def test_split_partitions_block(self):
        (cn_lo, cn_hi), (bs_lo, bs_hi) = _tier_ranges(block(), 0.25)
        assert cn_lo == block().start_byte
        assert cn_hi == bs_lo
        assert bs_hi == block().end_byte
        assert cn_hi - cn_lo == 25 * MiB

    def test_all_cn(self):
        (cn_lo, cn_hi), (bs_lo, bs_hi) = _tier_ranges(block(), 1.0)
        assert cn_hi - cn_lo == 100 * MiB
        assert bs_hi - bs_lo == 0

    def test_all_bs(self):
        (cn_lo, cn_hi), (bs_lo, bs_hi) = _tier_ranges(block(), 0.0)
        assert cn_hi - cn_lo == 0
        assert bs_hi - bs_lo == 100 * MiB


class TestHybridConfig:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            HybridCacheConfig(cn_fraction=1.5)


class TestLatencyGainHybrid:
    def test_gains_bounded(self, sim):
        gains = latency_gain_hybrid(
            sim.traces,
            sim.fleet,
            LatencyModel(),
            spawn_rng(0, "h"),
            HybridCacheConfig(
                placement=CachePlacementConfig(block_bytes=512 * MiB)
            ),
        )
        if gains is not None:
            for value in gains.values():
                assert 0.0 < value <= 1.5

    def test_between_pure_deployments(self, sim):
        # A 100%-CN hybrid equals the CN-cache; a 0%-CN hybrid equals the
        # BS-cache; the mixed deployment lands between them at the median.
        model = LatencyModel()
        placement = CachePlacementConfig(block_bytes=2048 * MiB)
        cn = latency_gain(
            sim.traces, sim.fleet, "compute_node", model,
            spawn_rng(1, "h"), placement, direction="write",
        )
        bs = latency_gain(
            sim.traces, sim.fleet, "block_server", model,
            spawn_rng(1, "h"), placement, direction="write",
        )
        hybrid = latency_gain_hybrid(
            sim.traces, sim.fleet, model, spawn_rng(1, "h"),
            HybridCacheConfig(placement=placement, cn_fraction=0.5),
            direction="write",
        )
        if cn and bs and hybrid:
            lo = min(cn[50.0], bs[50.0]) - 0.1
            hi = max(cn[50.0], bs[50.0]) + 0.1
            assert lo <= hybrid[50.0] <= hi

    def test_extreme_fractions_match_pure(self, sim):
        model = LatencyModel()
        placement = CachePlacementConfig(block_bytes=2048 * MiB)
        pure_cn = latency_gain(
            sim.traces, sim.fleet, "compute_node", model,
            spawn_rng(2, "h"), placement, direction="write",
        )
        hybrid_cn = latency_gain_hybrid(
            sim.traces, sim.fleet, model, spawn_rng(2, "h"),
            HybridCacheConfig(placement=placement, cn_fraction=1.0),
            direction="write",
        )
        if pure_cn and hybrid_cn:
            assert hybrid_cn[50.0] == pytest.approx(pure_cn[50.0], abs=0.05)

    def test_none_when_no_cacheable(self, sim):
        # An absurd threshold disqualifies every VD.
        gains = latency_gain_hybrid(
            sim.traces, sim.fleet, LatencyModel(), spawn_rng(3, "h"),
            HybridCacheConfig(
                placement=CachePlacementConfig(
                    block_bytes=512 * MiB, access_rate_threshold=0.999
                )
            ),
        )
        assert gains is None

    def test_rejects_bad_direction(self, sim):
        with pytest.raises(ConfigError):
            latency_gain_hybrid(
                sim.traces, sim.fleet, LatencyModel(), spawn_rng(4, "h"),
                direction="sideways",
            )
