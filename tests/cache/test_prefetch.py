"""Tests for the BS sequential-read prefetcher (§2.2)."""

import numpy as np
import pytest

from repro.cache import PrefetchConfig, SequentialPrefetcher
from repro.util import ConfigError
from repro.util.units import KiB, MiB


def make(trigger_run=3, window=8 * MiB):
    return SequentialPrefetcher(
        PrefetchConfig(trigger_run=trigger_run, window_bytes=window)
    )


class TestConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(min_read_bytes=0)
        with pytest.raises(ConfigError):
            PrefetchConfig(trigger_run=0)
        with pytest.raises(ConfigError):
            PrefetchConfig(window_bytes=0)


class TestDetection:
    def test_arms_after_trigger_run(self):
        pf = make(trigger_run=3)
        size = 128 * KiB
        # Three sequential large reads arm the window...
        for i in range(3):
            assert pf.on_read(0, i * size, size) is False
        # ...so the fourth sequential read hits.
        assert pf.on_read(0, 3 * size, size) is True

    def test_small_reads_do_not_arm(self):
        pf = make(trigger_run=2)
        size = 4 * KiB  # below min_read_bytes
        for i in range(10):
            assert pf.on_read(0, i * size, size) is False

    def test_random_reads_do_not_arm(self):
        pf = make(trigger_run=2)
        size = 128 * KiB
        offsets = [0, 100 * MiB, 5 * MiB, 300 * MiB]
        for offset in offsets:
            assert pf.on_read(0, offset, size) is False

    def test_per_segment_state(self):
        pf = make(trigger_run=2)
        size = 128 * KiB
        # Arm segment 0 only.
        pf.on_read(0, 0, size)
        pf.on_read(0, size, size)
        assert pf.on_read(0, 2 * size, size) is True
        # Segment 1 is cold.
        assert pf.on_read(1, 2 * size, size) is False

    def test_window_bounded(self):
        pf = make(trigger_run=2, window=1 * MiB)
        size = 256 * KiB
        pf.on_read(0, 0, size)
        pf.on_read(0, size, size)
        # Within the 1 MiB window: hit; far beyond: miss.
        assert pf.on_read(0, 2 * size, size) is True
        assert pf.on_read(0, 50 * MiB, size) is False


class TestWrites:
    def test_write_invalidates_window(self):
        pf = make(trigger_run=2)
        size = 128 * KiB
        pf.on_read(0, 0, size)
        pf.on_read(0, size, size)  # armed
        pf.on_write(0, 2 * size, size)  # overwrites prefetched range
        assert pf.on_read(0, 3 * size, size) is False

    def test_writes_counted(self):
        pf = make()
        pf.on_write(0, 0, 4096)
        assert pf.stats.writes == 1

    def test_rejects_bad_args(self):
        pf = make()
        with pytest.raises(ConfigError):
            pf.on_read(0, -1, 4096)
        with pytest.raises(ConfigError):
            pf.on_write(0, 0, 0)


class TestStats:
    def test_overall_below_read_hit_ratio_with_writes(self):
        # The §7.2 point: write-dominant traffic caps the overall benefit.
        pf = make(trigger_run=2)
        size = 128 * KiB
        for i in range(10):
            pf.on_read(0, i * size, size)
        for i in range(30):
            pf.on_write(1, i * size, size)
        assert pf.stats.read_hit_ratio > 0.5
        assert pf.stats.overall_hit_ratio < pf.stats.read_hit_ratio / 2

    def test_empty(self):
        pf = make()
        assert pf.stats.read_hit_ratio == 0.0
        assert pf.stats.overall_hit_ratio == 0.0


class TestReplay:
    def test_replay_on_simulated_traces(self, small_fleet, rngs):
        from repro.cluster import EBSSimulator, SimulationConfig

        result = EBSSimulator(
            small_fleet,
            SimulationConfig(duration_seconds=120, trace_sampling_rate=0.2),
            rngs.child("pf"),
        ).run()
        stats = SequentialPrefetcher().replay(result.traces)
        total_reads = stats.read_hits + stats.read_misses
        assert total_reads + stats.writes == len(result.traces)
        assert 0.0 <= stats.read_hit_ratio <= 1.0
        # Write-dominant traffic: the overall ratio collapses vs reads.
        assert stats.overall_hit_ratio <= stats.read_hit_ratio
