"""Ablation: plain vs prediction-guarded lending (§5.3).

The paper warns that plain limited lending can throttle the lender; the
predictive variant reclaims only capacity above each lender's forecast.
This bench compares gains and negative-outcome rates across lending rates.
"""

import numpy as np

from repro.throttle import (
    LendingConfig,
    PredictiveLendingConfig,
    build_vm_groups,
    calibrated_caps,
    simulate_lending,
    simulate_predictive_lending,
)


def _groups(study):
    groups = []
    for result in study.results:
        caps = calibrated_caps(
            result.traffic,
            study.rngs.child(f"abl-caps/dc{result.fleet.config.dc_id}"),
        )
        groups.extend(build_vm_groups(result.fleet, result.traffic, caps))
    return groups


def test_ablation_predictive_lending(benchmark, study):
    def run():
        groups = _groups(study)
        rows = []
        for p in (0.4, 0.8):
            plain_gains, guarded_gains = [], []
            for group in groups:
                plain = simulate_lending(
                    group, "throughput", LendingConfig(lending_rate=p)
                )
                guarded = simulate_predictive_lending(
                    group,
                    "throughput",
                    PredictiveLendingConfig(
                        base=LendingConfig(lending_rate=p)
                    ),
                )
                if plain.throttled_seconds_without > 0:
                    plain_gains.append(plain.gain)
                    guarded_gains.append(guarded.gain)
            rows.append(
                (
                    p,
                    float(np.median(plain_gains)),
                    float(np.mean(np.asarray(plain_gains) < 0)),
                    float(np.median(guarded_gains)),
                    float(np.mean(np.asarray(guarded_gains) < 0)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(
        f"{'p':>4} {'plain med gain':>14} {'plain %neg':>10} "
        f"{'guarded med gain':>16} {'guarded %neg':>12}"
    )
    for p, pg, pn, gg, gn in rows:
        print(
            f"{p:>4.1f} {pg:>14.3f} {100 * pn:>9.1f}% "
            f"{gg:>16.3f} {100 * gn:>11.1f}%"
        )
    # Shape: the forecast guard does not create more negative outcomes.
    for __, ___, plain_neg, ____, guarded_neg in rows:
        assert guarded_neg <= plain_neg + 0.1
