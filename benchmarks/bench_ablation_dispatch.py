"""Ablation: single-WT hosting vs rebinding vs per-IO dispatch (§4).

The paper's §4 argument in one table: static round-robin binding leaves
worker threads skewed, periodic rebinding helps only some nodes, and a
per-IO dispatch model removes the imbalance at a per-IO synchronization
cost.  This bench quantifies all three on the same traces.
"""

import numpy as np

from repro.balancer import (
    DispatchConfig,
    DispatchPolicy,
    RebindingConfig,
    compare_policies,
    simulate_rebinding,
)


def _mean_total_cov(outcomes):
    return float(np.mean([o.total_cov for o in outcomes]))


def test_ablation_hosting_models(benchmark, study):
    def run():
        rows = []
        dispatch_config = DispatchConfig(sync_cost_us=1.0)
        all_outcomes = {}
        rebind_covs = []
        for result in study.results:
            outcomes = compare_policies(
                result.traces, result.hypervisors, dispatch_config
            )
            for policy, outcome_list in outcomes.items():
                all_outcomes.setdefault(policy, []).extend(outcome_list)
            for hypervisor in result.hypervisors:
                rb = simulate_rebinding(
                    result.traces, hypervisor, RebindingConfig()
                )
                if rb is not None and rb.cov_before > 0:
                    rebind_covs.append(rb.cov_after)
        rows.append(
            (
                "single-WT (production)",
                _mean_total_cov(all_outcomes[DispatchPolicy.HASH_QP]),
                0.0,
            )
        )
        rows.append(
            ("10ms rebinding", float(np.mean(rebind_covs)), 0.0)
        )
        for policy in (
            DispatchPolicy.ROUND_ROBIN,
            DispatchPolicy.JOIN_SHORTEST_QUEUE,
        ):
            outcomes = all_outcomes[policy]
            rows.append(
                (
                    f"dispatch/{policy.value}",
                    _mean_total_cov(outcomes),
                    float(np.mean([o.added_cost_us_per_io for o in outcomes])),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'hosting model':<28} {'mean WT CoV':>12} {'cost us/IO':>10}")
    for name, cov, cost in rows:
        print(f"{name:<28} {cov:>12.3f} {cost:>10.2f}")

    by_name = {name: cov for name, cov, __ in rows}
    # Shape (§4.4): dispatch clearly beats both static hosting and
    # rebinding on balance.
    assert by_name["dispatch/round_robin"] < by_name["single-WT (production)"]
    assert (
        by_name["dispatch/join_shortest_queue"]
        < by_name["single-WT (production)"]
    )


def test_ablation_dispatch_sync_cost_sweep(benchmark, study):
    """The cost axis of the §4.4 trade-off: software lock vs hardware queue."""

    def run():
        result = study.results[0]
        rows = []
        for sync_cost in (0.1, 1.0, 5.0):
            outcomes = compare_policies(
                result.traces,
                result.hypervisors,
                DispatchConfig(sync_cost_us=sync_cost),
            )
            rr = outcomes[DispatchPolicy.ROUND_ROBIN]
            rows.append(
                (
                    sync_cost,
                    float(np.mean([o.added_cost_us_per_io for o in rr])),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'sync cost us':>12} {'added us/IO':>12}")
    for sync_cost, added in rows:
        print(f"{sync_cost:>12.1f} {added:>12.2f}")
    added = [a for __, a in rows]
    assert added == sorted(added)
