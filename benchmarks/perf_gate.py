"""Perf-regression gate: fresh BENCH_simulator.json vs committed baseline.

CI's ``bench-smoke`` job regenerates ``BENCH_simulator.json`` (the perf
benchmarks' artifact) and runs this gate against the committed
``benchmarks/BENCH_baseline.json``.  The gate compares the
**throughput** figures of the vectorized fast paths and fails — exit
code 1 — when any of them drops below ``baseline * (1 - tolerance)``.

Design points:

- **One-sided.** Getting faster never fails the gate; only regressions
  do.  Machine-to-machine wobble above the baseline is free speedup,
  wobble below it beyond the tolerance is exactly what we want to catch.
- **Apples to apples.** The gate refuses (exit code 2) to compare runs
  at different benchmark scales — a ``tiny`` candidate can never be
  judged against a ``medium`` baseline.
- **Refreshing the baseline** is a plain copy, reviewed like any other
  change::

      PYTHONPATH=src python benchmarks/bench_perf_simulator.py --scale medium
      PYTHONPATH=src python benchmarks/bench_perf_cache.py --scale medium
      cp BENCH_simulator.json benchmarks/BENCH_baseline.json

- ``--self-test`` proves the gate has teeth: it synthesizes a candidate
  with every gated metric slowed down 2x and asserts the comparison
  fails, then asserts the baseline passes against itself.  CI runs this
  before trusting the real comparison.

Exit codes: 0 gate passed (or self-test OK), 1 perf regression,
2 malformed/missing/incomparable artifacts.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
DEFAULT_CANDIDATE = REPO_ROOT / "BENCH_simulator.json"
DEFAULT_TOLERANCE = 0.25
SLOWDOWN_FACTOR = 2.0


@dataclass(frozen=True)
class Gate:
    """One higher-is-better throughput figure to guard."""

    section: str
    metric: str
    unit: str


GATES = (
    Gate(
        "simulator_pass1",
        "fleet_seconds_per_second_fast",
        "fleet-seconds/s",
    ),
    Gate("cache_replay", "ios_per_second_fast", "IOs/s"),
)


def _load(path: Path) -> Dict[str, Any]:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"perf-gate: missing artifact {path} (exit 2)\n")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"perf-gate: {path} is not JSON: {exc}\n")
    if not isinstance(payload, dict):
        raise SystemExit(f"perf-gate: {path} must hold a JSON object\n")
    return payload


def compare(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float,
) -> "tuple[List[str], List[str]]":
    """Return ``(failures, report_lines)`` for the gated metrics.

    ``failures`` holds regression messages; structural problems (missing
    sections/metrics, scale mismatches) are failures too, so a truncated
    artifact can never sneak through as a pass.
    """
    failures: List[str] = []
    report: List[str] = []
    for gate in GATES:
        base_section = baseline.get(gate.section)
        cand_section = candidate.get(gate.section)
        if not isinstance(base_section, dict) or not isinstance(
            cand_section, dict
        ):
            failures.append(
                f"{gate.section}: section missing from "
                f"{'baseline' if not isinstance(base_section, dict) else 'candidate'}"
            )
            continue
        if base_section.get("scale") != cand_section.get("scale"):
            failures.append(
                f"{gate.section}: scale mismatch "
                f"(baseline={base_section.get('scale')!r}, "
                f"candidate={cand_section.get('scale')!r}) — rerun the "
                f"benchmarks at the baseline's scale"
            )
            continue
        base = base_section.get(gate.metric)
        cand = cand_section.get(gate.metric)
        if not isinstance(base, (int, float)) or not isinstance(
            cand, (int, float)
        ):
            failures.append(
                f"{gate.section}.{gate.metric}: missing or non-numeric"
            )
            continue
        floor = base * (1.0 - tolerance)
        ratio = cand / base if base else float("inf")
        line = (
            f"{gate.section}.{gate.metric}: candidate {cand:,.0f} "
            f"{gate.unit} vs baseline {base:,.0f} "
            f"({ratio:.2f}x, floor {floor:,.0f})"
        )
        if cand < floor:
            failures.append(f"REGRESSION {line}")
        else:
            report.append(f"ok {line}")
    return failures, report


def self_test(baseline: Dict[str, Any], tolerance: float) -> int:
    """Prove the gate fails on an injected 2x slowdown and passes itself."""
    slowed = copy.deepcopy(baseline)
    for gate in GATES:
        section = slowed.get(gate.section)
        if isinstance(section, dict) and isinstance(
            section.get(gate.metric), (int, float)
        ):
            section[gate.metric] = section[gate.metric] / SLOWDOWN_FACTOR
    failures, _ = compare(baseline, slowed, tolerance)
    regressions = [f for f in failures if f.startswith("REGRESSION")]
    if len(regressions) != len(GATES):
        print(
            "self-test FAILED: injected 2x slowdown was not caught "
            f"({len(regressions)}/{len(GATES)} gates fired)",
            file=sys.stderr,
        )
        return 1
    clean, report = compare(baseline, baseline, tolerance)
    if clean:
        print(
            f"self-test FAILED: baseline does not pass itself: {clean}",
            file=sys.stderr,
        )
        return 1
    for line in regressions:
        print(f"self-test caught: {line}")
    for line in report:
        print(f"self-test {line}")
    print(
        f"self-test ok: {SLOWDOWN_FACTOR}x slowdown fails the gate, "
        f"baseline passes it (tolerance {tolerance:.0%})"
    )
    return 0


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed reference artifact",
    )
    parser.add_argument(
        "--candidate", type=Path, default=DEFAULT_CANDIDATE,
        help="freshly generated BENCH_simulator.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate catches an injected 2x slowdown, then exit",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    baseline = _load(args.baseline)
    if args.self_test:
        return self_test(baseline, args.tolerance)

    candidate = _load(args.candidate)
    failures, report = compare(baseline, candidate, args.tolerance)
    for line in report:
        print(line)
    if failures:
        for line in failures:
            print(f"perf-gate: {line}", file=sys.stderr)
        structural = [f for f in failures if not f.startswith("REGRESSION")]
        return 2 if structural and len(structural) == len(failures) else 1
    print(f"perf-gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
