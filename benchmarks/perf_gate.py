"""Perf-regression gate: fresh BENCH_simulator.json vs committed baseline.

CI's ``bench-smoke`` job regenerates ``BENCH_simulator.json`` (the perf
benchmarks' artifact) and runs this gate against the committed
``benchmarks/BENCH_baseline.json``.  The gate compares the
**throughput** figures of the vectorized fast paths and fails — exit
code 1 — when any of them drops below ``baseline * (1 - tolerance)``.

Design points:

- **One-sided.** Getting faster never fails the gate; only regressions
  do.  Machine-to-machine wobble above the baseline is free speedup,
  wobble below it beyond the tolerance is exactly what we want to catch.
- **Apples to apples.** The gate refuses (exit code 2) to compare runs
  at different benchmark scales — a ``tiny`` candidate can never be
  judged against a ``medium`` baseline.
- **Refreshing the baseline** is a plain copy, reviewed like any other
  change::

      PYTHONPATH=src python benchmarks/bench_perf_simulator.py --scale medium
      PYTHONPATH=src python benchmarks/bench_perf_cache.py --scale medium
      cp BENCH_simulator.json benchmarks/BENCH_baseline.json

- ``--self-test`` proves the gate has teeth: it synthesizes a candidate
  with every gated metric slowed down 2x and asserts the comparison
  fails, then asserts the baseline passes against itself.  CI runs this
  before trusting the real comparison.
- **Targets are advisory by default.**  Schema-v3 artifacts record the
  raw-speed-tier targets (and attainment) per section; the gate reports
  them in its output and ``--summary`` table but only fails on them
  under the opt-in ``--enforce-targets`` flag.
- ``--summary FILE`` appends a GitHub-flavored markdown table (baseline
  vs candidate, the tolerance floor, targets and attainment) — CI points
  it at ``$GITHUB_STEP_SUMMARY``.

Exit codes: 0 gate passed (or self-test OK), 1 perf regression,
2 malformed/missing/incomparable artifacts.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
DEFAULT_CANDIDATE = REPO_ROOT / "BENCH_simulator.json"
DEFAULT_TOLERANCE = 0.25
SLOWDOWN_FACTOR = 2.0


@dataclass(frozen=True)
class Gate:
    """One higher-is-better throughput figure to guard."""

    section: str
    metric: str
    unit: str


GATES = (
    Gate(
        "simulator_pass1",
        "fleet_seconds_per_second_fast",
        "fleet-seconds/s",
    ),
    Gate("cache_replay", "ios_per_second_fast", "IOs/s"),
)


def _load(path: Path) -> Dict[str, Any]:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"perf-gate: missing artifact {path} (exit 2)\n")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"perf-gate: {path} is not JSON: {exc}\n")
    if not isinstance(payload, dict):
        raise SystemExit(f"perf-gate: {path} must hold a JSON object\n")
    return payload


def _target_block(section: "Dict[str, Any] | None") -> "Dict[str, Any] | None":
    """The section's recorded target block, if well-formed (schema v3)."""
    if not isinstance(section, dict):
        return None
    target = section.get("target")
    if (
        isinstance(target, dict)
        and isinstance(target.get("value"), (int, float))
        and isinstance(target.get("attainment"), (int, float))
    ):
        return target
    return None


def evaluate(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float,
) -> "List[Dict[str, Any]]":
    """One structured row per gate: measurements, verdict, target.

    ``error`` rows carry a structural message (missing sections/metrics,
    scale mismatches); measured rows carry baseline/candidate/floor plus
    the candidate's recorded target block (``None`` pre-v3).
    """
    rows: List[Dict[str, Any]] = []
    for gate in GATES:
        row: Dict[str, Any] = {"gate": gate, "error": None}
        base_section = baseline.get(gate.section)
        cand_section = candidate.get(gate.section)
        if not isinstance(base_section, dict) or not isinstance(
            cand_section, dict
        ):
            row["error"] = (
                f"{gate.section}: section missing from "
                f"{'baseline' if not isinstance(base_section, dict) else 'candidate'}"
            )
            rows.append(row)
            continue
        if base_section.get("scale") != cand_section.get("scale"):
            row["error"] = (
                f"{gate.section}: scale mismatch "
                f"(baseline={base_section.get('scale')!r}, "
                f"candidate={cand_section.get('scale')!r}) — rerun the "
                f"benchmarks at the baseline's scale"
            )
            rows.append(row)
            continue
        base = base_section.get(gate.metric)
        cand = cand_section.get(gate.metric)
        if not isinstance(base, (int, float)) or not isinstance(
            cand, (int, float)
        ):
            row["error"] = (
                f"{gate.section}.{gate.metric}: missing or non-numeric"
            )
            rows.append(row)
            continue
        row.update(
            baseline=base,
            candidate=cand,
            floor=base * (1.0 - tolerance),
            ratio=cand / base if base else float("inf"),
            regressed=cand < base * (1.0 - tolerance),
            target=_target_block(cand_section),
        )
        rows.append(row)
    return rows


def compare(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float,
) -> "tuple[List[str], List[str]]":
    """Return ``(failures, report_lines)`` for the gated metrics.

    ``failures`` holds regression messages; structural problems (missing
    sections/metrics, scale mismatches) are failures too, so a truncated
    artifact can never sneak through as a pass.
    """
    failures: List[str] = []
    report: List[str] = []
    for row in evaluate(baseline, candidate, tolerance):
        if row["error"] is not None:
            failures.append(row["error"])
            continue
        gate = row["gate"]
        line = (
            f"{gate.section}.{gate.metric}: candidate {row['candidate']:,.0f} "
            f"{gate.unit} vs baseline {row['baseline']:,.0f} "
            f"({row['ratio']:.2f}x, floor {row['floor']:,.0f})"
        )
        target = row["target"]
        if target is not None:
            line += (
                f" [target {target['value']:,.0f}: "
                f"{target['attainment']:.1%}]"
            )
        if row["regressed"]:
            failures.append(f"REGRESSION {line}")
        else:
            report.append(f"ok {line}")
    return failures, report


def enforce_targets(candidate: Dict[str, Any]) -> List[str]:
    """Opt-in absolute check: every gated section must meet its target.

    Requires a schema-v3 candidate (recorded target blocks); a missing
    block is a structural failure, not a silent pass.
    """
    failures: List[str] = []
    for gate in GATES:
        target = _target_block(candidate.get(gate.section))
        if target is None:
            failures.append(
                f"{gate.section}: no recorded target block (regenerate the "
                f"artifact with a schema>=3 benchmark run)"
            )
        elif target["attainment"] < 1.0:
            failures.append(
                f"TARGET MISS {gate.section}.{gate.metric}: "
                f"{target['attainment']:.1%} of the "
                f"{target['value']:,.0f} {gate.unit} target"
            )
    return failures


def write_summary(
    path: Path,
    rows: "List[Dict[str, Any]]",
    tolerance: float,
    title: str = "Perf gate",
) -> None:
    """Append a GitHub-flavored markdown table (``$GITHUB_STEP_SUMMARY``)."""
    lines = [
        f"### {title}",
        "",
        f"Tolerance: candidate may be up to **{tolerance:.0%}** slower "
        f"than the committed baseline (one-sided; faster never fails).",
        "",
        "| metric | baseline | candidate | delta | floor | target "
        "| attainment | status |",
        "|---|---:|---:|---:|---:|---:|---:|---|",
    ]
    for row in rows:
        gate = row["gate"]
        name = f"`{gate.section}.{gate.metric}`"
        if row["error"] is not None:
            lines.append(
                f"| {name} | — | — | — | — | — | — | error: {row['error']} |"
            )
            continue
        target = row["target"]
        lines.append(
            "| {name} | {base:,.0f} | {cand:,.0f} | {delta:+.1%} "
            "| {floor:,.0f} | {tval} | {attain} | {status} |".format(
                name=name,
                base=row["baseline"],
                cand=row["candidate"],
                delta=row["ratio"] - 1.0,
                floor=row["floor"],
                tval=(
                    f"{target['value']:,.0f}" if target is not None else "—"
                ),
                attain=(
                    f"{target['attainment']:.1%}"
                    if target is not None
                    else "—"
                ),
                status="❌ regression" if row["regressed"] else "✅ ok",
            )
        )
    lines.append("")
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def self_test(baseline: Dict[str, Any], tolerance: float) -> int:
    """Prove the gate fails on an injected 2x slowdown and passes itself."""
    slowed = copy.deepcopy(baseline)
    for gate in GATES:
        section = slowed.get(gate.section)
        if isinstance(section, dict) and isinstance(
            section.get(gate.metric), (int, float)
        ):
            section[gate.metric] = section[gate.metric] / SLOWDOWN_FACTOR
    failures, _ = compare(baseline, slowed, tolerance)
    regressions = [f for f in failures if f.startswith("REGRESSION")]
    if len(regressions) != len(GATES):
        print(
            "self-test FAILED: injected 2x slowdown was not caught "
            f"({len(regressions)}/{len(GATES)} gates fired)",
            file=sys.stderr,
        )
        return 1
    clean, report = compare(baseline, baseline, tolerance)
    if clean:
        print(
            f"self-test FAILED: baseline does not pass itself: {clean}",
            file=sys.stderr,
        )
        return 1
    for line in regressions:
        print(f"self-test caught: {line}")
    for line in report:
        print(f"self-test {line}")
    print(
        f"self-test ok: {SLOWDOWN_FACTOR}x slowdown fails the gate, "
        f"baseline passes it (tolerance {tolerance:.0%})"
    )
    return 0


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed reference artifact",
    )
    parser.add_argument(
        "--candidate", type=Path, default=DEFAULT_CANDIDATE,
        help="freshly generated BENCH_simulator.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate catches an injected 2x slowdown, then exit",
    )
    parser.add_argument(
        "--summary", type=Path, default=None, metavar="FILE",
        help="append a markdown gate table to FILE "
        "(CI: point at $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--enforce-targets", action="store_true",
        help="also fail when a gated metric is below its recorded "
        "raw-speed target (advisory by default)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    baseline = _load(args.baseline)
    if args.self_test:
        return self_test(baseline, args.tolerance)

    candidate = _load(args.candidate)
    rows = evaluate(baseline, candidate, args.tolerance)
    if args.summary is not None:
        write_summary(args.summary, rows, args.tolerance)
    failures, report = compare(baseline, candidate, args.tolerance)
    if args.enforce_targets:
        failures.extend(enforce_targets(candidate))
    for line in report:
        print(line)
    if failures:
        for line in failures:
            print(f"perf-gate: {line}", file=sys.stderr)
        structural = [
            f
            for f in failures
            if not f.startswith(("REGRESSION", "TARGET MISS"))
        ]
        return 2 if structural and len(structural) == len(failures) else 1
    print(f"perf-gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
