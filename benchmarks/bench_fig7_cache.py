"""Regenerates Figure 7: cache algorithm and placement (§7.3)."""

from benchmarks.conftest import run_and_print


def test_fig7a_hit_ratio(benchmark, study):
    result = run_and_print(benchmark, study, "fig7a", rounds=1)
    rows = {(row[0], row[1]): (row[2], row[3]) for row in result.rows}
    # Sort size labels like "64 MiB" numerically, not lexically.
    sizes = sorted({key[0] for key in rows}, key=lambda s: int(s.split()[0]))
    for size in sizes:
        fifo_median, __ = rows[(size, "fifo")]
        lru_median, __ = rows[(size, "lru")]
        # Shape: FIFO and LRU are near-identical (Fig 7a).
        assert abs(fifo_median - lru_median) < 0.1
    # Shape: the frozen cache's hit ratio grows with block size (small
    # sampling wiggle allowed) and its p10 lower bound ends above
    # FIFO/LRU's at the largest size.
    frozen = [rows[(size, "frozen")][0] for size in sizes]
    assert all(b >= a - 0.05 for a, b in zip(frozen, frozen[1:]))
    largest = sizes[-1]
    assert rows[(largest, "frozen")][1] >= rows[(largest, "lru")][1]


def test_fig7bc_latency_gain(benchmark, study):
    result = run_and_print(benchmark, study, "fig7bc", rounds=1)
    by_key = {(row[0], row[1]): row for row in result.rows}
    cn = by_key.get(("write", "compute_node"))
    bs = by_key.get(("write", "block_server"))
    if cn and bs:
        # Shape: CN-cache gives the better (smaller) write gain at the
        # 0%ile and 50%ile (Fig 7c).
        assert cn[2] <= bs[2] + 5.0
        assert cn[3] <= bs[3] + 5.0


def test_fig7d_space_utilization(benchmark, study):
    result = run_and_print(benchmark, study, "fig7d", rounds=1)
    # Shape: the CN-cache spread exceeds the BS-cache spread at the
    # largest block size (the paper's 21x claim is at 2048 MiB; smaller
    # sizes can tie at simulation scale).
    last = result.rows[-1]
    cn_std, bs_std = last[1], last[2]
    assert cn_std >= bs_std * 0.95
