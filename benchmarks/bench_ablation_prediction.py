"""Ablation: prediction history length and retrain cadence (§6.1.3).

The paper's trade-off is accuracy vs retraining overhead.  These sweeps
quantify two of its axes on the busiest cluster's per-BS write traffic:
the attention model's input window, and the retrain cadence from
per-period down to train-once.
"""

import numpy as np

from repro.balancer import segment_period_matrix
from repro.cluster import StorageCluster
from repro.prediction import (
    AttentionForecaster,
    EvaluationConfig,
    evaluate_predictor,
)
from repro.prediction.attention import AttentionConfig


def _bs_matrix(study):
    result = study.results[0]
    storage = StorageCluster(result.fleet)
    write = segment_period_matrix(
        result.metrics.storage,
        len(result.fleet.segments),
        study.config.duration_seconds,
        study.config.prediction_period_seconds,
        "write",
    )
    seg_bs = storage.primary_array()
    matrix = np.zeros((storage.num_block_servers, write.shape[1]))
    np.add.at(matrix, seg_bs, write)
    return matrix


def test_ablation_attention_window(benchmark, study):
    def run():
        matrix = _bs_matrix(study)
        rows = []
        for window in (4, 8, 12):
            result = evaluate_predictor(
                AttentionForecaster(AttentionConfig(window=window)),
                matrix,
                EvaluationConfig(
                    warmup_periods=max(
                        study.config.prediction_warmup_periods, window + 2
                    ),
                    retrain_every=1,
                ),
            )
            rows.append((window, result.mse))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'window':>6} {'MSE':>10}")
    for window, mse in rows:
        print(f"{window:>6} {mse:>10.3f}")
    assert all(np.isfinite(mse) for __, mse in rows)


def test_ablation_retrain_cadence(benchmark, study):
    def run():
        matrix = _bs_matrix(study)
        horizon = matrix.shape[1]
        rows = []
        for cadence in (1, 5, max(10, horizon)):
            result = evaluate_predictor(
                AttentionForecaster(AttentionConfig()),
                matrix,
                EvaluationConfig(
                    warmup_periods=study.config.prediction_warmup_periods,
                    retrain_every=cadence,
                ),
            )
            rows.append((cadence, result.mse))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'retrain every':>13} {'MSE':>10}")
    for cadence, mse in rows:
        print(f"{cadence:>13} {mse:>10.3f}")
    assert all(np.isfinite(mse) for __, mse in rows)
