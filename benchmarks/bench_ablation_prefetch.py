"""Ablation: the production prefetch cache's blind spot (§2.2 + §7.2).

The BS prefetcher only helps sequential reads; the paper's §7.2 explains
the existing cache's limited effect by the hottest blocks being
write-dominant.  This bench replays the traces through the prefetcher and
shows the gap between the read hit ratio and the overall hit ratio, plus
how the trigger-run threshold trades hits against prefetched volume.
"""

import numpy as np

from repro.cache import PrefetchConfig, SequentialPrefetcher


def test_ablation_prefetch_blind_spot(benchmark, study):
    def run():
        rows = []
        for result in study.results:
            stats = SequentialPrefetcher().replay(result.traces)
            rows.append(
                (
                    f"DC-{result.fleet.config.dc_id + 1}",
                    stats.read_hit_ratio,
                    stats.overall_hit_ratio,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'cluster':<8} {'read hit':>8} {'overall hit':>11}")
    for cluster, read_hit, overall in rows:
        print(f"{cluster:<8} {read_hit:>8.3f} {overall:>11.3f}")
    # Shape (§7.2): writes dominate, so the overall benefit is a fraction
    # of the read-side hit ratio.
    for __, read_hit, overall in rows:
        assert overall <= read_hit + 1e-9


def test_ablation_prefetch_trigger_sweep(benchmark, study):
    def run():
        result = study.results[0]
        rows = []
        for trigger in (2, 4, 8):
            prefetcher = SequentialPrefetcher(
                PrefetchConfig(trigger_run=trigger)
            )
            stats = prefetcher.replay(result.traces)
            rows.append(
                (trigger, stats.read_hit_ratio, stats.prefetched_bytes)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'trigger':>7} {'read hit':>8} {'prefetched MiB':>14}")
    for trigger, hit, prefetched in rows:
        print(f"{trigger:>7} {hit:>8.3f} {prefetched / (1 << 20):>14.1f}")
    volumes = [v for __, ___, v in rows]
    # A stricter trigger prefetches no more data than a laxer one.
    assert all(a >= b for a, b in zip(volumes, volumes[1:]))
