"""Perf benchmark: live ingestion throughput (§ repro.live).

Replays a synthesized event stream through the full threaded pipeline
(injector -> ring -> windowed skew tracker + sketches -> policy engine)
at maximum rate, records sustained events/sec and decision latency in
``BENCH_live.json``, and re-derives the offline reference to assert the
online windowed statistics matched it **exactly** — a benchmark run that
loses parity is a failure, not a slow result.

Run directly::

    PYTHONPATH=src python benchmarks/bench_live.py --duration 30

or as a pytest smoke check (short replay, parity + floor only)::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_live.py -q
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.live import (
    LiveConfig,
    build_pipeline,
    offline_window_stats,
    run_live,
)

try:
    from benchmarks.perf_common import merge_results
except ImportError:  # executed as a script from inside benchmarks/
    from perf_common import merge_results

#: Live results live next to the other BENCH artifacts, at the repo root.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_live.json"


def run_live_benchmark(
    scale: str = "small",
    duration: int = 30,
    window: int = 5,
    seed: int = 7,
    batch_events: int = 4096,
) -> dict:
    """One max-rate replay; returns the results payload."""
    config = LiveConfig(
        scale=scale,
        seed=seed,
        duration_seconds=duration,
        window_seconds=window,
        batch_events=batch_events,
        rate=None,  # as fast as possible: this is the throughput figure
    )
    report = run_live(config)

    # Parity against the offline reference on the identical stream: the
    # correctness anchor rides along with every benchmark run.
    pipeline = build_pipeline(config)
    offline = offline_window_stats(
        pipeline.injector.events,
        pipeline.tracker.num_vds,
        pipeline.tracker.total_seconds,
        window,
    )
    matches = [w.to_dict() for w in report.windows] == [
        c.stats.to_dict() for c in offline
    ]

    return {
        "config": config.to_dict(),
        "events": report.events,
        "batches": report.batches,
        "events_dropped": report.events_dropped,
        "wall_seconds": round(report.wall_seconds, 4),
        "events_per_sec": round(report.events_per_sec),
        "windows_closed": len(report.windows),
        "decisions": len(report.decisions),
        "decision_latency_max_us": report.decision_latency_max_us,
        "top_segments": len(report.top_segments),
        "ring_stats": report.ring_stats,
        "matches_offline": bool(matches),
    }


# -- pytest smoke (short replay, parity + floor only) ------------------------


def test_live_throughput_smoke(tmp_path):
    payload = run_live_benchmark(duration=10)
    assert payload["matches_offline"]
    assert payload["events_dropped"] == 0
    assert payload["events"] > 0
    # The acceptance floor: the small-scale replay sustains >= 100k
    # events/sec end to end (threads, ring hops, and policy included).
    assert payload["events_per_sec"] >= 100_000
    merge_results("live", payload, tmp_path / "BENCH_live.json")
    assert (tmp_path / "BENCH_live.json").exists()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small")
    parser.add_argument("--duration", type=int, default=30)
    parser.add_argument("--window", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--batch-events", type=int, default=4096)
    parser.add_argument(
        "--assert-events-per-sec", type=float, default=None,
        help="fail (exit 1) when sustained events/sec lands below this",
    )
    args = parser.parse_args()

    payload = run_live_benchmark(
        scale=args.scale,
        duration=args.duration,
        window=args.window,
        seed=args.seed,
        batch_events=args.batch_events,
    )
    merge_results("live", payload, RESULTS_PATH)
    print(
        f"live[{args.scale}]: {payload['events']} events in "
        f"{payload['wall_seconds']}s wall "
        f"({payload['events_per_sec']} events/sec), "
        f"{payload['windows_closed']} windows, "
        f"{payload['decisions']} decisions, "
        f"max decision latency {payload['decision_latency_max_us']}us, "
        f"matches_offline={payload['matches_offline']}"
    )
    if not payload["matches_offline"]:
        raise SystemExit("online windowed stats diverged from offline")
    if (
        args.assert_events_per_sec is not None
        and payload["events_per_sec"] < args.assert_events_per_sec
    ):
        raise SystemExit(
            f"throughput {payload['events_per_sec']} events/sec is below "
            f"the {args.assert_events_per_sec:.0f} floor"
        )


if __name__ == "__main__":
    main()
