"""Perf benchmark: live ingestion throughput (§ repro.live).

Replays a synthesized event stream through the full threaded pipeline
(injector -> ring -> windowed skew tracker + sketches -> policy engine)
at maximum rate, records sustained events/sec and decision latency in
``BENCH_live.json``, and re-derives the offline reference to assert the
online windowed statistics matched it **exactly** — a benchmark run that
loses parity is a failure, not a slow result.

Run directly::

    PYTHONPATH=src python benchmarks/bench_live.py --duration 30

or as a pytest smoke check (short replay, parity + floor only)::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_live.py -q
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.live import (
    LiveConfig,
    build_pipeline,
    offline_window_stats,
    run_live,
)

try:
    from benchmarks.perf_common import merge_results
except ImportError:  # executed as a script from inside benchmarks/
    from perf_common import merge_results

#: Live results live next to the other BENCH artifacts, at the repo root.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_live.json"


def run_live_benchmark(
    scale: str = "small",
    duration: int = 30,
    window: int = 5,
    seed: int = 7,
    batch_events: int = 4096,
) -> dict:
    """One max-rate replay; returns the results payload."""
    config = LiveConfig(
        scale=scale,
        seed=seed,
        duration_seconds=duration,
        window_seconds=window,
        batch_events=batch_events,
        rate=None,  # as fast as possible: this is the throughput figure
    )
    report = run_live(config)

    # Parity against the offline reference on the identical stream: the
    # correctness anchor rides along with every benchmark run.
    pipeline = build_pipeline(config)
    offline = offline_window_stats(
        pipeline.injector.events,
        pipeline.tracker.num_vds,
        pipeline.tracker.total_seconds,
        window,
    )
    matches = [w.to_dict() for w in report.windows] == [
        c.stats.to_dict() for c in offline
    ]

    return {
        "config": config.to_dict(),
        "events": report.events,
        "batches": report.batches,
        "events_dropped": report.events_dropped,
        "wall_seconds": round(report.wall_seconds, 4),
        "events_per_sec": round(report.events_per_sec),
        "windows_closed": len(report.windows),
        "decisions": len(report.decisions),
        "decision_latency_max_us": report.decision_latency_max_us,
        "top_segments": len(report.top_segments),
        "ring_stats": report.ring_stats,
        "matches_offline": bool(matches),
    }


def measure_telemetry_overhead(
    scale: str = "small",
    duration: int = 30,
    window: int = 5,
    seed: int = 7,
    batch_events: int = 4096,
    repeats: int = 3,
    loops: int = 20,
) -> dict:
    """Throughput cost of the full observability plane, in percent.

    Replays the identical stream ``repeats`` times with the plane off and
    ``repeats`` times with everything on — metrics, flight recorder,
    SLO tracking, and a live ``/metrics`` server — and compares the best
    sustained events/sec of each arm (best-of-N cancels scheduler noise;
    the plane cannot make the pipeline *faster*).  Each replay loops the
    stream ``loops`` times so the plane's fixed startup cost (server
    bind, recorder thread) is amortised the way a long-lived serving
    loop amortises it, and the steady-state per-event cost dominates.
    """
    from repro.obs import telemetry_session

    config = LiveConfig(
        scale=scale,
        seed=seed,
        duration_seconds=duration,
        window_seconds=window,
        batch_events=batch_events,
        rate=None,
        loops=loops,
    )
    plane_config = LiveConfig(
        scale=scale,
        seed=seed,
        duration_seconds=duration,
        window_seconds=window,
        batch_events=batch_events,
        rate=None,
        loops=loops,
        serve=("127.0.0.1", 0),
        recorder_interval=0.25,
        slos=(
            "live.decision_latency_us:p99<60000000",
            "live.events_dropped/live.events_total<0.9",
        ),
    )

    baseline = 0.0
    for _ in range(repeats):
        baseline = max(baseline, run_live(config).events_per_sec)
    plane = 0.0
    for _ in range(repeats):
        with telemetry_session(seed=seed):
            plane = max(plane, run_live(plane_config).events_per_sec)

    overhead_pct = max(0.0, (baseline - plane) / baseline * 100.0)
    return {
        "baseline_events_per_sec": round(baseline),
        "plane_events_per_sec": round(plane),
        "overhead_pct": round(overhead_pct, 2),
        "repeats": repeats,
    }


# -- pytest smoke (short replay, parity + floor only) ------------------------


def test_live_throughput_smoke(tmp_path):
    payload = run_live_benchmark(duration=10)
    assert payload["matches_offline"]
    assert payload["events_dropped"] == 0
    assert payload["events"] > 0
    # The acceptance floor: the small-scale replay sustains >= 100k
    # events/sec end to end (threads, ring hops, and policy included).
    assert payload["events_per_sec"] >= 100_000
    merge_results("live", payload, tmp_path / "BENCH_live.json")
    assert (tmp_path / "BENCH_live.json").exists()


def test_telemetry_overhead_smoke():
    overhead = measure_telemetry_overhead(duration=10, repeats=1, loops=2)
    assert overhead["baseline_events_per_sec"] > 0
    assert overhead["plane_events_per_sec"] > 0
    # A smoke-length replay is too short for a tight bound; the real
    # margin is asserted by the CI benchmark job via
    # --assert-telemetry-overhead.
    assert overhead["overhead_pct"] < 100.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small")
    parser.add_argument("--duration", type=int, default=30)
    parser.add_argument("--window", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--batch-events", type=int, default=4096)
    parser.add_argument(
        "--assert-events-per-sec", type=float, default=None,
        help="fail (exit 1) when sustained events/sec lands below this",
    )
    parser.add_argument(
        "--assert-telemetry-overhead", type=float, default=None,
        metavar="PCT",
        help="also measure the observability plane's throughput cost and "
        "fail (exit 1) when it exceeds PCT percent",
    )
    args = parser.parse_args()

    payload = run_live_benchmark(
        scale=args.scale,
        duration=args.duration,
        window=args.window,
        seed=args.seed,
        batch_events=args.batch_events,
    )
    if args.assert_telemetry_overhead is not None:
        payload["telemetry_overhead"] = measure_telemetry_overhead(
            scale=args.scale,
            duration=args.duration,
            window=args.window,
            seed=args.seed,
            batch_events=args.batch_events,
        )
    merge_results("live", payload, RESULTS_PATH)
    print(
        f"live[{args.scale}]: {payload['events']} events in "
        f"{payload['wall_seconds']}s wall "
        f"({payload['events_per_sec']} events/sec), "
        f"{payload['windows_closed']} windows, "
        f"{payload['decisions']} decisions, "
        f"max decision latency {payload['decision_latency_max_us']}us, "
        f"matches_offline={payload['matches_offline']}"
    )
    overhead = payload.get("telemetry_overhead")
    if overhead is not None:
        print(
            f"telemetry overhead: {overhead['overhead_pct']}% "
            f"({overhead['baseline_events_per_sec']} -> "
            f"{overhead['plane_events_per_sec']} events/sec with the "
            f"full plane on, best of {overhead['repeats']})"
        )
    if not payload["matches_offline"]:
        raise SystemExit("online windowed stats diverged from offline")
    if (
        args.assert_events_per_sec is not None
        and payload["events_per_sec"] < args.assert_events_per_sec
    ):
        raise SystemExit(
            f"throughput {payload['events_per_sec']} events/sec is below "
            f"the {args.assert_events_per_sec:.0f} floor"
        )
    if (
        args.assert_telemetry_overhead is not None
        and overhead["overhead_pct"] > args.assert_telemetry_overhead
    ):
        raise SystemExit(
            f"observability plane costs {overhead['overhead_pct']}% "
            f"throughput, above the "
            f"{args.assert_telemetry_overhead:g}% ceiling"
        )


if __name__ == "__main__":
    main()
