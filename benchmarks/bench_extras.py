"""Regenerates the supplementary experiments (latency, IO mix, GC, dispatch)."""

from benchmarks.conftest import run_and_print


def test_extra_latency(benchmark, study):
    result = run_and_print(benchmark, study, "extra_latency")
    by_key = {(row[0], row[1]): row[2] for row in result.rows}
    # Shape: reads pay more at the ChunkServer (media read); write backend
    # includes the replication round, so for same-size IOs it exceeds the
    # read backend — but reads can be larger, so only the CS claim is
    # size-robust.
    assert by_key[("read", "chunk_server")] > by_key[("write", "chunk_server")]


def test_extra_iostats(benchmark, study):
    result = run_and_print(benchmark, study, "extra_iostats")
    cvs = [
        row[2] for row in result.rows if row[1] == "inter-arrival CV"
    ]
    # Shape: burstier than Poisson.
    assert cvs and min(cvs) > 1.0


def test_extra_gc(benchmark, study):
    result = run_and_print(benchmark, study, "extra_gc", rounds=1)
    amplifications = result.column("write amplification")
    assert all(wa >= 1.0 for wa in amplifications)


def test_extra_dispatch(benchmark, study):
    result = run_and_print(benchmark, study, "extra_dispatch", rounds=1)
    by_policy = {row[0]: row[1] for row in result.rows}
    assert by_policy["round_robin"] < by_policy["hash_qp"]
