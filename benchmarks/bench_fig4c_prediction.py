"""Regenerates Figure 4(c): traffic-prediction accuracy (Appendix C)."""

from benchmarks.conftest import run_and_print


def test_fig4c_prediction(benchmark, study):
    result = run_and_print(benchmark, study, "fig4c", rounds=1)
    mse = dict(zip(result.column("predictor"), result.column("MSE")))
    assert set(mse) == {
        "P1_linear",
        "P2_arima",
        "P3_gbt",
        "P4_attention_epoch",
        "P5_attention_period",
    }
    # Shape: ARIMA beats the linear fit among the classic statistical
    # methods (the paper's P2 < P1 ordering).
    assert mse["P2_arima"] <= mse["P1_linear"] * 1.25
