"""Regenerates Figure 5: balanced write but skewed read (§6.2)."""

from benchmarks.conftest import run_and_print


def test_fig5a_read_write_cov(benchmark, study):
    result = run_and_print(benchmark, study, "fig5a")
    assert len(result.rows) == len(study.config.dc_configs)


def test_fig5b_segment_wr_ratio(benchmark, study):
    result = run_and_print(benchmark, study, "fig5b")
    medians = result.column("median |wr_ratio|")
    # Shape: hot segments are strongly direction-dominant (paper: 85.2%
    # of clusters have a median above 0.9).
    assert max(medians) > 0.9


def test_fig5c_write_then_read(benchmark, study):
    result = run_and_print(benchmark, study, "fig5c", rounds=1)
    by_mode = {row[0]: (row[1], row[2]) for row in result.rows}
    read_wo, write_wo = by_mode["write_only"]
    read_wtr, write_wtr = by_mode["write_then_read"]
    # Shape: adding the read pass reduces read skew without making write
    # skew worse (Fig 5c).
    assert read_wtr <= read_wo + 0.05
    assert write_wtr <= write_wo + 0.05
