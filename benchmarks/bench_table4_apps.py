"""Regenerates Table 4: per-application skewness and traffic share."""

from benchmarks.conftest import run_and_print


def test_table4_applications(benchmark, study):
    result = run_and_print(benchmark, study, "table4")
    assert result.rows
    shares = result.column("share W (%)")
    assert sum(shares) <= 100.0 + 1e-6
