"""Regenerates Figure 3: throttling and limited lending (§5)."""

from benchmarks.conftest import run_and_print


def test_fig3a_case(benchmark, study):
    result = run_and_print(benchmark, study, "fig3a")
    assert result.rows


def test_fig3b_rar(benchmark, study):
    result = run_and_print(benchmark, study, "fig3b")
    medians = result.column("median RAR %")
    # Shape: plenty of available resource during throttle (paper medians
    # 61.6% / 74.7% for multi-VD VMs).
    assert max(medians) > 30.0


def test_fig3c_wr_ratio(benchmark, study):
    result = run_and_print(benchmark, study, "fig3c")
    for row in result.rows:
        write_dom, mixed, read_dom = row[1], row[2], row[3]
        # Shape: write traffic is the main throttle contributor and mixed
        # traffic is rare (paper: 11.7% / 6.9%).
        assert write_dom > read_dom
        assert mixed < 35.0


def test_fig3de_reduction(benchmark, study):
    result = run_and_print(benchmark, study, "fig3de")
    # Shape: the reduction rate falls monotonically in p per group/resource.
    series = {}
    for group, resource, p, rr in result.rows:
        series.setdefault((group, resource), []).append((p, rr))
    for points in series.values():
        points.sort()
        values = [rr for __, rr in points]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_fig3fg_lending(benchmark, study):
    result = run_and_print(benchmark, study, "fig3fg", rounds=1)
    positive = result.column("% positive")
    # Shape: lending yields positive gains for the majority of groups
    # (paper: 85.9% at p=0.8).
    assert max(positive) > 50.0
