"""Perf trend table: committed baselines vs freshly measured candidates.

Where ``perf_gate.py`` *fails* CI on regressions, this tool *narrates*:
it renders one before/after markdown table covering the three headline
throughput figures —

- pass-1 simulation (``simulator_pass1.fleet_seconds_per_second_fast``
  from ``BENCH_simulator.json``),
- cache replay (``cache_replay.ios_per_second_fast``, same artifact),
- the live ingestion plane (``live.events_per_sec`` from
  ``BENCH_live.json``)

— against the committed ``benchmarks/BENCH_baseline.json`` /
``benchmarks/BENCH_live_baseline.json``, including each metric's
raw-speed target and attainment when the artifact records them
(schema v3).  CI's ``perf-trend`` job appends the output to
``$GITHUB_STEP_SUMMARY`` and uploads the raw JSON artifacts.

Stdlib-only on purpose (like ``perf_gate.py``) so CI can run it without
installing the package.  Missing artifacts render as ``n/a`` rows rather
than failing — the trend is informational; the gate is the enforcer.
Exit codes: 0 rendered (even with n/a rows), 2 malformed JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
DEFAULT_LIVE_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_live_baseline.json"
DEFAULT_CANDIDATE = REPO_ROOT / "BENCH_simulator.json"
DEFAULT_LIVE_CANDIDATE = REPO_ROOT / "BENCH_live.json"


@dataclass(frozen=True)
class Trend:
    """One headline throughput figure tracked across runs."""

    label: str
    artifact: str  # "simulator" | "live"
    section: str
    metric: str
    unit: str


TRENDS = (
    Trend(
        "pass-1 simulation", "simulator", "simulator_pass1",
        "fleet_seconds_per_second_fast", "fleet-seconds/s",
    ),
    Trend(
        "cache replay", "simulator", "cache_replay",
        "ios_per_second_fast", "IOs/s",
    ),
    Trend("live ingestion", "live", "live", "events_per_sec", "events/s"),
)


def _load(path: Path) -> "Optional[Dict[str, Any]]":
    """Parse one artifact; ``None`` when absent, SystemExit(2) when bad."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"perf-trend: {path} is not JSON: {exc}")
    return payload if isinstance(payload, dict) else None


def _metric(payload: "Optional[Dict[str, Any]]", trend: Trend):
    if payload is None:
        return None
    section = payload.get(trend.section)
    if not isinstance(section, dict):
        return None
    value = section.get(trend.metric)
    return value if isinstance(value, (int, float)) else None


def _target(payload: "Optional[Dict[str, Any]]", trend: Trend):
    if payload is None:
        return None
    section = payload.get(trend.section)
    if not isinstance(section, dict):
        return None
    target = section.get("target")
    if (
        isinstance(target, dict)
        and isinstance(target.get("value"), (int, float))
        and isinstance(target.get("attainment"), (int, float))
    ):
        return target
    return None


def render(
    simulator_baseline: "Optional[Dict[str, Any]]",
    simulator_candidate: "Optional[Dict[str, Any]]",
    live_baseline: "Optional[Dict[str, Any]]",
    live_candidate: "Optional[Dict[str, Any]]",
) -> str:
    """The before/after markdown table for the three headline figures."""
    artifacts = {
        "simulator": (simulator_baseline, simulator_candidate),
        "live": (live_baseline, live_candidate),
    }
    lines = [
        "### Perf trend",
        "",
        "| metric | before | after | delta | target | attainment |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for trend in TRENDS:
        baseline, candidate = artifacts[trend.artifact]
        before = _metric(baseline, trend)
        after = _metric(candidate, trend)
        target = _target(candidate, trend)
        delta = (
            f"{after / before - 1.0:+.1%}"
            if before and after is not None
            else "n/a"
        )
        lines.append(
            "| {label} ({unit}) | {before} | {after} | {delta} "
            "| {tval} | {attain} |".format(
                label=trend.label,
                unit=trend.unit,
                before=f"{before:,.0f}" if before is not None else "n/a",
                after=f"{after:,.0f}" if after is not None else "n/a",
                delta=delta,
                tval=(
                    f"{target['value']:,.0f}" if target is not None else "—"
                ),
                attain=(
                    f"{target['attainment']:.1%}"
                    if target is not None
                    else "—"
                ),
            )
        )
    lines.append("")
    return "\n".join(lines) + "\n"


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed simulator baseline artifact",
    )
    parser.add_argument(
        "--candidate", type=Path, default=DEFAULT_CANDIDATE,
        help="freshly generated BENCH_simulator.json",
    )
    parser.add_argument(
        "--live-baseline", type=Path, default=DEFAULT_LIVE_BASELINE,
        help="committed live-plane baseline artifact",
    )
    parser.add_argument(
        "--live-candidate", type=Path, default=DEFAULT_LIVE_CANDIDATE,
        help="freshly generated BENCH_live.json",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="append the table to FILE (CI: $GITHUB_STEP_SUMMARY); "
        "always printed to stdout too",
    )
    args = parser.parse_args(argv)
    table = render(
        _load(args.baseline),
        _load(args.candidate),
        _load(args.live_baseline),
        _load(args.live_candidate),
    )
    sys.stdout.write(table)
    if args.output is not None:
        with open(args.output, "a") as fh:
            fh.write(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
