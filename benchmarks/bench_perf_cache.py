"""Perf benchmark: array-based cache replay vs the scalar reference (§7).

Replays every eligible VD's trace through the three paper cache policies
(FIFO / LRU / frozen) at the three paper cache sizes (64 MiB / 512 MiB /
2 GiB), once through the scalar :func:`repro.cache.simulate.replay_trace`
reference (one :meth:`Cache.access` call per IO) and once through the
shared-preparation fast path (:func:`repro.cache.fastreplay.replay_many`).
Hit ratios must match **exactly**; the timings and throughput go into
``BENCH_simulator.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_cache.py --scale medium

or as a pytest smoke check (tiny scale, parity only)::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_perf_cache.py -q
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.cache.fastreplay import (
    pages_in_time_order,
    prepare_pages,
    replay_many,
)
from repro.cache.fifo import FifoCache
from repro.cache.frozen import FrozenCache
from repro.cache.hotspot import hottest_block
from repro.cache.lru import LruCache
from repro.cache.simulate import PAGE_BYTES, replay_trace
from repro.core.config import StudyConfig
from repro.obs.runtime import (
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    set_telemetry,
)
from repro.obs.spans import Tracer, stage_summary

try:
    from benchmarks.perf_common import SCALES, merge_results, simulate_fleet
except ImportError:  # executed as a script from inside benchmarks/
    from perf_common import SCALES, merge_results, simulate_fleet

#: A VD participates once it has this many traced IOs (the study proper
#: uses a stricter cutoff for *statistics*; for replay timing a shorter
#: stream is still a valid workload).
MIN_TRACED_IOS = 64


def _policy_caches(block, block_bytes: int):
    capacity_pages = max(1, block_bytes // PAGE_BYTES)
    return {
        "fifo": FifoCache(capacity_pages),
        "lru": LruCache(capacity_pages),
        "frozen": FrozenCache.for_byte_range(
            block.start_byte, block.block_bytes, PAGE_BYTES
        ),
    }


def run_cache_benchmark(scale_name: str, seed: int = 7) -> dict:
    """Benchmark cache replay at one scale; returns the results payload.

    Three timed variants, as in the simulator benchmark: the scalar
    reference, the fast path with telemetry *disabled* (the production
    mode whose time is the perf-trajectory number), and the fast path
    with telemetry *enabled* (captures the ``cache.replay.*`` /
    ``cache.prepared.*`` counters and the enabled-mode overhead).  A
    local tracer wraps each timed phase so ``BENCH_simulator.json``
    carries its own span timings.
    """
    scale = SCALES[scale_name]
    block_sizes = StudyConfig().cache_block_bytes
    tracer = Tracer()
    with tracer.span("bench.cache.build", scale=scale_name):
        fleet, result = simulate_fleet(scale, seed)

    ids, counts = np.unique(result.traces.vd_id, return_counts=True)
    eligible = [
        int(vd) for vd, count in zip(ids, counts) if count >= MIN_TRACED_IOS
    ]

    # Shared inputs (identical for all paths): each eligible VD's trace
    # slice and the frozen cache's anchor block per size.  No path's
    # timing includes this preparation.
    workload = []
    with tracer.span("bench.cache.prepare", scale=scale_name):
        for vd_id in eligible:
            vd_traces = result.traces.for_vd(vd_id)
            capacity_bytes = fleet.vds[vd_id].capacity_bytes
            blocks = {
                block_bytes: hottest_block(
                    result.traces, vd_id, block_bytes, capacity_bytes,
                    vd_traces=vd_traces,
                )
                for block_bytes in block_sizes
            }
            workload.append((vd_traces, blocks))

    def run_scalar() -> list:
        return [
            {
                block_bytes: {
                    name: replay_trace(cache, vd_traces)
                    for name, cache in _policy_caches(
                        blocks[block_bytes], block_bytes
                    ).items()
                }
                for block_bytes in block_sizes
            }
            for vd_traces, blocks in workload
        ]

    def run_fast() -> list:
        out = []
        for vd_traces, blocks in workload:
            prepared = prepare_pages(pages_in_time_order(vd_traces))
            out.append(
                {
                    block_bytes: replay_many(
                        _policy_caches(blocks[block_bytes], block_bytes),
                        vd_traces,
                        prepared,
                    )
                    for block_bytes in block_sizes
                }
            )
        return out

    with tracer.span("bench.cache.scalar", scale=scale_name):
        start = time.perf_counter()
        slow_results = run_scalar()
        slow_seconds = time.perf_counter() - start

    with tracer.span("bench.cache.fast", scale=scale_name):
        start = time.perf_counter()
        fast_results = run_fast()
        fast_seconds = time.perf_counter() - start

    # Enabled-mode pass: install a real telemetry handle so the replay
    # hooks in repro.cache.fastreplay record their counters, and time
    # the same work again.
    telemetry = Telemetry(enabled=True, seed=seed)
    previous = set_telemetry(telemetry)
    try:
        with tracer.span("bench.cache.fast_telemetry", scale=scale_name):
            start = time.perf_counter()
            run_fast()
            enabled_seconds = time.perf_counter() - start
    finally:
        set_telemetry(previous)

    replayed_ios = (
        sum(len(vd_traces) for vd_traces, _ in workload)
        * len(block_sizes)
        * 3
    )
    mismatches = 0
    for slow, fast in zip(slow_results, fast_results):
        for block_bytes in block_sizes:
            for name in slow[block_bytes]:
                if slow[block_bytes][name] != fast[block_bytes][name]:
                    mismatches += 1

    return {
        "scale": scale_name,
        "fleet": scale.describe(),
        "trace_sampling_rate": scale.simulation_config().trace_sampling_rate,
        "eligible_vds": len(eligible),
        "min_traced_ios": MIN_TRACED_IOS,
        "block_bytes": list(block_sizes),
        "policies": ["fifo", "lru", "frozen"],
        "replayed_ios": replayed_ios,
        "scalar_seconds": round(slow_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "fast_seconds_telemetry": round(enabled_seconds, 4),
        "telemetry_overhead_pct": round(
            100.0 * (enabled_seconds / fast_seconds - 1.0), 1
        ),
        "speedup": round(slow_seconds / fast_seconds, 2),
        "ios_per_second_fast": round(replayed_ios / fast_seconds),
        "ios_per_second_scalar": round(replayed_ios / slow_seconds),
        "hit_ratio_mismatches": mismatches,
        "hit_ratio_parity": mismatches == 0,
        "telemetry": {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "stages": stage_summary(tracer.snapshot()),
            "enabled_run_counters": telemetry.registry.snapshot()[
                "counters"
            ],
        },
    }


# -- pytest smoke (tiny scale, correctness only) -----------------------------


def test_cache_replay_fast_matches_scalar_smoke():
    payload = run_cache_benchmark("tiny")
    assert payload["hit_ratio_parity"]
    assert payload["eligible_vds"] > 0
    assert payload["fast_seconds"] > 0.0
    stages = {s["name"] for s in payload["telemetry"]["stages"]}
    assert {"bench.cache.scalar", "bench.cache.fast"} <= stages
    # The enabled-mode run must have recorded the fast-replay counters.
    counters = {
        c["name"] for c in payload["telemetry"]["enabled_run_counters"]
    }
    assert "cache.replay.fast" in counters
    # The bench pre-builds PreparedPages once per VD and shares it across
    # the three cache sizes, so the replay hook sees reuse, not builds.
    assert "cache.prepared.reuse" in counters


# -- CLI ---------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="medium",
        help="benchmark fleet size (default: medium)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without updating BENCH_simulator.json",
    )
    parser.add_argument(
        "--assert-telemetry-overhead", type=float, default=None,
        metavar="PCT",
        help="exit non-zero if enabled-mode telemetry slows the fast path "
        "by more than PCT percent (CI guard; disabled-mode overhead is "
        "the fast_seconds trajectory itself)",
    )
    args = parser.parse_args()

    payload = run_cache_benchmark(args.scale, args.seed)
    print(
        f"cache replay [{args.scale}]: scalar {payload['scalar_seconds']}s, "
        f"fast {payload['fast_seconds']}s -> {payload['speedup']}x over "
        f"{payload['eligible_vds']} VDs / {payload['replayed_ios']:,} "
        f"replayed IOs, telemetry-enabled "
        f"{payload['fast_seconds_telemetry']}s "
        f"({payload['telemetry_overhead_pct']:+.1f}%), "
        f"parity={payload['hit_ratio_parity']}, "
        f"{payload['ios_per_second_fast']:,} IOs/s"
    )
    if not payload["hit_ratio_parity"]:
        raise SystemExit("FAIL: fast replay diverged from the scalar path")
    if (
        args.assert_telemetry_overhead is not None
        and payload["telemetry_overhead_pct"] > args.assert_telemetry_overhead
    ):
        raise SystemExit(
            f"FAIL: telemetry overhead {payload['telemetry_overhead_pct']}% "
            f"exceeds the {args.assert_telemetry_overhead}% budget"
        )
    if not args.no_write:
        merge_results("cache_replay", payload)


if __name__ == "__main__":
    main()
