"""Perf benchmark: array-based cache replay vs the scalar reference (§7).

Replays every eligible VD's trace through the three paper cache policies
(FIFO / LRU / frozen) at the three paper cache sizes (64 MiB / 512 MiB /
2 GiB), once through the scalar :func:`repro.cache.simulate.replay_trace`
reference (one :meth:`Cache.access` call per IO) and once through the
shared-preparation fast path (:func:`repro.cache.fastreplay.replay_many`).
Hit ratios must match **exactly**; the timings and throughput go into
``BENCH_simulator.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_cache.py --scale medium

or as a pytest smoke check (tiny scale, parity only)::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_perf_cache.py -q
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.cache.fastreplay import (
    pages_in_time_order,
    prepare_pages,
    replay_many,
)
from repro.cache.fifo import FifoCache
from repro.cache.frozen import FrozenCache
from repro.cache.hotspot import hottest_block
from repro.cache.lru import LruCache
from repro.cache.simulate import PAGE_BYTES, replay_trace
from repro.core.config import StudyConfig

try:
    from benchmarks.perf_common import SCALES, merge_results, simulate_fleet
except ImportError:  # executed as a script from inside benchmarks/
    from perf_common import SCALES, merge_results, simulate_fleet

#: A VD participates once it has this many traced IOs (the study proper
#: uses a stricter cutoff for *statistics*; for replay timing a shorter
#: stream is still a valid workload).
MIN_TRACED_IOS = 64


def _policy_caches(block, block_bytes: int):
    capacity_pages = max(1, block_bytes // PAGE_BYTES)
    return {
        "fifo": FifoCache(capacity_pages),
        "lru": LruCache(capacity_pages),
        "frozen": FrozenCache.for_byte_range(
            block.start_byte, block.block_bytes, PAGE_BYTES
        ),
    }


def run_cache_benchmark(scale_name: str, seed: int = 7) -> dict:
    """Benchmark cache replay at one scale; returns the results payload."""
    scale = SCALES[scale_name]
    block_sizes = StudyConfig().cache_block_bytes
    fleet, result = simulate_fleet(scale, seed)

    ids, counts = np.unique(result.traces.vd_id, return_counts=True)
    eligible = [
        int(vd) for vd, count in zip(ids, counts) if count >= MIN_TRACED_IOS
    ]

    slow_seconds = 0.0
    fast_seconds = 0.0
    replayed_ios = 0
    mismatches = 0
    for vd_id in eligible:
        vd_traces = result.traces.for_vd(vd_id)
        capacity_bytes = fleet.vds[vd_id].capacity_bytes
        # Shared inputs (identical for both paths): the frozen cache's
        # anchor block per size.  Neither path's timing includes this.
        blocks = {
            block_bytes: hottest_block(
                result.traces, vd_id, block_bytes, capacity_bytes,
                vd_traces=vd_traces,
            )
            for block_bytes in block_sizes
        }

        start = time.perf_counter()
        slow = {
            block_bytes: {
                name: replay_trace(cache, vd_traces)
                for name, cache in _policy_caches(
                    blocks[block_bytes], block_bytes
                ).items()
            }
            for block_bytes in block_sizes
        }
        mid = time.perf_counter()
        prepared = prepare_pages(pages_in_time_order(vd_traces))
        fast = {
            block_bytes: replay_many(
                _policy_caches(blocks[block_bytes], block_bytes),
                vd_traces,
                prepared,
            )
            for block_bytes in block_sizes
        }
        end = time.perf_counter()

        slow_seconds += mid - start
        fast_seconds += end - mid
        replayed_ios += len(vd_traces) * len(block_sizes) * 3
        for block_bytes in block_sizes:
            for name in slow[block_bytes]:
                if slow[block_bytes][name] != fast[block_bytes][name]:
                    mismatches += 1

    return {
        "scale": scale_name,
        "fleet": scale.describe(),
        "trace_sampling_rate": scale.simulation_config().trace_sampling_rate,
        "eligible_vds": len(eligible),
        "min_traced_ios": MIN_TRACED_IOS,
        "block_bytes": list(block_sizes),
        "policies": ["fifo", "lru", "frozen"],
        "replayed_ios": replayed_ios,
        "scalar_seconds": round(slow_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(slow_seconds / fast_seconds, 2),
        "ios_per_second_fast": round(replayed_ios / fast_seconds),
        "ios_per_second_scalar": round(replayed_ios / slow_seconds),
        "hit_ratio_mismatches": mismatches,
        "hit_ratio_parity": mismatches == 0,
    }


# -- pytest smoke (tiny scale, correctness only) -----------------------------


def test_cache_replay_fast_matches_scalar_smoke():
    payload = run_cache_benchmark("tiny")
    assert payload["hit_ratio_parity"]
    assert payload["eligible_vds"] > 0
    assert payload["fast_seconds"] > 0.0


# -- CLI ---------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="medium",
        help="benchmark fleet size (default: medium)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without updating BENCH_simulator.json",
    )
    args = parser.parse_args()

    payload = run_cache_benchmark(args.scale, args.seed)
    print(
        f"cache replay [{args.scale}]: scalar {payload['scalar_seconds']}s, "
        f"fast {payload['fast_seconds']}s -> {payload['speedup']}x over "
        f"{payload['eligible_vds']} VDs / {payload['replayed_ios']:,} "
        f"replayed IOs, parity={payload['hit_ratio_parity']}, "
        f"{payload['ios_per_second_fast']:,} IOs/s"
    )
    if not payload["hit_ratio_parity"]:
        raise SystemExit("FAIL: fast replay diverged from the scalar path")
    if not args.no_write:
        merge_results("cache_replay", payload)


if __name__ == "__main__":
    main()
