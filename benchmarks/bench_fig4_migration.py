"""Regenerates Figure 4(a)/(b): segment-migration behaviour (§6.1)."""

from benchmarks.conftest import run_and_print


def test_fig4a_frequent_migrations(benchmark, study):
    result = run_and_print(benchmark, study, "fig4a", rounds=1)
    assert result.rows
    proportions = result.column("% frequent")
    assert all(0.0 <= p <= 100.0 for p in proportions)


def test_fig4b_importer_strategies(benchmark, study):
    result = run_and_print(benchmark, study, "fig4b", rounds=1)
    means = dict(
        zip(result.column("strategy"), result.column("mean interval"))
    )
    assert set(means) == {
        "random", "min_traffic", "min_variance", "lunule", "ideal"
    }
    # Shape: the oracle importer keeps placements valid at least as long
    # as the production min-traffic heuristic (paper: 2.0x median);
    # at simulation scale the separation shows on the mean interval.
    if means["ideal"] == means["ideal"]:  # not NaN
        assert means["ideal"] >= means["min_traffic"] * 0.9
