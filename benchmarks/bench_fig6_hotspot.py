"""Regenerates Figure 6: LBA hotspot structure (§7.1, §7.2)."""

from benchmarks.conftest import run_and_print


def test_fig6a_access_rate(benchmark, study):
    result = run_and_print(benchmark, study, "fig6a")
    assert result.rows
    rates = result.column("median rate %")
    # Shape: the access rate grows with block size (Fig 6a).
    assert rates == sorted(rates)


def test_fig6b_lba_share(benchmark, study):
    result = run_and_print(benchmark, study, "fig6b")
    # Shape: the hottest block's access rate dwarfs its LBA share.
    access = study.run("fig6a").column("median rate %")
    share = result.column("median share of LBA %")
    for rate, lba in zip(access, share):
        assert rate > lba


def test_fig6c_write_dominance(benchmark, study):
    result = run_and_print(benchmark, study, "fig6c")
    for row in result.rows:
        write_dom, read_dom = row[1], row[2]
        # Shape: hottest blocks are mostly write-dominant (paper: 93.9%).
        assert write_dom > read_dom


def test_fig6d_hot_rate(benchmark, study):
    result = run_and_print(benchmark, study, "fig6d")
    for row in result.rows:
        mean_rate = row[1]
        # Shape: hot rate centers around ~50% (Fig 6d).
        assert 25.0 < mean_rate < 75.0
