"""Regenerates Table 3: CCR and P2A per DC and aggregation level."""

from benchmarks.conftest import run_and_print


def test_table3_baseline(benchmark, study):
    result = run_and_print(benchmark, study, "table3")
    # Every DC contributes all four aggregation levels in both directions.
    num_dcs = len(study.config.dc_configs)
    assert len(result.rows) == num_dcs * 4 * 2

    # Shape: the storage-node level is flatter than the VM level (the
    # segment stripe spreads load), per DC and direction.
    by_key = {
        (row[0], row[1], row[2]): row[4] for row in result.rows
    }
    for dc in range(num_dcs):
        for direction in ("read", "write"):
            vm = by_key[(f"DC-{dc + 1}", "VM", direction)]
            sn = by_key[(f"DC-{dc + 1}", "SN", direction)]
            assert sn <= vm + 1e-9
