"""Ablations of the §7 cache design choices.

- hybrid CN/BS split sweep: how the latency gain moves as the CN tier
  grows from 0% (pure BS-cache) to 100% (pure CN-cache);
- cacheable-VD threshold sweep: how the access-rate threshold trades
  covered traffic against provisioned nodes.
"""

import numpy as np

from repro.cache import (
    CachePlacementConfig,
    HybridCacheConfig,
    cacheable_vd_counts,
    latency_gain_hybrid,
)
from repro.cache.placement import find_cacheable_blocks
from repro.cluster import LatencyModel
from repro.util.units import MiB


def test_ablation_hybrid_split(benchmark, study):
    def run():
        model = LatencyModel()
        placement = CachePlacementConfig(block_bytes=2048 * MiB)
        rows = []
        for cn_fraction in (0.0, 0.25, 0.5, 1.0):
            config = HybridCacheConfig(
                placement=placement, cn_fraction=cn_fraction
            )
            gains = []
            for result in study.results:
                gain = latency_gain_hybrid(
                    result.traces,
                    result.fleet,
                    model,
                    study.rngs.get(f"abl-hybrid/{cn_fraction}"),
                    config,
                    direction="write",
                )
                if gain is not None:
                    gains.append(gain[50.0])
            rows.append(
                (cn_fraction, float(np.mean(gains)) if gains else float("nan"))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'CN fraction':>11} {'p50 write gain':>14}")
    for fraction, gain in rows:
        print(f"{fraction:>11.2f} {100 * gain:>13.1f}%")
    gains = [g for __, g in rows if g == g]
    # Shape: more CN tier -> better (lower) median write gain.
    assert gains[-1] <= gains[0] + 0.02


def test_ablation_cacheable_threshold(benchmark, study):
    def run():
        rows = []
        for threshold in (0.1, 0.25, 0.5):
            config = CachePlacementConfig(
                block_bytes=2048 * MiB, access_rate_threshold=threshold
            )
            cacheable = 0
            cn_counts = []
            for result in study.results:
                cacheable += len(
                    find_cacheable_blocks(result.traces, result.fleet, config)
                )
                cn_counts.extend(
                    cacheable_vd_counts(
                        result.traces,
                        result.fleet,
                        "compute_node",
                        result.storage.placement.primary_mapping(),
                        config,
                    )
                )
            rows.append((threshold, cacheable, float(np.std(cn_counts))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'threshold':>9} {'cacheable VDs':>13} {'CN spread (std)':>15}")
    for threshold, cacheable, spread in rows:
        print(f"{threshold:>9.2f} {cacheable:>13} {spread:>15.2f}")
    counts = [c for __, c, ___ in rows]
    # A stricter threshold qualifies fewer VDs.
    assert all(a >= b for a, b in zip(counts, counts[1:]))
