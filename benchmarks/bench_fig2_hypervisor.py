"""Regenerates Figure 2: hypervisor load-balancing analyses (§4)."""

from benchmarks.conftest import run_and_print


def test_fig2a_wt_cov(benchmark, study):
    result = run_and_print(benchmark, study, "fig2a")
    assert result.rows


def test_fig2b_decomposition(benchmark, study):
    result = run_and_print(benchmark, study, "fig2b")
    by_key = {(row[0], row[1]): row[2] for row in result.rows}
    # Shape: the write-direction VD->QP split is more skewed than read
    # (Fig 2b, paper medians 0.81 vs 0.39).
    if ("vd2qp", "read") in by_key and ("vd2qp", "write") in by_key:
        assert by_key[("vd2qp", "write")] >= by_key[("vd2qp", "read")] - 0.15


def test_fig2c_hottest_qp(benchmark, study):
    result = run_and_print(benchmark, study, "fig2c")
    assert result.rows


def test_fig2_types(benchmark, study):
    result = run_and_print(benchmark, study, "fig2_types")
    fractions = dict(zip(result.column("type"), result.column("% of nodes")))
    # Shape: Type III (multi-QP hotspot) dominates, as in the paper (78.9%).
    assert fractions["Type III"] == max(fractions.values())


def test_fig2d_rebinding(benchmark, study):
    result = run_and_print(benchmark, study, "fig2d", rounds=1)
    metrics = dict(zip(result.column("metric"), result.column("value")))
    assert metrics["nodes simulated"] > 0


def test_fig2ef_bursts(benchmark, study):
    result = run_and_print(benchmark, study, "fig2ef", rounds=1)
    if result.rows:
        ratio = result.rows[-1][2]
        # Shape: the burstiest node's hottest WT has a much higher P2A
        # than the smoothest node's (paper: 7.7x).
        assert ratio > 2.0
