"""Perf benchmark: vectorized pass 1 vs the scalar reference (§ simulator).

Times :meth:`EBSSimulator.run_pass1` with ``fast=False`` (the audited
per-VD/per-QP reference loops) against ``fast=True`` (the array path) on
a fleet-scale workload, verifies the outputs are **bit-identical** (load
grids, metric-table columns, and column dtypes), and records the numbers
in ``BENCH_simulator.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_simulator.py --scale medium

or as a pytest smoke check (tiny scale, parity only)::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_perf_simulator.py -q
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.obs.runtime import (
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    set_telemetry,
)
from repro.obs.spans import Tracer, stage_summary

try:
    from benchmarks.perf_common import (
        SCALES,
        best_of,
        build_simulation,
        merge_results,
        tables_identical,
    )
except ImportError:  # executed as a script from inside benchmarks/
    from perf_common import (
        SCALES,
        best_of,
        build_simulation,
        merge_results,
        tables_identical,
    )


def run_pass1_benchmark(
    scale_name: str, repeats: int = 3, seed: int = 7
) -> dict:
    """Benchmark pass 1 at one scale; returns the results payload.

    Three timed variants: the scalar reference, the fast path with
    telemetry *disabled* (the default production mode — its time is the
    perf-trajectory number, and the disabled-mode overhead budget of the
    instrumentation hooks is <= 2% against the pre-obs baseline), and the
    fast path with telemetry *enabled*.  A local tracer wraps each timed
    phase so ``BENCH_simulator.json`` carries its own span timings.
    """
    scale = SCALES[scale_name]
    tracer = Tracer()
    with tracer.span("bench.pass1.build", scale=scale_name):
        fleet, sim, traffic, qp_to_wt, seg_to_bs = build_simulation(
            scale, seed
        )

    with tracer.span("bench.pass1.reference", scale=scale_name):
        ref_seconds, ref = best_of(
            lambda: sim.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=False),
            max(1, repeats - 1),
        )
    with tracer.span("bench.pass1.fast", scale=scale_name):
        fast_seconds, fast = best_of(
            lambda: sim.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=True),
            repeats,
        )

    # Enabled-mode pass: install a real telemetry handle so the hooks in
    # run_pass1 record counters/spans, and time the same work again.
    telemetry = Telemetry(enabled=True, seed=seed)
    previous = set_telemetry(telemetry)
    try:
        with tracer.span("bench.pass1.fast_telemetry", scale=scale_name):
            enabled_seconds, _ = best_of(
                lambda: sim.run_pass1(
                    traffic, qp_to_wt, seg_to_bs, fast=True
                ),
                repeats,
            )
    finally:
        set_telemetry(previous)

    identical = (
        np.array_equal(ref[0], fast[0])       # WT load grid
        and np.array_equal(ref[1], fast[1])   # BS load grid
        and tables_identical(ref[2], fast[2])  # compute metric table
        and tables_identical(ref[3], fast[3])  # storage metric table
    )

    num_vds = len(fleet.vds)
    fleet_seconds = num_vds * scale.duration_seconds
    return {
        "scale": scale_name,
        "fleet": scale.describe(),
        "num_vds": num_vds,
        "fleet_seconds": fleet_seconds,
        "reference_seconds": round(ref_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "fast_seconds_telemetry": round(enabled_seconds, 4),
        "telemetry_overhead_pct": round(
            100.0 * (enabled_seconds / fast_seconds - 1.0), 1
        ),
        "speedup": round(ref_seconds / fast_seconds, 2),
        "fleet_seconds_per_second_fast": round(fleet_seconds / fast_seconds),
        "fleet_seconds_per_second_reference": round(
            fleet_seconds / ref_seconds
        ),
        "bit_identical": bool(identical),
        "telemetry": {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "stages": stage_summary(tracer.snapshot()),
            "enabled_run_stages": stage_summary(telemetry.tracer.snapshot()),
        },
    }


# -- pytest smoke (tiny scale, correctness only) -----------------------------


def test_pass1_fast_matches_reference_smoke():
    payload = run_pass1_benchmark("tiny", repeats=1)
    assert payload["bit_identical"]
    assert payload["fast_seconds"] > 0.0
    stages = {s["name"] for s in payload["telemetry"]["stages"]}
    assert {"bench.pass1.reference", "bench.pass1.fast"} <= stages
    # The enabled-mode run must have recorded pass-1 spans of its own.
    enabled = {s["name"] for s in payload["telemetry"]["enabled_run_stages"]}
    assert "sim.pass1" in enabled


# -- CLI ---------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="medium",
        help="benchmark fleet size (default: medium)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="repetitions per path; the best time is kept (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without updating BENCH_simulator.json",
    )
    parser.add_argument(
        "--assert-telemetry-overhead", type=float, default=None,
        metavar="PCT",
        help="exit non-zero if enabled-mode telemetry slows the fast path "
        "by more than PCT percent (CI guard; disabled-mode overhead is "
        "the fast_seconds trajectory itself)",
    )
    args = parser.parse_args()

    payload = run_pass1_benchmark(args.scale, args.repeats, args.seed)
    print(
        f"pass 1 [{args.scale}]: reference {payload['reference_seconds']}s, "
        f"fast {payload['fast_seconds']}s -> {payload['speedup']}x, "
        f"telemetry-enabled {payload['fast_seconds_telemetry']}s "
        f"({payload['telemetry_overhead_pct']:+.1f}%), "
        f"bit_identical={payload['bit_identical']}, "
        f"{payload['fleet_seconds_per_second_fast']:,} fleet-seconds/s"
    )
    if not payload["bit_identical"]:
        raise SystemExit("FAIL: fast pass 1 diverged from the reference")
    if (
        args.assert_telemetry_overhead is not None
        and payload["telemetry_overhead_pct"] > args.assert_telemetry_overhead
    ):
        raise SystemExit(
            f"FAIL: telemetry overhead {payload['telemetry_overhead_pct']}% "
            f"exceeds the {args.assert_telemetry_overhead}% budget"
        )
    if not args.no_write:
        merge_results("simulator_pass1", payload)


if __name__ == "__main__":
    main()
