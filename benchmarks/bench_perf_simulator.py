"""Perf benchmark: vectorized pass 1 vs the scalar reference (§ simulator).

Times :meth:`EBSSimulator.run_pass1` with ``fast=False`` (the audited
per-VD/per-QP reference loops) against ``fast=True`` (the array path) on
a fleet-scale workload, verifies the outputs are **bit-identical** (load
grids, metric-table columns, and column dtypes), and records the numbers
in ``BENCH_simulator.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_simulator.py --scale medium

or as a pytest smoke check (tiny scale, parity only)::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_perf_simulator.py -q
"""

from __future__ import annotations

import argparse

import numpy as np

try:
    from benchmarks.perf_common import (
        SCALES,
        best_of,
        build_simulation,
        merge_results,
        tables_identical,
    )
except ImportError:  # executed as a script from inside benchmarks/
    from perf_common import (
        SCALES,
        best_of,
        build_simulation,
        merge_results,
        tables_identical,
    )


def run_pass1_benchmark(
    scale_name: str, repeats: int = 3, seed: int = 7
) -> dict:
    """Benchmark pass 1 at one scale; returns the results payload."""
    scale = SCALES[scale_name]
    fleet, sim, traffic, qp_to_wt, seg_to_bs = build_simulation(scale, seed)

    ref_seconds, ref = best_of(
        lambda: sim.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=False),
        max(1, repeats - 1),
    )
    fast_seconds, fast = best_of(
        lambda: sim.run_pass1(traffic, qp_to_wt, seg_to_bs, fast=True),
        repeats,
    )

    identical = (
        np.array_equal(ref[0], fast[0])       # WT load grid
        and np.array_equal(ref[1], fast[1])   # BS load grid
        and tables_identical(ref[2], fast[2])  # compute metric table
        and tables_identical(ref[3], fast[3])  # storage metric table
    )

    num_vds = len(fleet.vds)
    fleet_seconds = num_vds * scale.duration_seconds
    return {
        "scale": scale_name,
        "fleet": scale.describe(),
        "num_vds": num_vds,
        "fleet_seconds": fleet_seconds,
        "reference_seconds": round(ref_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(ref_seconds / fast_seconds, 2),
        "fleet_seconds_per_second_fast": round(fleet_seconds / fast_seconds),
        "fleet_seconds_per_second_reference": round(
            fleet_seconds / ref_seconds
        ),
        "bit_identical": bool(identical),
    }


# -- pytest smoke (tiny scale, correctness only) -----------------------------


def test_pass1_fast_matches_reference_smoke():
    payload = run_pass1_benchmark("tiny", repeats=1)
    assert payload["bit_identical"]
    assert payload["fast_seconds"] > 0.0


# -- CLI ---------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="medium",
        help="benchmark fleet size (default: medium)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="repetitions per path; the best time is kept (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without updating BENCH_simulator.json",
    )
    args = parser.parse_args()

    payload = run_pass1_benchmark(args.scale, args.repeats, args.seed)
    print(
        f"pass 1 [{args.scale}]: reference {payload['reference_seconds']}s, "
        f"fast {payload['fast_seconds']}s -> {payload['speedup']}x, "
        f"bit_identical={payload['bit_identical']}, "
        f"{payload['fleet_seconds_per_second_fast']:,} fleet-seconds/s"
    )
    if not payload["bit_identical"]:
        raise SystemExit("FAIL: fast pass 1 diverged from the reference")
    if not args.no_write:
        merge_results("simulator_pass1", payload)


if __name__ == "__main__":
    main()
