"""Shared benchmark fixtures.

One Study is built per session (the datasets are the expensive shared
input, like the paper's collected traces); each benchmark times one
experiment's analysis over those datasets and prints the regenerated
table so the run doubles as the figure/table reproduction.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Study, StudyConfig

#: Scale can be overridden for longer runs: REPRO_BENCH_SCALE=medium
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def study() -> Study:
    return Study(StudyConfig.scale(_SCALE, seed=_SEED)).build()


def run_and_print(benchmark, study: Study, experiment_id: str, rounds=3):
    """Benchmark one experiment and print its regenerated table."""
    from repro.core.experiments import EXPERIMENTS

    fn = EXPERIMENTS[experiment_id]
    result = benchmark.pedantic(
        lambda: fn(study), rounds=rounds, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    return result
