"""Ablations of the inter-BS balancer's design choices (§6).

- trigger-ratio sweep: how aggressively the balancer declares exporters;
- the §6.1.3 admission constraint on/off (the "too hot to move" rule);
- the realizable prediction-based importer vs the heuristics and the
  oracle of Fig 4(b).
"""

import numpy as np

from repro.balancer import (
    BalancerConfig,
    InterBsBalancer,
    PredictorImporter,
    make_importer,
    normalized_migration_intervals,
    segment_period_matrix,
)
from repro.cluster import StorageCluster
from repro.prediction import ArimaPredictor


def _write_matrix(study, result):
    return segment_period_matrix(
        result.metrics.storage,
        len(result.fleet.segments),
        study.config.duration_seconds,
        study.config.balancer_period_seconds,
        "write",
    )


def _run(study, result, config, importer):
    storage = StorageCluster(result.fleet)
    balancer = InterBsBalancer(
        storage, config, importer, rng=study.rngs.get("ablation-balancer")
    )
    run = balancer.run(_write_matrix(study, result))
    storage.check_invariants()
    return run


def test_ablation_trigger_ratio(benchmark, study):
    def run():
        result = study.results[0]
        rows = []
        for trigger in (1.1, 1.2, 1.5, 2.0):
            config = BalancerConfig(
                period_seconds=study.config.balancer_period_seconds,
                trigger_ratio=trigger,
            )
            outcome = _run(study, result, config, make_importer("min_traffic"))
            rows.append((trigger, outcome.num_migrations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'trigger':>8} {'migrations':>10}")
    for trigger, migrations in rows:
        print(f"{trigger:>8.1f} {migrations:>10}")
    counts = [m for __, m in rows]
    # A laxer trigger migrates at least as much as a stricter one.
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_ablation_admission_constraint(benchmark, study):
    def run():
        result = study.results[0]
        rows = []
        for label, ratio in (("literal Algorithm 1", None), ("with admission rule", 1.0)):
            config = BalancerConfig(
                period_seconds=study.config.balancer_period_seconds,
                max_segment_traffic_ratio=ratio,
            )
            outcome = _run(study, result, config, make_importer("min_traffic"))
            intervals = normalized_migration_intervals(
                outcome.migrations, study.config.duration_seconds
            )
            rows.append(
                (
                    label,
                    outcome.num_migrations,
                    float(np.mean(intervals)) if intervals else float("nan"),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'variant':<24} {'migrations':>10} {'mean interval':>13}")
    for label, migrations, interval in rows:
        print(f"{label:<24} {migrations:>10} {interval:>13.3f}")
    assert len(rows) == 2


def test_ablation_predictor_importer(benchmark, study):
    """The realizable §6.1.3 balancer: ARIMA-predicted importer."""

    def run():
        result = study.results[0]
        config = BalancerConfig(
            period_seconds=study.config.balancer_period_seconds
        )
        rows = []
        importers = [
            make_importer("min_traffic"),
            PredictorImporter(ArimaPredictor),
            make_importer("ideal"),
        ]
        for importer in importers:
            outcome = _run(study, result, config, importer)
            intervals = normalized_migration_intervals(
                outcome.migrations, study.config.duration_seconds
            )
            rows.append(
                (
                    importer.name,
                    outcome.num_migrations,
                    float(np.mean(intervals)) if intervals else float("nan"),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'importer':<22} {'migrations':>10} {'mean interval':>13}")
    for name, migrations, interval in rows:
        print(f"{name:<22} {migrations:>10} {interval:>13.3f}")
    names = [name for name, __, ___ in rows]
    assert names[0] == "min_traffic"
    assert names[1].startswith("predictor[")
