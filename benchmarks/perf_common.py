"""Shared machinery for the performance benchmarks.

The perf benchmarks (``bench_perf_simulator.py`` / ``bench_perf_cache.py``)
measure the vectorized fast paths against their scalar reference
implementations and record the results in ``BENCH_simulator.json`` at the
repository root.

Unlike the figure benchmarks (which replay the paper's *analysis* on a
study-sized dataset), the perf benchmarks scale along the **fleet-size
axis**: many VDs observed over a short window.  That is the regime the
fast paths exist for — the paper's production fleet has ~140k VDs per
data center, and per-VD Python loops are what capped the reproduction's
fleet sizes.  The ``medium`` scale (128 users / 800 VMs, 60 s) is the
reference point for the speedup figures quoted in the docs; ``tiny`` is
a CI smoke scale.

Timing uses best-of-N on a warmed process; results on a busy or
single-core machine will wobble, but the parity checks are exact and
must hold everywhere.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Tuple

import numpy as np

from repro.cluster.hypervisor import HypervisorSet
from repro.cluster.simulator import EBSSimulator, SimulationConfig
from repro.cluster.storage import StorageCluster
from repro.util.rng import RngFactory
from repro.workload.fleet import Fleet, FleetConfig, build_fleet
from repro.workload.generator import WorkloadGenerator

#: Default output file, at the repository root.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Version of the BENCH_simulator.json layout.  Bumped to 2 when the
#: per-section ``telemetry`` block (span timings + metric snapshots from
#: :mod:`repro.obs`) was added; bumped to 3 when the raw-speed-tier
#: throughput **targets** (and each run's attainment against them) were
#: recorded per section.  Additions are backwards-compatible.
BENCH_SCHEMA_VERSION = 3

#: Raw-speed-tier throughput targets (ROADMAP item 5).  These are
#: aspirational ceilings recorded alongside every run — the regression
#: gate stays relative (candidate vs committed baseline); absolute
#: enforcement is opt-in via ``perf_gate.py --enforce-targets``.
PERF_TARGETS: Dict[str, Dict[str, object]] = {
    "simulator_pass1": {
        "metric": "fleet_seconds_per_second_fast",
        "target": 5_000_000,
        "unit": "fleet-seconds/s",
    },
    "cache_replay": {
        "metric": "ios_per_second_fast",
        "target": 100_000_000,
        "unit": "IOs/s",
    },
}

#: Trace sampling rate shared by all perf scales (the study default).
SAMPLING_RATE = 1.0 / 20.0


@dataclass(frozen=True)
class PerfScale:
    """One benchmark fleet size."""

    name: str
    num_users: int
    num_vms: int
    num_compute_nodes: int
    num_storage_nodes: int
    duration_seconds: int

    def fleet_config(self, dc_id: int = 0) -> FleetConfig:
        return FleetConfig(
            dc_id=dc_id,
            num_users=self.num_users,
            num_vms=self.num_vms,
            num_compute_nodes=self.num_compute_nodes,
            num_storage_nodes=self.num_storage_nodes,
        )

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            duration_seconds=self.duration_seconds,
            trace_sampling_rate=SAMPLING_RATE,
        )

    def describe(self) -> Dict[str, int]:
        return {
            "num_users": self.num_users,
            "num_vms": self.num_vms,
            "num_compute_nodes": self.num_compute_nodes,
            "num_storage_nodes": self.num_storage_nodes,
            "duration_seconds": self.duration_seconds,
        }


SCALES: Dict[str, PerfScale] = {
    "tiny": PerfScale("tiny", 16, 100, 16, 12, 30),
    "small": PerfScale("small", 48, 300, 48, 32, 60),
    "medium": PerfScale("medium", 128, 800, 120, 80, 60),
}


def build_simulation(scale: PerfScale, seed: int = 7):
    """Fleet + simulator + generated traffic + bindings for one scale.

    Returns ``(fleet, simulator, traffic, qp_to_wt, seg_to_bs)`` — the
    inputs :meth:`EBSSimulator.run_pass1` consumes, built exactly as
    :meth:`EBSSimulator.run` would build them.
    """
    rngs = RngFactory(seed)
    fleet = build_fleet(scale.fleet_config(), rngs)
    sim_config = scale.simulation_config()
    simulator = EBSSimulator(fleet, sim_config, rngs)
    hypervisors = HypervisorSet(fleet)
    storage = StorageCluster(fleet)
    generator = WorkloadGenerator(
        fleet,
        sim_config.duration_seconds,
        rngs,
        diurnal_amplitude=sim_config.diurnal_amplitude,
    )
    traffic = generator.generate_all()
    qp_to_wt, seg_to_bs = simulator.bindings(hypervisors, storage)
    return fleet, simulator, traffic, qp_to_wt, seg_to_bs


def simulate_fleet(scale: PerfScale, seed: int = 7) -> "Tuple[Fleet, object]":
    """Build and fully simulate one benchmark fleet; (fleet, result)."""
    rngs = RngFactory(seed)
    fleet = build_fleet(scale.fleet_config(), rngs)
    result = EBSSimulator(fleet, scale.simulation_config(), rngs).run()
    return fleet, result


def best_of(fn: Callable[[], object], repeats: int) -> "Tuple[float, object]":
    """(best wall time, last result) of ``repeats`` calls."""
    best = float("inf")
    out = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def tables_identical(a, b) -> bool:
    """Column-wise equality (values *and* dtypes) of two metric tables."""
    acols, bcols = a.columns(), b.columns()
    if acols.keys() != bcols.keys():
        return False
    return all(
        acols[name].dtype == bcols[name].dtype
        and np.array_equal(acols[name], bcols[name])
        for name in acols
    )


def merge_results(section: str, payload: dict, path: Path = RESULTS_PATH) -> None:
    """Merge one benchmark section into the shared JSON results file.

    Sections with a raw-speed target (:data:`PERF_TARGETS`) get a
    ``target`` block recording the goal and this run's attainment, so
    downstream consumers (the gate's step summary, ``perf_trend.py``)
    need no knowledge of the target table.
    """
    results: dict = {}
    if path.exists():
        results = json.loads(path.read_text())
    payload = dict(payload)
    payload["environment"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    spec = PERF_TARGETS.get(section)
    if spec is not None:
        measured = payload.get(spec["metric"])
        if isinstance(measured, (int, float)):
            payload["target"] = {
                "metric": spec["metric"],
                "value": spec["target"],
                "unit": spec["unit"],
                "attainment": round(measured / spec["target"], 4),
            }
    results["schema_version"] = BENCH_SCHEMA_VERSION
    results[section] = payload
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
