"""Regenerates Table 2: the dataset summary."""

from benchmarks.conftest import run_and_print


def test_table2_summary(benchmark, study):
    result = run_and_print(benchmark, study, "table2")
    assert len(result.rows) == 5
