"""Ablation: rebinding period and trigger-ratio sensitivity (§4.3).

The paper argues the rebinding period would have to shrink below burst
durations to work; this sweep shows how the rebinding ratio (overhead) and
gain move as the period and the trigger threshold change.
"""

import numpy as np

from repro.balancer import RebindingConfig, simulate_rebinding


def _outcomes(study, config):
    out = []
    for result in study.results:
        for hypervisor in result.hypervisors:
            outcome = simulate_rebinding(result.traces, hypervisor, config)
            if outcome is not None and outcome.cov_before > 0:
                out.append(outcome)
    return out


def test_ablation_rebinding_period(benchmark, study):
    def run():
        rows = []
        for period in (0.010, 0.100, 1.000):
            outcomes = _outcomes(study, RebindingConfig(period_seconds=period))
            rows.append(
                (
                    period,
                    float(np.median([o.rebinding_ratio for o in outcomes])),
                    float(np.median([o.rebinding_gain for o in outcomes])),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'period s':>9} {'median ratio':>12} {'median gain':>11} {'rebinds/s':>9}")
    for period, ratio, gain in rows:
        print(
            f"{period:>9.3f} {ratio:>12.3f} {gain:>11.3f} {ratio / period:>9.1f}"
        )
    # Shorter periods pay more rebinds per second — the §4.3 overhead
    # argument: balancing bursts needs an unaffordable rebinding rate.
    per_second = [ratio / period for period, ratio, __ in rows]
    assert all(a >= b - 1e-9 for a, b in zip(per_second, per_second[1:]))


def test_ablation_rebinding_trigger(benchmark, study):
    def run():
        rows = []
        for trigger in (1.1, 1.5, 3.0):
            outcomes = _outcomes(
                study, RebindingConfig(trigger_ratio=trigger)
            )
            rows.append(
                (
                    trigger,
                    float(np.median([o.rebinding_ratio for o in outcomes])),
                    float(np.median([o.rebinding_gain for o in outcomes])),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"{'trigger':>8} {'median ratio':>12} {'median gain':>11}")
    for trigger, ratio, gain in rows:
        print(f"{trigger:>8.1f} {ratio:>12.3f} {gain:>11.3f}")
    ratios = [ratio for __, ratio, __ in rows]
    # A stricter trigger can only reduce how often rebinding fires.
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
